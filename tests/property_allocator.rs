//! Property-based tests on allocator invariants (proptest).
//!
//! The central invariants of the reproduction:
//!
//! 1. an allocator never hands out a pointer that is currently live,
//! 2. a deferred object is never handed out before its grace period ends,
//! 3. user-visible accounting (live objects) always balances,
//! 4. every page is returned when the cache drops.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use prudence_repro::alloc_api::{ObjPtr, ObjectAllocator};
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::slub::SlubCache;

/// One step of the allocator state machine.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    /// Free the live object at (index % live count).
    Free(usize),
    /// Defer-free the live object at (index % live count).
    Defer(usize),
    /// Wait for a grace period and drain deferred objects.
    Quiesce,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Alloc),
        2 => any::<usize>().prop_map(Op::Free),
        2 => any::<usize>().prop_map(Op::Defer),
        1 => Just(Op::Quiesce),
    ]
}

fn check_allocator(make: impl Fn(Arc<PageAllocator>, Arc<Rcu>) -> Arc<dyn ObjectAllocator>, ops: &[Op]) {
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    let cache = make(Arc::clone(&pages), Arc::clone(&rcu));

    let mut live: Vec<ObjPtr> = Vec::new();
    let mut live_set: HashSet<usize> = HashSet::new();
    // Deferred objects must not reappear before a quiesce.
    let mut deferred_since_quiesce: HashSet<usize> = HashSet::new();
    let reader = rcu.register();
    let mut guard = Some(reader.read_lock()); // pin so deferred stay deferred

    for op in ops {
        match op {
            Op::Alloc => {
                let obj = cache.allocate().expect("unbounded memory");
                assert!(
                    live_set.insert(obj.addr()),
                    "allocator returned a live pointer twice"
                );
                assert!(
                    !deferred_since_quiesce.contains(&obj.addr()),
                    "deferred object reused before its grace period"
                );
                // Scribble: catches overlap with neighbours under MIRI-less
                // runs via the torn values other assertions would see.
                // SAFETY: fresh exclusive object of 64 bytes.
                unsafe { obj.as_ptr().cast::<u64>().write(obj.addr() as u64) };
                live.push(obj);
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free(obj) };
            }
            Op::Defer(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                deferred_since_quiesce.insert(obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free_deferred(obj) };
            }
            Op::Quiesce => {
                drop(guard.take());
                cache.quiesce();
                deferred_since_quiesce.clear();
                guard = Some(reader.read_lock());
            }
        }
    }
    drop(guard);
    let stats = cache.stats();
    assert_eq!(
        stats.live_objects as usize,
        live.len(),
        "live-object accounting diverged"
    );
    for obj in live.drain(..) {
        // SAFETY: remaining tracked objects freed exactly once.
        unsafe { cache.free(obj) };
    }
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
    drop(cache);
    assert_eq!(pages.used_bytes(), 0, "pages leaked at drop");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    #[test]
    fn prudence_respects_allocator_invariants(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_allocator(
            |pages, rcu| {
                Arc::new(PrudenceCache::new(
                    "prop",
                    64,
                    PrudenceConfig::new(2),
                    pages,
                    rcu,
                ))
            },
            &ops,
        );
    }

    #[test]
    fn prudence_without_latent_cache_respects_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..150)
    ) {
        check_allocator(
            |pages, rcu| {
                Arc::new(PrudenceCache::new(
                    "prop-nolatent",
                    64,
                    PrudenceConfig::new(1).with_latent_cache(false).with_preflush(false),
                    pages,
                    rcu,
                ))
            },
            &ops,
        );
    }

    #[test]
    fn slub_respects_allocator_invariants(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_allocator(
            |pages, rcu| SlubCache::new("prop", 64, 2, pages, rcu),
            &ops,
        );
    }

    #[test]
    fn object_sizes_never_overlap(size in 1usize..4000, count in 1usize..200) {
        // For arbitrary object sizes, allocated objects never overlap and
        // always lie within allocator memory.
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache = PrudenceCache::new("sizes", size, PrudenceConfig::new(1), pages, rcu);
        let objs: Vec<ObjPtr> = (0..count).map(|_| cache.allocate().unwrap()).collect();
        let real = cache.policy().object_size;
        let mut addrs: Vec<usize> = objs.iter().map(|o| o.addr()).collect();
        addrs.sort_unstable();
        for pair in addrs.windows(2) {
            prop_assert!(pair[1] - pair[0] >= real, "objects overlap");
        }
        // Write every byte of every object; no crash/corruption means the
        // carve is sound.
        for o in &objs {
            // SAFETY: exclusive objects of `real` bytes.
            unsafe { std::ptr::write_bytes(o.as_ptr(), 0x7E, real) };
        }
        for o in objs {
            // SAFETY: freed exactly once.
            unsafe { cache.free(o) };
        }
    }
}
