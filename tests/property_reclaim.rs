//! Property and deterministic tests of the pluggable reclamation
//! backends (epoch, hazard-pointer, Hyaline-style), run against both
//! allocators.
//!
//! Reuses the op-sequence state machine of `property_fault.rs`, with the
//! fault schedule aimed at the generalized `reclaim.advance` site (and
//! its epoch-specific `rcu.advance` sibling): refused scans, seals and
//! grace-period advances only procrastinate, so every backend must keep
//! the same invariants the epoch scheme always had:
//!
//! 1. allocation never hands out a live address twice, whatever backend
//!    reclaims retired objects;
//! 2. live-object accounting stays balanced and `quiesce` drains every
//!    deferred object once no reader blocks progress;
//! 3. every page returns to the system when the cache drops — even when
//!    the cache is torn down while a reader is still parked inside a
//!    read-side critical section;
//! 4. the backends' *stalled-reader contracts* hold deterministically:
//!    a hazard-protected address is never reused, a Hyaline-captured
//!    batch outlives its reader's pin, and with a deliberately parked
//!    reader the robust backends keep outstanding garbage bounded while
//!    the epoch backend demonstrably does not.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use prudence_repro::alloc_api::{ObjPtr, ObjectAllocator};
use prudence_repro::fault::{site, FaultInjector, Schedule};
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::reclaim::{
    domain_for, ReclaimBackend, ReclaimConfig, ReclamationDomain,
};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::slub::{SlubCache, SlubTuning};

type Make = fn(Arc<PageAllocator>, Arc<dyn ReclamationDomain>) -> Arc<dyn ObjectAllocator>;

fn make_prudence(
    pages: Arc<PageAllocator>,
    domain: Arc<dyn ReclamationDomain>,
) -> Arc<dyn ObjectAllocator> {
    Arc::new(PrudenceCache::with_domain(
        "prop-reclaim",
        64,
        PrudenceConfig::new(2),
        pages,
        domain,
    ))
}

fn make_slub(
    pages: Arc<PageAllocator>,
    domain: Arc<dyn ReclamationDomain>,
) -> Arc<dyn ObjectAllocator> {
    SlubCache::with_domain(
        "prop-reclaim",
        64,
        2,
        SlubTuning::default(),
        pages,
        domain,
    )
}

const MAKES: [(&str, Make); 2] = [("prudence", make_prudence), ("slub", make_slub)];

/// A fresh (pages, rcu, domain) triple with the aggressive tuning the
/// short-lived test runs need (scans and ejections within milliseconds).
fn rig(
    backend: ReclaimBackend,
    faults: Option<&Arc<FaultInjector>>,
) -> (Arc<PageAllocator>, Arc<Rcu>, Arc<dyn ReclamationDomain>) {
    let pages = Arc::new(PageAllocator::new());
    let mut config = RcuConfig::eager();
    if let Some(faults) = faults {
        config = config.with_fault_injector(Arc::clone(faults));
    }
    let rcu = Arc::new(Rcu::with_config(config));
    let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
    (pages, rcu, domain)
}

#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Free(usize),
    Defer(usize),
    Quiesce,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Alloc),
        2 => any::<usize>().prop_map(Op::Free),
        2 => any::<usize>().prop_map(Op::Defer),
        1 => Just(Op::Quiesce),
    ]
}

/// Invariants 1–3 for one backend/allocator pair under injected
/// reclamation refusals.
fn check_backend(backend: ReclaimBackend, make: Make, seed: u64, fault_p: f64, ops: &[Op]) {
    let faults = Arc::new(FaultInjector::new(seed));
    // Both stall sites armed: the epoch advance consults both, the robust
    // backends' scans and seals consult the generalized one.
    faults.schedule(site::RCU_ADVANCE, Schedule::Probability(fault_p));
    faults.schedule(site::RECLAIM_ADVANCE, Schedule::Probability(fault_p));
    let (pages, _rcu, domain) = rig(backend, Some(&faults));
    let cache = make(Arc::clone(&pages), domain);

    let mut live: Vec<ObjPtr> = Vec::new();
    let mut live_set: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for op in ops {
        match op {
            Op::Alloc => {
                if let Ok(obj) = cache.allocate() {
                    assert!(
                        live_set.insert(obj.addr()),
                        "{backend}: allocator returned a live pointer twice"
                    );
                    live.push(obj);
                }
            }
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free(obj) };
            }
            Op::Defer(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free_deferred(obj) };
            }
            Op::Quiesce => cache.quiesce(),
        }
    }

    assert_eq!(
        cache.stats().live_objects as usize,
        live.len(),
        "{backend}: live-object accounting diverged"
    );
    for obj in live.drain(..) {
        // SAFETY: remaining tracked objects freed exactly once.
        unsafe { cache.free(obj) };
    }
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0, "{backend}");
    assert_eq!(
        cache.deferred_outstanding(),
        0,
        "{backend}: deferred not drained at quiesce"
    );
    drop(cache);
    assert_eq!(pages.used_bytes(), 0, "{backend}: pages leaked");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn every_backend_survives_op_sequences_under_injected_refusals(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        for backend in ReclaimBackend::ALL {
            for (_, make) in MAKES {
                check_backend(backend, make, seed, f64::from(fault_pm) / 1000.0, &ops);
            }
        }
    }
}

/// Invariant 4, the gating contrast: with a reader deliberately parked in
/// a read-side critical section, 512 deferred frees leave the robust
/// backends with a bounded remainder (scan threshold / ejection fuse do
/// their work), while the epoch backend keeps every single one — the
/// unbounded-garbage failure mode this PR exists to bound.
#[test]
fn parked_reader_bounds_garbage_on_robust_backends_only() {
    const DEFERS: usize = 512;
    const BOUND: usize = 256;
    for backend in ReclaimBackend::ALL {
        for (label, make) in MAKES {
            let (pages, rcu, domain) = rig(backend, None);
            let cache = make(Arc::clone(&pages), Arc::clone(&domain));
            let objs: Vec<ObjPtr> = (0..DEFERS)
                .map(|_| cache.allocate().expect("unfaulted allocation"))
                .collect();
            let reader = rcu.register();
            let guard = reader.read_lock();
            for obj in objs {
                // SAFETY: each object deferred exactly once.
                unsafe { cache.free_deferred(obj) };
            }
            // Let the Hyaline ejection fuse (2 ms aggressive) burn, then
            // drive the domain a few times.
            std::thread::sleep(Duration::from_millis(5));
            for _ in 0..4 {
                domain.advance();
            }
            let outstanding = cache.deferred_outstanding();
            if backend == ReclaimBackend::Epoch {
                assert!(
                    outstanding > BOUND,
                    "{label}/{backend}: expected the epoch backend to wedge \
                     (outstanding {outstanding} <= bound {BOUND})"
                );
            } else {
                assert!(
                    outstanding <= BOUND,
                    "{label}/{backend}: outstanding {outstanding} exceeds bound {BOUND} \
                     under a parked reader"
                );
            }
            drop(guard);
            cache.quiesce();
            assert_eq!(cache.deferred_outstanding(), 0, "{label}/{backend}");
            drop(cache);
            assert_eq!(pages.used_bytes(), 0, "{label}/{backend}: pages leaked");
        }
    }
}

/// The hazard-pointer reader contract: an address published in a hazard
/// slot is never reclaimed — and therefore never handed out again — for
/// as long as the slot holds it, no matter how many scans run.
#[test]
fn hazard_protected_address_is_never_reused() {
    for (label, make) in MAKES {
        let (pages, rcu, domain) = rig(ReclaimBackend::Hp, None);
        let cache = make(Arc::clone(&pages), Arc::clone(&domain));
        let protected = cache.allocate().expect("unfaulted allocation");
        let addr = protected.addr();
        let reader = rcu.register();
        reader.protect(0, addr);
        // SAFETY: `protected` retired exactly once; the hazard keeps it.
        unsafe { cache.free_deferred(protected) };
        for _ in 0..4 {
            domain.advance();
        }
        assert_eq!(
            cache.deferred_outstanding(),
            1,
            "{label}: scan reclaimed a hazard-protected address"
        );
        // While protected, the address must not come back out of allocate.
        let mut fresh: Vec<ObjPtr> = Vec::new();
        for _ in 0..64 {
            let obj = cache.allocate().expect("unfaulted allocation");
            assert_ne!(obj.addr(), addr, "{label}: protected address reused");
            fresh.push(obj);
        }
        for obj in fresh {
            // SAFETY: each object freed exactly once.
            unsafe { cache.free(obj) };
        }
        reader.clear_protection(0);
        for _ in 0..4 {
            domain.advance();
        }
        assert_eq!(
            cache.deferred_outstanding(),
            0,
            "{label}: cleared hazard did not release the object"
        );
        cache.quiesce();
        drop(cache);
        assert_eq!(pages.used_bytes(), 0, "{label}: pages leaked");
    }
}

/// The Hyaline reader contract: a reader pinned when a batch seals is
/// captured in the batch's reference set, and the batch cannot be freed
/// until that reader unpins (here the ejection fuse is left at its 1 s
/// default so only the unpin can release it).
#[test]
fn captured_batches_outlive_their_readers_pin() {
    for (label, make) in MAKES {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        // Small batches so seals happen mid-run; default (long) fuse so
        // ejection cannot mask a broken capture set.
        let config = ReclaimConfig {
            batch_size: 16,
            ..ReclaimConfig::default()
        };
        let domain = domain_for(Arc::clone(&rcu), ReclaimBackend::Hyaline, config);
        let cache = make(Arc::clone(&pages), Arc::clone(&domain));
        let objs: Vec<ObjPtr> = (0..64)
            .map(|_| cache.allocate().expect("unfaulted allocation"))
            .collect();
        let reader = rcu.register();
        let guard = reader.read_lock();
        for obj in objs {
            // SAFETY: each object deferred exactly once.
            unsafe { cache.free_deferred(obj) };
        }
        for _ in 0..4 {
            domain.advance();
        }
        assert_eq!(
            cache.deferred_outstanding(),
            64,
            "{label}: a captured batch was freed under its reader's pin"
        );
        assert!(guard.validate(), "{label}: un-ejected reader failed validation");
        drop(guard);
        for _ in 0..4 {
            domain.advance();
        }
        assert_eq!(
            cache.deferred_outstanding(),
            0,
            "{label}: batches not released after the capturing reader unpinned"
        );
        cache.quiesce();
        drop(cache);
        assert_eq!(pages.used_bytes(), 0, "{label}: pages leaked");
    }
}

/// Invariant 3, hard mode: tearing a cache down while a reader is still
/// parked inside a critical section — with deferred objects undrained —
/// must neither hang nor leak a page, on every backend. (Deferred
/// addresses still queued in the domain refer to the dead cache only
/// through a Weak client handle, so late deliveries are dropped, not
/// dereferenced.)
#[test]
fn teardown_with_a_parked_reader_is_clean() {
    for backend in ReclaimBackend::ALL {
        for (label, make) in MAKES {
            let (pages, rcu, domain) = rig(backend, None);
            let cache = make(Arc::clone(&pages), Arc::clone(&domain));
            let mut objs: Vec<ObjPtr> = (0..32)
                .map(|_| cache.allocate().expect("unfaulted allocation"))
                .collect();
            let reader = rcu.register();
            let guard = reader.read_lock();
            for obj in objs.drain(..16) {
                // SAFETY: each object deferred exactly once.
                unsafe { cache.free_deferred(obj) };
            }
            for obj in objs {
                // SAFETY: each object freed exactly once.
                unsafe { cache.free(obj) };
            }
            // Reader still parked; the cache goes away regardless.
            drop(cache);
            assert_eq!(
                pages.used_bytes(),
                0,
                "{label}/{backend}: pages leaked through a parked-reader teardown"
            );
            drop(guard);
            // The domain outlives the cache; late passes must not panic.
            domain.advance();
        }
    }
}
