//! Integration tests for the simulated kernel subsystems (filesystem,
//! network stack, epoll) under concurrency, on both allocator designs.

use std::sync::Arc;

use prudence_repro::alloc_api::CacheFactory;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceConfig, PrudenceFactory};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::simfs::{FsError, SimFs};
use prudence_repro::simnet::{Epoll, SimNet};
use prudence_repro::slub::SlubFactory;

fn each_factory(test: impl Fn(&str, Arc<Rcu>, Arc<PageAllocator>, &dyn CacheFactory)) {
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let f = SlubFactory::new(4, Arc::clone(&pages), Arc::clone(&rcu));
        test("slub", rcu, pages, &f);
    }
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let f = PrudenceFactory::new(PrudenceConfig::new(4), Arc::clone(&pages), Arc::clone(&rcu));
        test("prudence", rcu, pages, &f);
    }
}

#[test]
fn web_server_shape_traffic_on_both_allocators() {
    each_factory(|label, rcu, _pages, factory| {
        let net = SimNet::new(factory);
        let epoll = Epoll::new(factory);
        let fs = SimFs::new(factory);
        let doc = fs.create(0, 42).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let net = &net;
                let epoll = &epoll;
                let fs = &fs;
                let rcu = Arc::clone(&rcu);
                s.spawn(move || {
                    let t = rcu.register();
                    for _ in 0..400 {
                        let conn = net.connect().unwrap();
                        epoll.add(conn.0, 1).unwrap();
                        let g = t.read_lock();
                        assert!(net.is_established(&g, conn));
                        assert_eq!(epoll.interest(&g, conn.0), Some(1));
                        drop(g);
                        let fd = fs.open(doc).unwrap();
                        fs.read(fd, 4096).unwrap();
                        fs.close(fd).unwrap();
                        net.request_response(conn, 4096).unwrap();
                        assert!(epoll.del(conn.0));
                        net.close(conn).unwrap();
                    }
                });
            }
        });
        fs.unlink(0, 42).unwrap(); // retire the served document too
        net.quiesce();
        epoll.quiesce();
        fs.quiesce();
        assert_eq!(net.connection_count(), 0, "{label}");
        assert!(epoll.is_empty(), "{label}");
        assert_eq!(epoll.stats().deferred_frees, 1600, "{label}");
        for (name, s) in net.stats().into_iter().chain(fs.stats()) {
            assert_eq!(s.live_objects, 0, "{label}/{name} leaked: {s:?}");
        }
    });
}

#[test]
fn concurrent_create_same_name_yields_one_winner() {
    each_factory(|label, _rcu, _pages, factory| {
        let fs = Arc::new(SimFs::new(factory));
        let winners = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let fs = Arc::clone(&fs);
                    s.spawn(move || match fs.create(9, 1234) {
                        Ok(_) => 1u32,
                        Err(FsError::Exists) => 0,
                        Err(e) => panic!("unexpected: {e}"),
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        });
        assert_eq!(winners, 1, "{label}: exactly one create must win");
        assert_eq!(fs.file_count(), 1);
        fs.quiesce();
    });
}

#[test]
fn fs_rename_like_churn_keeps_lookup_consistent() {
    each_factory(|label, rcu, _pages, factory| {
        let fs = Arc::new(SimFs::new(factory));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Writer: repeatedly unlink + recreate the same name.
        // Readers: a lookup either finds a valid ino or nothing — never a
        // stale inode that fails to open.
        fs.create(1, 7).unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let fs = Arc::clone(&fs);
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let t = rcu.register();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let g = t.read_lock();
                        let _ino = fs.lookup(&g, 1, 7);
                        drop(g);
                    }
                });
            }
            for _ in 0..2_000 {
                fs.unlink(1, 7).unwrap();
                fs.create(1, 7).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(fs.file_count(), 1, "{label}");
        fs.quiesce();
        let stats: std::collections::HashMap<_, _> = fs.stats().into_iter().collect();
        assert_eq!(stats["ext4_inode"].deferred_frees, 2_000, "{label}");
    });
}

#[test]
fn memory_returns_to_zero_after_mixed_subsystem_use() {
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    {
        let factory =
            PrudenceFactory::new(PrudenceConfig::new(2), Arc::clone(&pages), Arc::clone(&rcu));
        let net = SimNet::new(&factory);
        let fs = SimFs::new(&factory);
        for i in 0..200 {
            let c = net.connect().unwrap();
            let ino = fs.create(0, i).unwrap();
            let fd = fs.open(ino).unwrap();
            fs.append(fd, 1024).unwrap();
            fs.close(fd).unwrap();
            net.close(c).unwrap();
            if i % 2 == 0 {
                fs.unlink(0, i).unwrap();
            }
        }
        net.quiesce();
        fs.quiesce();
    }
    assert_eq!(pages.used_bytes(), 0, "all subsystem memory returned");
}
