//! Cross-crate integration tests: allocators + RCU + data structures +
//! simulated subsystems working together through the public API.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prudence_repro::alloc_api::{AllocError, CacheFactory, ObjPtr, ObjectAllocator};
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig, PrudenceFactory};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::simfs::SimFs;
use prudence_repro::slub::{SlubCache, SlubFactory};
use prudence_repro::structs::{RcuHashMap, RcuList};

fn prudence_setup(ncpus: usize) -> (Arc<PageAllocator>, Arc<Rcu>, Arc<PrudenceCache>) {
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    let cache = Arc::new(PrudenceCache::new(
        "it",
        64,
        PrudenceConfig::new(ncpus),
        Arc::clone(&pages),
        Arc::clone(&rcu),
    ));
    (pages, rcu, cache)
}

#[test]
fn list_stress_across_both_allocators_returns_all_memory() {
    for which in ["slub", "prudence"] {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = match which {
            "slub" => SlubCache::new("it", 64, 4, Arc::clone(&pages), Arc::clone(&rcu)),
            _ => Arc::new(PrudenceCache::new(
                "it",
                64,
                PrudenceConfig::new(4),
                Arc::clone(&pages),
                Arc::clone(&rcu),
            )),
        };
        {
            let list: Arc<RcuList<u64>> = Arc::new(RcuList::new(Arc::clone(&cache)));
            for i in 0..64 {
                list.insert(i, i).unwrap();
            }
            let stop = Arc::new(AtomicBool::new(false));
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let list = Arc::clone(&list);
                    let rcu = Arc::clone(&rcu);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        let t = rcu.register();
                        while !stop.load(Ordering::Relaxed) {
                            let g = t.read_lock();
                            let _ = list.lookup(&g, 7);
                        }
                    });
                }
                for round in 0..5_000u64 {
                    list.update(round % 64, round).unwrap();
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0, "{which}: leaked objects");
        drop(cache);
        assert_eq!(pages.used_bytes(), 0, "{which}: leaked pages");
    }
}

#[test]
fn baseline_backlog_grows_while_reader_pinned_prudence_stays_visible() {
    // Endurance in miniature: with a reader pinned, the baseline's
    // deferred objects sit in the RCU callback backlog (invisible to the
    // allocator), while Prudence tracks them itself.
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::linux_like()));
    let slub = SlubCache::new("base", 128, 1, Arc::clone(&pages), Arc::clone(&rcu));
    let prudence = PrudenceCache::new(
        "pru",
        128,
        PrudenceConfig::new(1),
        Arc::clone(&pages),
        Arc::clone(&rcu),
    );
    let reader = rcu.register();
    let guard = reader.read_lock();
    for _ in 0..500 {
        let a = slub.allocate().unwrap();
        let b = prudence.allocate().unwrap();
        unsafe {
            slub.free_deferred(a);
            prudence.free_deferred(b);
        }
    }
    assert!(rcu.callback_backlog() >= 500, "baseline objects stuck in callbacks");
    assert_eq!(prudence.deferred_outstanding(), 500, "prudence sees its deferred objects");
    drop(guard);
    slub.quiesce();
    prudence.quiesce();
    assert_eq!(rcu.callback_backlog(), 0);
    assert_eq!(prudence.deferred_outstanding(), 0);
}

#[test]
fn oom_deferral_survives_where_memory_is_all_deferred() {
    // Everything allocated is deferred; a fixed budget forces the OOM
    // path. Prudence must wait for grace periods and keep serving.
    let pages = Arc::new(PageAllocator::builder().limit_bytes(1 << 20).build());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    let cache = PrudenceCache::new(
        "oom",
        512,
        PrudenceConfig::new(1),
        Arc::clone(&pages),
        Arc::clone(&rcu),
    );
    for _ in 0..20_000 {
        let o = cache.allocate().expect("allocation with OOM deferral");
        unsafe { cache.free_deferred(o) };
    }
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
}

#[test]
fn alloc_error_when_truly_out_of_memory() {
    let pages = Arc::new(PageAllocator::builder().limit_bytes(64 << 10).build());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    let cache = PrudenceCache::new(
        "oom2",
        1024,
        PrudenceConfig::new(1),
        pages,
        rcu,
    );
    let mut held: Vec<ObjPtr> = Vec::new();
    let err = loop {
        match cache.allocate() {
            Ok(o) => held.push(o),
            Err(e) => break e,
        }
    };
    assert_eq!(err, AllocError::OutOfMemory);
    assert!(!held.is_empty(), "some allocations must succeed first");
    for o in held {
        unsafe { cache.free(o) };
    }
}

#[test]
fn filesystem_and_hashmap_share_an_rcu_domain() {
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
    let factory = PrudenceFactory::new(
        PrudenceConfig::new(2),
        Arc::clone(&pages),
        Arc::clone(&rcu),
    );
    let fs = SimFs::new(&factory);
    let index: RcuHashMap<u64, u64> =
        RcuHashMap::new(factory.create_cache("index", 64), 64);
    let t = rcu.register();
    for i in 0..100 {
        let ino = fs.create(1, i).unwrap();
        index.insert(i, ino.0).unwrap();
    }
    // One guard protects traversals of both structures (same domain).
    let g = t.read_lock();
    for i in 0..100 {
        let ino = fs.lookup(&g, 1, i).expect("file exists");
        assert_eq!(index.get(&g, &i), Some(ino.0));
    }
    drop(g);
    for i in 0..100 {
        fs.unlink(1, i).unwrap();
        index.remove(&i);
    }
    fs.quiesce();
    index.len(); // map still alive here
    drop(index);
    drop(fs);
    factory.create_cache("post", 64).quiesce();
}

#[test]
fn slub_and_prudence_agree_on_workload_accounting() {
    // Identical deterministic workload on both allocators: the *user
    // visible* accounting (allocs, frees, deferred frees, live objects)
    // must agree exactly, whatever the internal reclamation strategy.
    let mut results = Vec::new();
    for which in ["slub", "prudence"] {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory: Box<dyn CacheFactory> = match which {
            "slub" => Box::new(SlubFactory::new(2, pages, Arc::clone(&rcu))),
            _ => Box::new(PrudenceFactory::new(
                PrudenceConfig::new(2),
                pages,
                Arc::clone(&rcu),
            )),
        };
        let cache = factory.create_cache("parity", 96);
        let mut held = Vec::new();
        for i in 0..5_000u64 {
            held.push(cache.allocate().unwrap());
            if i % 3 == 0 {
                let o = held.swap_remove((i as usize * 7) % held.len());
                unsafe { cache.free(o) };
            } else if i % 3 == 1 {
                let o = held.swap_remove((i as usize * 5) % held.len());
                unsafe { cache.free_deferred(o) };
            }
        }
        for o in held {
            unsafe { cache.free(o) };
        }
        cache.quiesce();
        let s = cache.stats();
        results.push((s.alloc_requests, s.frees, s.deferred_frees, s.live_objects));
    }
    assert_eq!(results[0], results[1], "user-visible accounting must match");
}

#[test]
fn readers_never_observe_reclaimed_memory_under_churn() {
    // Torn-read detector across the whole stack: values are always
    // written as [x, x]; any reader observing [a, b] with a != b saw
    // freed/reused memory.
    let (_pages, rcu, cache) = prudence_setup(4);
    let map: Arc<RcuHashMap<u64, [u64; 2]>> = Arc::new(RcuHashMap::new(cache, 128));
    for k in 0..128 {
        map.insert(k, [0, 0]).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let map = Arc::clone(&map);
            let rcu = Arc::clone(&rcu);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let t = rcu.register();
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = t.read_lock();
                    if let Some([a, b]) = map.get(&g, &(k % 128)) {
                        assert_eq!(a, b, "reader saw torn/reclaimed value");
                    }
                    drop(g);
                    k += 1;
                }
            });
        }
        for i in 0..30_000u64 {
            map.insert(i % 128, [i, i]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn quiesce_is_idempotent_and_reentrant() {
    let (_pages, _rcu, cache) = prudence_setup(2);
    let objs: Vec<ObjPtr> = (0..100).map(|_| cache.allocate().unwrap()).collect();
    for o in objs {
        unsafe { cache.free_deferred(o) };
    }
    cache.quiesce();
    cache.quiesce();
    cache.quiesce();
    assert_eq!(cache.deferred_outstanding(), 0);
}

#[test]
fn long_running_reader_delays_but_does_not_block_forever() {
    let (_pages, rcu, cache) = prudence_setup(1);
    let done = Arc::new(AtomicBool::new(false));
    let rcu2 = Arc::clone(&rcu);
    let done2 = Arc::clone(&done);
    let reader = std::thread::spawn(move || {
        let t = rcu2.register();
        let g = t.read_lock();
        std::thread::sleep(Duration::from_millis(100));
        drop(g);
        done2.store(true, Ordering::Relaxed);
    });
    std::thread::sleep(Duration::from_millis(10));
    let o = cache.allocate().unwrap();
    unsafe { cache.free_deferred(o) };
    // quiesce must wait for the reader, then drain.
    cache.quiesce();
    assert!(done.load(Ordering::Relaxed), "quiesce returned before the reader finished");
    reader.join().unwrap();
}
