//! Property-based tests for the fault-injection layer (proptest).
//!
//! Complements `property_allocator.rs`: the same op-sequence state machine
//! runs with a seeded [`FaultInjector`] failing page allocations, and the
//! invariants tighten to the robustness claims of the harness:
//!
//! 1. an injected OOM surfaces as `Err` from `allocate` or is absorbed by
//!    a retry/reclaim path — it never panics or poisons a lock,
//! 2. fault or no fault, live-object accounting stays balanced,
//! 3. every page returns to the system when the cache drops, even when
//!    arbitrary grow attempts failed mid-sequence,
//! 4. a total blackout (`EveryKth(1)`) makes the very first allocation of
//!    a fresh cache fail cleanly on both allocators,
//! 5. recovery-ladder accounting is consistent: every recorded recovery
//!    implies at least one ladder entry (`recoveries <= oom_waits`), and a
//!    run that never entered the ladder records no recovery stage.
//!
//! No read-side pin is held across `allocate` here: under OOM, Prudence may
//! wait on a grace period (Algorithm lines 31–33), which a pin from the
//! allocating thread would block.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use prudence_repro::alloc_api::{ObjPtr, ObjectAllocator};
use prudence_repro::fault::{site, FaultInjector, Schedule};
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::slub::SlubCache;

#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Free(usize),
    Defer(usize),
    Quiesce,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Alloc),
        2 => any::<usize>().prop_map(Op::Free),
        2 => any::<usize>().prop_map(Op::Defer),
        1 => Just(Op::Quiesce),
    ]
}

fn check_faulted(
    make: impl Fn(Arc<PageAllocator>, Arc<Rcu>) -> Arc<dyn ObjectAllocator>,
    fault_site: &'static str,
    seed: u64,
    fault_p: f64,
    ops: &[Op],
) {
    let faults = Arc::new(FaultInjector::new(seed));
    faults.schedule(fault_site, Schedule::Probability(fault_p));
    let pages = Arc::new(
        PageAllocator::builder()
            .fault_injector(Arc::clone(&faults))
            .build(),
    );
    // The injector is also wired into the RCU domain so schedules against
    // the grace-period-advance site take effect.
    let rcu = Arc::new(Rcu::with_config(
        RcuConfig::eager().with_fault_injector(Arc::clone(&faults)),
    ));
    let cache = make(Arc::clone(&pages), Arc::clone(&rcu));

    let mut live: Vec<ObjPtr> = Vec::new();
    let mut live_set: HashSet<usize> = HashSet::new();
    let mut oom_errors = 0u64;

    for op in ops {
        match op {
            Op::Alloc => match cache.allocate() {
                Ok(obj) => {
                    assert!(
                        live_set.insert(obj.addr()),
                        "allocator returned a live pointer twice"
                    );
                    live.push(obj);
                }
                // Invariant 1: the only legal failure mode is an error
                // value. A panic would abort the test process here.
                Err(_) => oom_errors += 1,
            },
            Op::Free(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free(obj) };
            }
            Op::Defer(i) => {
                if live.is_empty() {
                    continue;
                }
                let obj = live.swap_remove(i % live.len());
                live_set.remove(&obj.addr());
                // SAFETY: object tracked as live exactly once.
                unsafe { cache.free_deferred(obj) };
            }
            Op::Quiesce => cache.quiesce(),
        }
    }

    // Invariant 2: accounting balanced regardless of how many grows failed.
    assert_eq!(
        cache.stats().live_objects as usize,
        live.len(),
        "live-object accounting diverged under {oom_errors} injected OOM errors"
    );
    for obj in live.drain(..) {
        // SAFETY: remaining tracked objects freed exactly once.
        unsafe { cache.free(obj) };
    }
    cache.quiesce();
    let stats = cache.stats();
    assert_eq!(stats.live_objects, 0);
    assert_eq!(cache.deferred_outstanding(), 0, "deferred not drained");

    // Invariant 5: ladder accounting is consistent. A recovery is recorded
    // only when an allocation succeeded after climbing >= 1 rung, and each
    // rung climbed bumps `oom_waits`; a clean run records neither.
    let recoveries =
        stats.oom_recoveries_stage1 + stats.oom_recoveries_stage2 + stats.oom_recoveries_stage3;
    assert!(
        recoveries <= stats.oom_waits,
        "{recoveries} ladder recoveries recorded but only {} ladder entries",
        stats.oom_waits
    );
    if stats.oom_waits == 0 {
        assert_eq!(
            recoveries, 0,
            "recovery stage recorded without ever entering the ladder"
        );
    }

    // The injector saw every consult and never under-counts injections.
    assert!(faults.calls(fault_site) >= faults.injected(fault_site));

    // Invariant 3: no page leaks even with mid-sequence grow failures.
    drop(cache);
    assert_eq!(pages.used_bytes(), 0, "pages leaked after faulted run");
}

fn make_prudence(pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Arc<dyn ObjectAllocator> {
    Arc::new(PrudenceCache::new(
        "prop-fault",
        64,
        PrudenceConfig::new(2),
        pages,
        rcu,
    ))
}

fn make_slub(pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Arc<dyn ObjectAllocator> {
    SlubCache::new("prop-fault", 64, 2, pages, rcu)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48, ..ProptestConfig::default()
    })]

    #[test]
    fn prudence_survives_injected_oom(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        // Catch-all site: every page allocation, whatever the caller.
        check_faulted(make_prudence, site::PAGE_ALLOC, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn prudence_survives_grow_site_oom(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        // Specific site: only Prudence's slab-grow path fails.
        check_faulted(make_prudence, site::PRUDENCE_GROW, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn slub_survives_injected_oom(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        check_faulted(make_slub, site::PAGE_ALLOC, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn slub_survives_grow_site_oom(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        check_faulted(make_slub, site::SLUB_GROW, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn prudence_survives_injected_gp_stalls(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        // Grace-period advances refused at random: deferred objects must
        // still drain at quiesce and the ladder accounting stay coherent.
        check_faulted(make_prudence, site::RCU_ADVANCE, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn slub_survives_injected_gp_stalls(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        check_faulted(make_slub, site::RCU_ADVANCE, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn prudence_survives_fastpath_flips(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        // Each injected fault flips the per-CPU fast path live mid-run;
        // the usual invariants (no panic, balanced accounting, no page
        // leak) must hold across arbitrarily many switchovers.
        check_faulted(make_prudence, site::FASTPATH_DISABLE, seed, f64::from(fault_pm) / 1000.0, &ops);
    }

    #[test]
    fn slub_survives_fastpath_flips(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in any::<u64>(),
        fault_pm in 0u32..600,
    ) {
        check_faulted(make_slub, site::FASTPATH_DISABLE, seed, f64::from(fault_pm) / 1000.0, &ops);
    }
}

/// Invariant 4: under a total page-allocation blackout, a fresh cache's
/// first `allocate` must return `Err` — there is nothing to refill from,
/// no retry can succeed, and neither allocator may panic or hang.
#[test]
fn blackout_errors_propagate_from_both_allocators() {
    type Make = fn(Arc<PageAllocator>, Arc<Rcu>) -> Arc<dyn ObjectAllocator>;
    let makes: [(&str, Make); 2] =
        [("prudence", make_prudence), ("slub", make_slub)];
    for (label, make) in makes {
        let faults = Arc::new(FaultInjector::new(11));
        faults.schedule(site::PAGE_ALLOC, Schedule::EveryKth(1));
        let pages = Arc::new(
            PageAllocator::builder()
                .fault_injector(Arc::clone(&faults))
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache = make(Arc::clone(&pages), rcu);
        assert!(
            cache.allocate().is_err(),
            "{label}: allocation succeeded under total blackout"
        );
        assert!(faults.injected(site::PAGE_ALLOC) > 0);
        assert_eq!(cache.stats().live_objects, 0);
        drop(cache);
        assert_eq!(pages.used_bytes(), 0, "{label}: blackout charged pages");
    }
}

/// Forced fast-path switchover, deterministic direction: with
/// `fastpath.disable` armed on every refill, the per-CPU fast path flips
/// off (draining parked objects) and back on continuously under churn.
/// The run must stay leak-free and accounting-balanced, and the bounced
/// operations must show up in the `fastpath_fallbacks` counter.
#[test]
fn forced_fastpath_disable_is_leak_free() {
    type Make = fn(Arc<PageAllocator>, Arc<Rcu>) -> Arc<dyn ObjectAllocator>;
    let makes: [(&str, Make); 2] = [("prudence", make_prudence), ("slub", make_slub)];
    for (label, make) in makes {
        let faults = Arc::new(FaultInjector::new(7));
        faults.schedule(site::FASTPATH_DISABLE, Schedule::EveryKth(1));
        let pages = Arc::new(
            PageAllocator::builder()
                .fault_injector(Arc::clone(&faults))
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache = make(Arc::clone(&pages), rcu);
        let mut live: Vec<ObjPtr> = Vec::new();
        for _ in 0..8 {
            for _ in 0..512 {
                live.push(cache.allocate().expect("no OOM faults armed"));
            }
            for obj in live.drain(..) {
                // SAFETY: each object freed exactly once.
                unsafe { cache.free(obj) };
            }
        }
        assert!(
            faults.injected(site::FASTPATH_DISABLE) >= 1,
            "{label}: churn never reached a refill"
        );
        cache.quiesce();
        let stats = cache.stats();
        assert_eq!(stats.live_objects, 0, "{label}: accounting diverged");
        assert!(
            stats.fastpath_fallbacks >= 1,
            "{label}: disabled fast path never bounced an operation"
        );
        assert_eq!(cache.deferred_outstanding(), 0);
        drop(cache);
        assert_eq!(pages.used_bytes(), 0, "{label}: pages leaked across flips");
    }
}

/// Invariant 5, deterministic direction: a fault-free, amply-provisioned
/// run must never enter the recovery ladder, and therefore must never
/// attribute a recovery to any stage.
#[test]
fn clean_runs_enter_no_ladder_stage() {
    type Make = fn(Arc<PageAllocator>, Arc<Rcu>) -> Arc<dyn ObjectAllocator>;
    let makes: [(&str, Make); 2] = [("prudence", make_prudence), ("slub", make_slub)];
    for (label, make) in makes {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache = make(Arc::clone(&pages), rcu);
        let objs: Vec<ObjPtr> = (0..256).map(|_| cache.allocate().unwrap()).collect();
        for (i, obj) in objs.into_iter().enumerate() {
            // SAFETY: each object freed exactly once.
            unsafe {
                if i % 2 == 0 {
                    cache.free(obj);
                } else {
                    cache.free_deferred(obj);
                }
            }
        }
        cache.quiesce();
        let stats = cache.stats();
        assert_eq!(stats.oom_waits, 0, "{label}: ladder entered without pressure");
        assert_eq!(
            stats.oom_recoveries_stage1 + stats.oom_recoveries_stage2 + stats.oom_recoveries_stage3,
            0,
            "{label}: recovery stage recorded on a clean run"
        );
    }
}
