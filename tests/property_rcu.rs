//! Property tests on the RCU substrate: epoch monotonicity, grace-period
//! ordering, and callback completeness under arbitrary interleavings.

use std::sync::Arc;

use proptest::prelude::*;

use prudence_repro::rcu::{GpState, Rcu, RcuConfig};

#[derive(Debug, Clone)]
enum RcuOp {
    /// Capture a grace-period state.
    Snapshot,
    /// Enter and leave a read-side critical section.
    ReadSection,
    /// Wait for a full grace period.
    Synchronize,
    /// Queue a counting callback.
    CallRcu,
}

fn rcu_op() -> impl Strategy<Value = RcuOp> {
    prop_oneof![
        Just(RcuOp::Snapshot),
        Just(RcuOp::ReadSection),
        Just(RcuOp::Synchronize),
        Just(RcuOp::CallRcu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn epoch_and_grace_period_ordering(ops in proptest::collection::vec(rcu_op(), 1..60)) {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let reader = rcu.register();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut queued = 0u64;
        let mut snapshots: Vec<GpState> = Vec::new();
        let mut last_epoch = rcu.current_epoch();

        for op in &ops {
            match op {
                RcuOp::Snapshot => snapshots.push(rcu.gp_state()),
                RcuOp::ReadSection => {
                    let g = reader.read_lock();
                    // The epoch never moves two steps while we are pinned.
                    let pinned_epoch = rcu.current_epoch();
                    std::hint::spin_loop();
                    prop_assert!(rcu.current_epoch() <= pinned_epoch + 1);
                    drop(g);
                }
                RcuOp::Synchronize => {
                    let before = rcu.current_epoch();
                    rcu.synchronize();
                    prop_assert!(rcu.current_epoch() >= before + 2);
                    // Every snapshot taken before this synchronize is now
                    // complete.
                    for s in &snapshots {
                        prop_assert!(rcu.poll(*s), "old snapshot incomplete after synchronize");
                    }
                }
                RcuOp::CallRcu => {
                    let c = Arc::clone(&counter);
                    rcu.call_rcu(Box::new(move || {
                        c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }));
                    queued += 1;
                }
            }
            // Global epoch is monotone.
            let now = rcu.current_epoch();
            prop_assert!(now >= last_epoch, "epoch went backwards");
            last_epoch = now;
            // Snapshots are totally ordered by completion: if a later
            // snapshot completed, every earlier one has too.
            let mut complete_seen_from_back = false;
            for s in snapshots.iter().rev() {
                let done = s.is_completed_at(now);
                if complete_seen_from_back {
                    prop_assert!(done, "older snapshot incomplete while newer complete");
                }
                complete_seen_from_back |= done;
            }
        }
        // Barrier drains every queued callback.
        rcu.barrier();
        prop_assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), queued);
        prop_assert_eq!(rcu.callback_backlog(), 0);
    }

    #[test]
    fn nested_guards_unpin_exactly_once(depth in 1usize..12) {
        let rcu = Rcu::with_config(RcuConfig::eager());
        let reader = rcu.register();
        let mut guards = Vec::new();
        for _ in 0..depth {
            guards.push(reader.read_lock());
        }
        prop_assert!(reader.in_critical_section());
        let state = rcu.gp_state();
        while guards.len() > 1 {
            guards.pop();
            prop_assert!(reader.in_critical_section());
        }
        guards.pop();
        prop_assert!(!reader.in_critical_section());
        rcu.synchronize();
        prop_assert!(rcu.poll(state));
    }
}
