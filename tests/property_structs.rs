//! Model-based property tests: the RCU data structures must behave like
//! their std-collection models under arbitrary operation sequences — on
//! both allocators and under **all three reclamation backends**, with the
//! reclamation sites under fault injection (refused `rcu.advance` /
//! `reclaim.advance` steps only procrastinate).
//!
//! Beyond the randomized sequences, two deterministic scenarios pin down
//! the protected-traversal contract directly:
//!
//! * a hyaline walker parked mid-`for_each` is forcibly ejected and must
//!   resume — via retry-from-root and the positional/seek cursors — into
//!   an *exact* in-order output, with the guard tainted afterwards;
//! * a reader parked inside a walk while every entry is removed around it
//!   must neither crash nor block teardown: after it unparks, the caches
//!   drain to zero live objects under every backend.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use prudence_repro::alloc_api::ObjectAllocator;
use prudence_repro::fault::{site, FaultInjector, Schedule};
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::reclaim::{
    domain_for, ReclaimBackend, ReclaimConfig, ReclamationDomain,
};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::slub::{SlubCache, SlubTuning};
use prudence_repro::structs::{RcuBst, RcuHashMap, RcuList};

type Make = fn(Arc<PageAllocator>, Arc<dyn ReclamationDomain>) -> Arc<dyn ObjectAllocator>;

fn make_prudence(
    pages: Arc<PageAllocator>,
    domain: Arc<dyn ReclamationDomain>,
) -> Arc<dyn ObjectAllocator> {
    Arc::new(PrudenceCache::with_domain(
        "prop-structs",
        64,
        PrudenceConfig::new(2),
        pages,
        domain,
    ))
}

fn make_slub(
    pages: Arc<PageAllocator>,
    domain: Arc<dyn ReclamationDomain>,
) -> Arc<dyn ObjectAllocator> {
    SlubCache::with_domain(
        "prop-structs",
        64,
        2,
        SlubTuning::default(),
        pages,
        domain,
    )
}

const MAKES: [(&str, Make); 2] = [("prudence", make_prudence), ("slub", make_slub)];

/// A fresh (pages, rcu, domain) triple with aggressive reclamation
/// tuning (scans, seals and ejection fuses within milliseconds) and,
/// when `seed` is given, `Probability(0.25)` refusals on both advance
/// sites — a refused step procrastinates, it must never corrupt.
fn rig(
    backend: ReclaimBackend,
    seed: Option<u64>,
) -> (Arc<PageAllocator>, Arc<Rcu>, Arc<dyn ReclamationDomain>) {
    let pages = Arc::new(PageAllocator::new());
    let mut config = RcuConfig::eager();
    if let Some(seed) = seed {
        let faults = Arc::new(FaultInjector::new(seed));
        faults.schedule(site::RCU_ADVANCE, Schedule::Probability(0.25));
        faults.schedule(site::RECLAIM_ADVANCE, Schedule::Probability(0.25));
        config = config.with_fault_injector(faults);
    }
    let rcu = Arc::new(Rcu::with_config(config));
    let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
    (pages, rcu, domain)
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    InsertIfAbsent(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    let key = 0u64..32;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::InsertIfAbsent(k, v)),
        key.clone().prop_map(MapOp::Remove),
        key.prop_map(MapOp::Get),
    ]
}

fn check_map(cache: Arc<dyn ObjectAllocator>, rcu: Arc<Rcu>, ops: &[MapOp]) {
    let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&cache), 8);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let t = rcu.register();
    for op in ops {
        match *op {
            MapOp::Insert(k, v) => {
                let replaced = map.insert(k, v).unwrap();
                assert_eq!(replaced, model.insert(k, v).is_some());
            }
            MapOp::InsertIfAbsent(k, v) => {
                let inserted = map.insert_if_absent(k, v).unwrap();
                if inserted {
                    assert!(model.insert(k, v).is_none());
                }
            }
            MapOp::Remove(k) => {
                assert_eq!(map.remove(&k), model.remove(&k));
            }
            MapOp::Get(k) => {
                let g = t.read_lock();
                assert_eq!(map.get(&g, &k), model.get(&k).copied());
            }
        }
        assert_eq!(map.len(), model.len());
    }
    // Full-content check.
    let g = t.read_lock();
    let mut seen = HashMap::new();
    map.for_each(&g, |k, v| {
        seen.insert(*k, *v);
    });
    assert_eq!(seen, model);
    drop(g);
    drop(map);
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    let key = 0u64..48;
    prop_oneof![
        3 => (key.clone(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        2 => key.clone().prop_map(TreeOp::Remove),
        2 => key.prop_map(TreeOp::Lookup),
    ]
}

fn check_tree(cache: Arc<dyn ObjectAllocator>, rcu: Arc<Rcu>, ops: &[TreeOp]) {
    let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&cache));
    let mut model: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let t = rcu.register();
    for op in ops {
        match *op {
            TreeOp::Insert(k, v) => {
                let replaced = tree.insert(k, v).unwrap();
                assert_eq!(replaced, model.insert(k, v).is_some());
            }
            TreeOp::Remove(k) => {
                assert_eq!(tree.remove(k), model.remove(&k));
            }
            TreeOp::Lookup(k) => {
                let g = t.read_lock();
                assert_eq!(tree.lookup(&g, k), model.get(&k).copied());
            }
        }
        assert_eq!(tree.len(), model.len());
    }
    // In-order traversal must match the sorted model exactly (checks
    // both the BST invariant across successor-path rebuilding and the
    // robust seek-above walk's no-duplicate/no-skip cursor).
    let g = t.read_lock();
    let mut seen = Vec::new();
    tree.for_each(&g, |k, v| seen.push((k, *v)));
    let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(seen, expected);
    drop(g);
    drop(tree);
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
}

#[derive(Debug, Clone)]
enum ListOp {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn list_op() -> impl Strategy<Value = ListOp> {
    let key = 0u64..16;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| ListOp::Insert(k, v)),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| ListOp::Update(k, v)),
        key.clone().prop_map(ListOp::Remove),
        key.prop_map(ListOp::Lookup),
    ]
}

fn check_list(cache: Arc<dyn ObjectAllocator>, rcu: Arc<Rcu>, ops: &[ListOp]) {
    let list: RcuList<u64> = RcuList::new(Arc::clone(&cache));
    // Model: insertion-ordered front list with duplicate keys allowed;
    // lookup returns the most recently inserted entry for a key.
    let mut model: Vec<(u64, u64)> = Vec::new();
    let t = rcu.register();
    for op in ops {
        match *op {
            ListOp::Insert(k, v) => {
                list.insert(k, v).unwrap();
                model.insert(0, (k, v));
            }
            ListOp::Update(k, v) => {
                let updated = list.update(k, v).unwrap();
                let pos = model.iter().position(|&(mk, _)| mk == k);
                assert_eq!(updated, pos.is_some());
                if let Some(p) = pos {
                    model[p].1 = v;
                }
            }
            ListOp::Remove(k) => {
                let removed = list.remove(k);
                let pos = model.iter().position(|&(mk, _)| mk == k);
                assert_eq!(removed, pos.is_some());
                if let Some(p) = pos {
                    model.remove(p);
                }
            }
            ListOp::Lookup(k) => {
                let g = t.read_lock();
                let expected = model.iter().find(|&&(mk, _)| mk == k).map(|&(_, v)| v);
                assert_eq!(list.lookup(&g, k), expected);
            }
        }
        assert_eq!(list.len(), model.len());
    }
    let g = t.read_lock();
    let mut seen = Vec::new();
    list.for_each(&g, |k, v| seen.push((k, *v)));
    assert_eq!(seen, model);
    drop(g);
    drop(list);
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn hashmap_matches_model_on_every_backend(
        seed in any::<u64>(),
        ops in proptest::collection::vec(map_op(), 1..100),
    ) {
        for backend in ReclaimBackend::ALL {
            for (_, make) in MAKES {
                let (pages, rcu, domain) = rig(backend, Some(seed));
                check_map(make(pages, domain), rcu, &ops);
            }
        }
    }

    #[test]
    fn list_matches_model_on_every_backend(
        seed in any::<u64>(),
        ops in proptest::collection::vec(list_op(), 1..80),
    ) {
        for backend in ReclaimBackend::ALL {
            for (_, make) in MAKES {
                let (pages, rcu, domain) = rig(backend, Some(seed));
                check_list(make(pages, domain), rcu, &ops);
            }
        }
    }

    #[test]
    fn bst_matches_btreemap_model_on_every_backend(
        seed in any::<u64>(),
        ops in proptest::collection::vec(tree_op(), 1..120),
    ) {
        for backend in ReclaimBackend::ALL {
            for (_, make) in MAKES {
                let (pages, rcu, domain) = rig(backend, Some(seed));
                check_tree(make(pages, domain), rcu, &ops);
            }
        }
    }
}

/// A hyaline walker parked mid-`for_each` is forcibly ejected (its pin
/// blocks sealed batches past the aggressive fuse) and must resume into
/// an exact in-order emission — no duplicate, no skip — with the guard
/// tainted afterwards and a fresh pin clean again.
#[test]
fn hyaline_midwalk_ejection_resumes_walks_exactly() {
    for (name, make) in MAKES {
        let (pages, rcu, domain) = rig(ReclaimBackend::Hyaline, None);
        let cache = make(Arc::clone(&pages), Arc::clone(&domain));
        let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&cache));
        for k in 0..24 {
            tree.insert(k, k * 3).unwrap();
        }
        // Garbage allocated before pinning: an allocation under our own
        // pin could wait on reclamation this pin blocks.
        let mut garbage = Vec::new();
        for _ in 0..128 {
            garbage.push(cache.allocate().unwrap());
        }
        let t = rcu.register();
        let guard = t.read_lock();
        let before = domain.reclaim_stats().ejections;
        let mut seen = Vec::new();
        let mut ejected_mid_walk = false;
        tree.for_each(&guard, |k, v| {
            seen.push((k, *v));
            if k == 5 {
                // Seal batches against our pin, then drive the domain
                // until it ejects us — all from inside the walk.
                for obj in garbage.drain(..) {
                    unsafe { cache.free_deferred(obj) };
                }
                for _ in 0..64 {
                    std::thread::sleep(Duration::from_millis(1));
                    domain.advance();
                    if domain.reclaim_stats().ejections > before {
                        ejected_mid_walk = true;
                        break;
                    }
                }
            }
        });
        let expected: Vec<(u64, u64)> = (0..24).map(|k| (k, k * 3)).collect();
        assert_eq!(seen, expected, "{name}: exact in-order resume after ejection");
        assert!(ejected_mid_walk, "{name}: domain never ejected the parked walker");
        assert!(!guard.validate(), "{name}: ejection must taint the guard");
        drop(guard);
        let g2 = t.read_lock();
        assert!(g2.validate(), "{name}: fresh pin validates again");
        drop(g2);
        drop(tree);
        domain.synchronize();
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0, "{name}");
    }
}

/// Teardown with a reader parked *inside* a walk: every entry is removed
/// and the domain driven hard while the walker sits in the `for_each`
/// callback (hazards published, pin held). The walker must finish
/// without crashing or emitting reclaimed data, and the caches must
/// still drain to zero — under every backend, on both allocators.
#[test]
fn teardown_with_a_reader_parked_inside_a_walk() {
    for backend in ReclaimBackend::ALL {
        for (name, make) in MAKES {
            let (pages, rcu, domain) = rig(backend, None);
            let cache = make(Arc::clone(&pages), Arc::clone(&domain));
            let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&cache), 4);
            for k in 0..32 {
                map.insert(k, k + 100).unwrap();
            }
            let (parked_tx, parked_rx) = std::sync::mpsc::channel();
            let (go_tx, go_rx) = std::sync::mpsc::channel();
            let mut walked = 0usize;
            std::thread::scope(|s| {
                let (map, rcu) = (&map, &rcu);
                let worker = s.spawn(move || {
                    let t = rcu.register();
                    let guard = t.read_lock();
                    let mut n = 0usize;
                    let mut parked = false;
                    map.for_each(&guard, |_, v| {
                        assert!(*v >= 100, "emitted value from a reclaimed node");
                        n += 1;
                        if !parked {
                            parked = true;
                            parked_tx.send(()).unwrap();
                            go_rx.recv().unwrap();
                        }
                    });
                    n
                });
                parked_rx.recv().unwrap();
                // Tear the contents down around the parked walker.
                for k in 0..32 {
                    map.remove(&k);
                }
                for _ in 0..16 {
                    domain.advance();
                }
                go_tx.send(()).unwrap();
                walked = worker.join().expect("parked walker must not crash");
            });
            assert!(
                (1..=32).contains(&walked),
                "{backend} on {name}: walker emitted {walked} entries"
            );
            drop(map);
            domain.synchronize();
            cache.quiesce();
            assert_eq!(
                cache.stats().live_objects,
                0,
                "{backend} on {name}: teardown leaked"
            );
        }
    }
}
