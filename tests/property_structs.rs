//! Model-based property tests: the RCU data structures must behave like
//! their std-collection models under arbitrary operation sequences, on
//! both allocators.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use prudence_repro::alloc_api::ObjectAllocator;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::slub::SlubCache;
use prudence_repro::structs::{RcuBst, RcuHashMap, RcuList};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    InsertIfAbsent(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    let key = 0u64..32;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| MapOp::InsertIfAbsent(k, v)),
        key.clone().prop_map(MapOp::Remove),
        key.prop_map(MapOp::Get),
    ]
}

fn check_map(cache: Arc<dyn ObjectAllocator>, rcu: Arc<Rcu>, ops: &[MapOp]) {
    let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&cache), 8);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let t = rcu.register();
    for op in ops {
        match *op {
            MapOp::Insert(k, v) => {
                let replaced = map.insert(k, v).unwrap();
                assert_eq!(replaced, model.insert(k, v).is_some());
            }
            MapOp::InsertIfAbsent(k, v) => {
                let inserted = map.insert_if_absent(k, v).unwrap();
                if inserted {
                    assert!(model.insert(k, v).is_none());
                }
            }
            MapOp::Remove(k) => {
                assert_eq!(map.remove(&k), model.remove(&k));
            }
            MapOp::Get(k) => {
                let g = t.read_lock();
                assert_eq!(map.get(&g, &k), model.get(&k).copied());
            }
        }
        assert_eq!(map.len(), model.len());
    }
    // Full-content check.
    let g = t.read_lock();
    let mut seen = HashMap::new();
    map.for_each(&g, |k, v| {
        seen.insert(*k, *v);
    });
    assert_eq!(seen, model);
    drop(g);
    drop(map);
    cache.quiesce();
    assert_eq!(cache.stats().live_objects, 0);
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    let key = 0u64..48;
    prop_oneof![
        3 => (key.clone(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        2 => key.clone().prop_map(TreeOp::Remove),
        2 => key.prop_map(TreeOp::Lookup),
    ]
}

#[derive(Debug, Clone)]
enum ListOp {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn list_op() -> impl Strategy<Value = ListOp> {
    let key = 0u64..16;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| ListOp::Insert(k, v)),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| ListOp::Update(k, v)),
        key.clone().prop_map(ListOp::Remove),
        key.prop_map(ListOp::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn hashmap_matches_model_on_prudence(ops in proptest::collection::vec(map_op(), 1..150)) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "prop-map", 64, PrudenceConfig::new(1), pages, Arc::clone(&rcu),
        ));
        check_map(cache, rcu, &ops);
    }

    #[test]
    fn hashmap_matches_model_on_slub(ops in proptest::collection::vec(map_op(), 1..150)) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> =
            SlubCache::new("prop-map", 64, 1, pages, Arc::clone(&rcu));
        check_map(cache, rcu, &ops);
    }

    #[test]
    fn list_matches_model(ops in proptest::collection::vec(list_op(), 1..120)) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "prop-list", 64, PrudenceConfig::new(1), pages, Arc::clone(&rcu),
        ));
        let list: RcuList<u64> = RcuList::new(Arc::clone(&cache));
        // Model: insertion-ordered front list with duplicate keys allowed;
        // lookup returns the most recently inserted entry for a key.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let t = rcu.register();
        for op in &ops {
            match *op {
                ListOp::Insert(k, v) => {
                    list.insert(k, v).unwrap();
                    model.insert(0, (k, v));
                }
                ListOp::Update(k, v) => {
                    let updated = list.update(k, v).unwrap();
                    let pos = model.iter().position(|&(mk, _)| mk == k);
                    assert_eq!(updated, pos.is_some());
                    if let Some(p) = pos {
                        model[p].1 = v;
                    }
                }
                ListOp::Remove(k) => {
                    let removed = list.remove(k);
                    let pos = model.iter().position(|&(mk, _)| mk == k);
                    assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        model.remove(p);
                    }
                }
                ListOp::Lookup(k) => {
                    let g = t.read_lock();
                    let expected = model.iter().find(|&&(mk, _)| mk == k).map(|&(_, v)| v);
                    assert_eq!(list.lookup(&g, k), expected);
                }
            }
            assert_eq!(list.len(), model.len());
        }
        let g = t.read_lock();
        let mut seen = Vec::new();
        list.for_each(&g, |k, v| seen.push((k, *v)));
        assert_eq!(seen, model);
        drop(g);
        drop(list);
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0);
    }

    #[test]
    fn bst_matches_btreemap_model(ops in proptest::collection::vec(tree_op(), 1..200)) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cache: Arc<dyn ObjectAllocator> = Arc::new(PrudenceCache::new(
            "prop-bst", 64, PrudenceConfig::new(1), pages, Arc::clone(&rcu),
        ));
        let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&cache));
        let mut model: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let t = rcu.register();
        for op in &ops {
            match *op {
                TreeOp::Insert(k, v) => {
                    let replaced = tree.insert(k, v).unwrap();
                    assert_eq!(replaced, model.insert(k, v).is_some());
                }
                TreeOp::Remove(k) => {
                    assert_eq!(tree.remove(k), model.remove(&k));
                }
                TreeOp::Lookup(k) => {
                    let g = t.read_lock();
                    assert_eq!(tree.lookup(&g, k), model.get(&k).copied());
                }
            }
            assert_eq!(tree.len(), model.len());
        }
        // In-order traversal must match the sorted model exactly (checks
        // the BST invariant survives successor-path rebuilding).
        let g = t.read_lock();
        let mut seen = Vec::new();
        tree.for_each(&g, |k, v| seen.push((k, *v)));
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(seen, expected);
        drop(g);
        drop(tree);
        cache.quiesce();
        assert_eq!(cache.stats().live_objects, 0);
    }
}
