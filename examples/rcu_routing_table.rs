//! An RCU-protected routing table under reader load with route churn —
//! the classic RCU deployment the paper's introduction motivates.
//!
//! Wait-free readers resolve next hops at full speed while an updater
//! continuously replaces routes (copy-on-update + deferred free). The
//! same table code runs on the SLUB baseline and on Prudence; the example
//! prints lookup/update throughput and the allocator attributes for both.
//!
//! ```text
//! cargo run --release --example rcu_routing_table
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prudence_repro::alloc_api::CacheFactory;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceConfig, PrudenceFactory};
use prudence_repro::rcu::Rcu;
use prudence_repro::slub::SlubFactory;
use prudence_repro::structs::RcuHashMap;

/// A next-hop entry: (gateway, interface) — plain data, RCU-reclaimable.
type NextHop = [u32; 2];

const ROUTES: u64 = 1024;
const READERS: usize = 2;
const RUN: Duration = Duration::from_millis(1500);

fn run(label: &str, rcu: Arc<Rcu>, factory: &dyn CacheFactory) {
    let cache = factory.create_cache("route", 64);
    let table: Arc<RcuHashMap<u64, NextHop>> = Arc::new(RcuHashMap::new(Arc::clone(&cache), 1024));
    for prefix in 0..ROUTES {
        table
            .insert(prefix, [prefix as u32, 1])
            .expect("install route");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut updates = 0u64;
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let table = Arc::clone(&table);
            let rcu = Arc::clone(&rcu);
            let stop = Arc::clone(&stop);
            let lookups = Arc::clone(&lookups);
            s.spawn(move || {
                let thread = rcu.register();
                let mut n = 0u64;
                let mut prefix = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = thread.read_lock();
                    let hop = table.get(&guard, &(prefix % ROUTES));
                    drop(guard);
                    assert!(hop.is_some(), "route must always resolve");
                    prefix += 1;
                    n += 1;
                }
                lookups.fetch_add(n, Ordering::Relaxed);
            });
        }
        // Route churn: every insert on an existing prefix is a
        // copy-on-update that defers the old version's free.
        let mut gen = 1u32;
        while start.elapsed() < RUN {
            for prefix in 0..ROUTES {
                table
                    .insert(prefix, [prefix as u32, gen])
                    .expect("update route");
                updates += 1;
            }
            gen = gen.wrapping_add(1);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    cache.quiesce();
    let stats = cache.stats();
    println!(
        "{label:9} lookups/s={:>10.0} updates/s={:>9.0} | hit%={:.1} churns(obj/slab)={}/{} peak_slabs={}",
        lookups.load(Ordering::Relaxed) as f64 / elapsed,
        updates as f64 / elapsed,
        stats.hit_percent(),
        stats.object_cache_churns(),
        stats.slab_churns(),
        stats.slabs_peak,
    );
}

fn main() {
    println!(
        "routing table: {ROUTES} routes, {READERS} wait-free readers, continuous route churn\n"
    );
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::new());
        let factory = SlubFactory::new(READERS + 1, Arc::clone(&pages), Arc::clone(&rcu));
        run("slub", rcu, &factory);
    }
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::new());
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(READERS + 1),
            Arc::clone(&pages),
            Arc::clone(&rcu),
        );
        run("prudence", rcu, &factory);
    }
}
