//! §3.4 denial-of-service scenario: a malicious open/close flood.
//!
//! The paper: extended object lifetimes "can be exploited to create
//! denial-of-service attacks ... a malicious user performs file open-close
//! operations in a tight loop to generate [a] high rate of deferred
//! objects", exhausting memory. With the baseline, deferred `filp`
//! objects pile up in the throttled RCU-callback backlog until allocation
//! fails; Prudence reuses them right after each grace period and rides
//! out the flood inside a small memory budget.
//!
//! ```text
//! cargo run --release --example dos_resilience
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use prudence_repro::alloc_api::CacheFactory;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceConfig, PrudenceFactory};
use prudence_repro::rcu::{Rcu, RcuConfig};
use prudence_repro::simfs::{FsError, SimFs};
use prudence_repro::slub::SlubFactory;

const MEMORY_BUDGET: usize = 4 << 20; // a deliberately tight 4 MiB
const ATTACK: Duration = Duration::from_secs(2);
const ATTACKERS: usize = 2;

fn flood(label: &str, rcu: &Arc<Rcu>, pages: &Arc<PageAllocator>, factory: &dyn CacheFactory) {
    let fs = SimFs::new(factory);
    let ino = fs.create(0, 1).expect("target file");
    let start = Instant::now();
    let mut opens = 0u64;
    let mut failed = false;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..ATTACKERS {
            let fs = &fs;
            handles.push(s.spawn(move || {
                let mut local = 0u64;
                while start.elapsed() < ATTACK {
                    match fs.open(ino) {
                        Ok(fd) => {
                            fs.close(fd).expect("close");
                            local += 1;
                        }
                        Err(FsError::NoMemory) => return (local, true),
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                (local, false)
            }));
        }
        for h in handles {
            let (local, oom) = h.join().expect("attacker thread");
            opens += local;
            failed |= oom;
        }
    });
    let backlog = rcu.callback_backlog();
    println!(
        "{label:9} {opens:>9} open/close cycles | peak mem {:>5} KiB | callback backlog peak {:>6} | {}",
        pages.peak_bytes() / 1024,
        rcu.stats().max_callback_backlog.max(backlog),
        if failed {
            "ALLOCATION FAILED (DoS succeeded)"
        } else {
            "survived the flood"
        }
    );
    fs.quiesce();
}

fn main() {
    println!(
        "open/close flood: {ATTACKERS} attackers, {} MiB memory budget, {:?}\n",
        MEMORY_BUDGET >> 20,
        ATTACK
    );
    {
        let pages = Arc::new(
            PageAllocator::builder()
                .limit_bytes(MEMORY_BUDGET)
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(RcuConfig::linux_like()));
        let factory = SlubFactory::new(ATTACKERS, Arc::clone(&pages), Arc::clone(&rcu));
        flood("slub", &rcu, &pages, &factory);
    }
    {
        let pages = Arc::new(
            PageAllocator::builder()
                .limit_bytes(MEMORY_BUDGET)
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(RcuConfig::linux_like()));
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(ATTACKERS),
            Arc::clone(&pages),
            Arc::clone(&rcu),
        );
        flood("prudence", &rcu, &pages, &factory);
    }
}
