//! §3.4 denial-of-service scenario, production-shaped: a slowloris and
//! churn storm against the sharded server workload.
//!
//! The paper: extended object lifetimes "can be exploited to create
//! denial-of-service attacks ... a malicious user performs file open-close
//! operations in a tight loop to generate [a] high rate of deferred
//! objects", exhausting memory. The original form of this example was a
//! raw open/close flood with no assertions; the attack now lives inside
//! the server scenario (`pbs_workloads::apps::run_server`), where half
//! the storm's dials are slowloris attackers that hold connections
//! without completing requests while churn floods the accept path. This
//! wrapper runs that scenario on both allocators and *asserts* graceful
//! degradation instead of merely printing it:
//!
//! * overload is shed (backlogged accepts counted, never panicked);
//! * slow connections are evicted by deadline, not leaked;
//! * the alloc path's p99.9 latency stays bounded through the storm;
//! * service recovers after the storm and tears down to zero bytes.
//!
//! ```text
//! cargo run --release --example dos_resilience
//! ```

use prudence_repro::workloads::apps::{run_server, ServerParams};
use prudence_repro::workloads::AllocatorKind;

fn main() {
    let params = ServerParams::smoke();
    println!(
        "slowloris + churn storm: {} connections x {} shards, {:.0}% attackers, \
         storm {}ms\n",
        params.connections,
        params.shards,
        params.attacker_fraction * 100.0,
        params.storm_ms,
    );
    let mut failed = false;
    for kind in AllocatorKind::BOTH {
        let report = run_server(kind, &params);
        println!("{}", report.render());
        for violation in &report.violations {
            println!("  VIOLATION: {violation}");
            failed = true;
        }
        // The DoS-specific claims, asserted on top of the scenario's own
        // gates so the example fails loudly if resilience regresses.
        assert_eq!(report.panics, 0, "{kind}: a reactor shard panicked under attack");
        assert!(
            report.storm.shed_accepts > 0,
            "{kind}: the storm never pushed the accept path into shedding"
        );
        assert!(
            report.totals.timeouts > 0,
            "{kind}: no slowloris connection was evicted by deadline"
        );
        assert!(
            report.recovery.requests > 0,
            "{kind}: service did not come back after the storm"
        );
        assert_eq!(
            report.used_bytes_after_teardown, 0,
            "{kind}: memory survived teardown"
        );
    }
    if failed {
        eprintln!("\ndegradation gates violated; see report lines above");
        std::process::exit(1);
    }
    println!("\nboth allocators shed the attack, evicted stallers and recovered");
}
