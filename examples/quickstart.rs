//! Quickstart: the Prudence allocator in five minutes.
//!
//! Shows the paper's Listing 2 flow — `free_deferred` as a turnkey
//! replacement for registering RCU callbacks — plus the allocator
//! statistics behind the evaluation figures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use prudence_repro::alloc_api::ObjectAllocator;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceCache, PrudenceConfig};
use prudence_repro::rcu::Rcu;

fn main() {
    // Substrates: a page allocator (the "buddy allocator") and an RCU
    // domain (the synchronization mechanism Prudence integrates with).
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::new());

    // A Prudence slab cache for 256-byte objects on 4 CPU slots.
    let cache = PrudenceCache::new(
        "quickstart",
        256,
        PrudenceConfig::new(4),
        Arc::clone(&pages),
        Arc::clone(&rcu),
    );

    // A reader enters a critical section; objects it can reach are
    // protected until the guard drops.
    let reader = rcu.register();

    // Writer side (paper Listing 2): allocate a new version, publish it,
    // defer the free of the old version.
    let old_version = cache.allocate().expect("allocate old version");
    let new_version = cache.allocate().expect("allocate new version");
    // SAFETY: both objects are exclusively owned and 256 bytes.
    unsafe {
        old_version.as_ptr().cast::<u64>().write(1);
        new_version.as_ptr().cast::<u64>().write(2);
    }

    let guard = reader.read_lock(); // a reader is now "traversing"
    // ... the writer unlinks old_version and defers its free:
    // SAFETY: old_version is unlinked (no new readers) and freed once.
    unsafe { cache.free_deferred(old_version) };

    println!("deferred objects waiting: {}", cache.deferred_outstanding());
    assert_eq!(cache.deferred_outstanding(), 1);

    // The reader finishes; after a grace period the deferred object is
    // reusable *inside the allocator* — no callback ever runs.
    drop(guard);
    rcu.synchronize();
    cache.quiesce();
    println!("deferred objects waiting: {}", cache.deferred_outstanding());

    // SAFETY: new_version freed once, not used after.
    unsafe { cache.free(new_version) };

    let stats = cache.stats();
    println!(
        "stats: allocs={} hit%={:.1} deferred_frees={} grows={} peak_slabs={}",
        stats.alloc_requests,
        stats.hit_percent(),
        stats.deferred_frees,
        stats.grows,
        stats.slabs_peak
    );
    println!("memory outstanding: {} bytes", pages.used_bytes());
    drop(cache);
    assert_eq!(pages.used_bytes(), 0);
    println!("all pages returned — done");
}
