//! A Postmark-style mail server on the simulated filesystem.
//!
//! Each "delivery" creates a message file, appends the body, re-reads it
//! for the IMAP client, and eventually expunges it — the create/append/
//! read/delete churn Postmark models and the paper's headline application
//! benchmark (+18 % with Prudence). Runs the same server loop on both
//! allocators and prints the Figure 7-11 attribute rows.
//!
//! ```text
//! cargo run --release --example mailserver
//! ```

use std::sync::Arc;

use prudence_repro::alloc_api::CacheFactory;
use prudence_repro::mem::PageAllocator;
use prudence_repro::prudence::{PrudenceConfig, PrudenceFactory};
use prudence_repro::rcu::Rcu;
use prudence_repro::simfs::SimFs;
use prudence_repro::slub::SlubFactory;

const MAILBOXES: u64 = 8;
const DELIVERIES: u64 = 20_000;

fn run(label: &str, rcu: &Arc<Rcu>, factory: &dyn CacheFactory) {
    let fs = SimFs::new(factory);
    let reader = rcu.register();
    let start = std::time::Instant::now();
    let mut seq = 0u64;
    for delivery in 0..DELIVERIES {
        let mailbox = delivery % MAILBOXES;
        // Deliver: create the message file and append the body.
        let name = seq;
        seq += 1;
        let ino = fs.create(mailbox, name).expect("deliver message");
        let fd = fs.open(ino).expect("open for append");
        fs.append(fd, 2048).expect("write body");
        fs.close(fd).expect("close");
        // IMAP fetch: RCU-walk lookup + read.
        let guard = reader.read_lock();
        let found = fs.lookup(&guard, mailbox, name).expect("message exists");
        drop(guard);
        let fd = fs.open(found).expect("open for read");
        fs.read(fd, 2048).expect("read body");
        fs.close(fd).expect("close");
        // Expunge an older message once the mailbox has a few.
        if delivery >= MAILBOXES * 4 {
            let victim = seq - MAILBOXES * 4 - 1;
            let _ = fs.unlink(victim % MAILBOXES, victim);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    fs.quiesce();
    println!(
        "{label}: {:.0} deliveries/s, {} messages resident",
        DELIVERIES as f64 / elapsed,
        fs.file_count()
    );
    for (cache, s) in fs.stats() {
        println!(
            "  {cache:<12} hit%={:>5.1} deferred={:>6} churns(obj/slab)={}/{} peak_slabs={}",
            s.hit_percent(),
            s.deferred_frees,
            s.object_cache_churns(),
            s.slab_churns(),
            s.slabs_peak
        );
    }
}

fn main() {
    println!("mail server: {MAILBOXES} mailboxes, {DELIVERIES} deliveries\n");
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::new());
        let factory = SlubFactory::new(2, pages, Arc::clone(&rcu));
        run("slub", &rcu, &factory);
    }
    println!();
    {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::new());
        let factory = PrudenceFactory::new(PrudenceConfig::new(2), pages, Arc::clone(&rcu));
        run("prudence", &rcu, &factory);
    }
}
