//! # prudence-repro — facade crate
//!
//! Re-exports the building blocks of the Prudence (ASPLOS '16) reproduction
//! so examples and integration tests can use one import path.
//!
//! * [`fault`] — deterministic fault injection for OOM/stall paths
//! * [`mem`] — page allocator substrate
//! * [`rcu`] — epoch-based RCU synchronization
//! * [`alloc_api`] — shared allocator traits and statistics
//! * [`slub`] — baseline SLUB-style allocator
//! * [`prudence`] — the Prudence allocator (the paper's contribution)
//! * [`structs`] — RCU-protected data structures
//! * [`simfs`] / [`simnet`] — simulated kernel subsystems
//! * [`workloads`] — benchmark drivers regenerating the paper's figures

pub use pbs_alloc_api as alloc_api;
pub use pbs_fault as fault;
pub use pbs_mem as mem;
pub use pbs_rcu as rcu;
pub use pbs_simfs as simfs;
pub use pbs_simnet as simnet;
pub use pbs_slub as slub;
pub use pbs_structs as structs;
pub use pbs_workloads as workloads;
pub use prudence;
