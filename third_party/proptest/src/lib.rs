//! Vendored shim for the `proptest` API surface this workspace uses:
//! `Strategy`/`prop_map`, `Just`, `any`, ranges as strategies, tuple
//! strategies, `collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` macros. See `third_party/README.md` for why dependencies
//! are vendored.
//!
//! The shim runs each property for `ProptestConfig::cases` deterministic
//! seeds. There is no shrinking: a failing case reports its seed and the
//! generated value via the panic message, which is enough to reproduce
//! (seeds are derived from the case index alone).

use std::ops::Range;

pub mod test_runner {
    /// Per-property configuration (`cases` is the only knob the shim
    /// honors; the rest exist for struct-update syntax compatibility).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted, ignored: the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one numbered case of one property.
        pub fn for_case(case: u32) -> Self {
            // Fixed base seed: runs are reproducible across invocations.
            Self {
                state: 0xC0FF_EE00_D15E_A5E5 ^ ((case as u64) << 1),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A [`Strategy`] that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Output of [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

trait ObjStrategy<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ObjStrategy<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ObjStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Weighted choice among strategies (backing for `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights summed to total_weight")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![ $( 1 => $strategy ),+ ]
    };
}

/// Property-scoped `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-scoped `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares `#[test]` functions that run their body across many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let run = move || $body;
                run();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::Config::default()); $($rest)*
        );
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            2 => Just(Pick::A),
            1 => any::<u64>().prop_map(Pick::B),
        ]) {
            match op {
                Pick::A => {}
                Pick::B(_) => {}
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn oneof_weights_reach_every_arm() {
        use crate::test_runner::TestRng;
        let strat = prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let mut seen = [false; 2];
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            seen[crate::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
