//! Vendored, dependency-free `#[derive(Serialize, Deserialize)]` for the
//! serde shim (see `third_party/README.md`). Without `syn`/`quote`
//! available, this walks the raw `TokenStream` directly. It supports what
//! the workspace uses: non-generic structs with named fields. Anything
//! else (enums, tuple structs, generics) is rejected with a compile error.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// A struct's name and field identifiers, extracted from its token stream.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;
    let mut body = None;

    while let Some(token) = tokens.next() {
        match token {
            // Skip outer attributes (`#[...]`) and doc comments.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, got {other:?}")),
                }
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        return Err("generic structs are not supported".into());
                    }
                    _ => return Err("only structs with named fields are supported".into()),
                }
                break;
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                return Err("enums are not supported".into());
            }
            _ => {}
        }
    }

    let (name, body) = match (name, body) {
        (Some(n), Some(b)) => (n, b),
        _ => return Err("expected a struct with named fields".into()),
    };

    // Field names are the identifiers directly before a lone `:` at the top
    // level of the body (angle-bracket depth 0 keeps generic arguments out;
    // `::` path separators are joint-spaced and skipped).
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_ident = None;
    let mut body_tokens = body.into_iter().peekable();
    while let Some(token) = body_tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                body_tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ':' && p.spacing() == Spacing::Alone && angle_depth == 0 =>
            {
                if let Some(ident) = prev_ident.take() {
                    fields.push(ident);
                }
            }
            TokenTree::Punct(p)
                if p.as_char() == ':' && p.spacing() == Spacing::Joint =>
            {
                // First half of `::`; consume the second so it is not
                // mistaken for a field separator.
                body_tokens.next();
            }
            TokenTree::Ident(ident) => prev_ident = Some(ident.to_string()),
            _ => {}
        }
    }

    if fields.is_empty() {
        return Err(format!("struct {name} has no named fields"));
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let entries: String = shape
        .fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_content(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let inits: String = shape
        .fields
        .iter()
        .map(|f| format!("{f}: serde::map_field(entries, {f:?})?,"))
        .collect();
    format!(
        "impl serde::Deserialize for {} {{\n\
             fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {{\n\
                 let entries = serde::expect_map(content)?;\n\
                 Ok(Self {{ {inits} }})\n\
             }}\n\
         }}",
        shape.name
    )
    .parse()
    .unwrap()
}
