//! Vendored shim for the `rand` API surface this workspace uses:
//! `Rng::{gen_range, gen_bool, gen}`, `SeedableRng::seed_from_u64`, and
//! `rngs::{StdRng, SmallRng}`. See `third_party/README.md` for why
//! dependencies are vendored.
//!
//! The generator is SplitMix64 seeded xoshiro256**, which is more than
//! adequate for workload generation (the only use in this workspace); it
//! makes no cryptographic claims, exactly like the real `StdRng`'s
//! contract ("not guaranteed to be reproducible between releases").

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; the modulo bias of the
                // alternative is irrelevant for workload generation but
                // this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// A uniformly random value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`]; this shim has one generator quality tier.
    pub type SmallRng = StdRng;
}

/// A generator seeded from the system clock (the shim's stand-in for OS
/// entropy; workload code always seeds explicitly).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

/// `rand::prelude`-style glob import support.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3u32);
            assert!(w <= 3);
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit: {seen:?}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
