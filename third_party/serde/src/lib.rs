//! Vendored shim for the `serde` API surface this workspace uses:
//! `Serialize`/`Deserialize` traits plus their derive macros (from the
//! companion `serde_derive` shim). See `third_party/README.md` for why
//! dependencies are vendored.
//!
//! Instead of serde's visitor architecture, values convert to and from a
//! single self-describing [`Content`] tree, which `serde_json` renders and
//! parses. This supports exactly what the workspace needs: plain structs
//! with named fields over primitives, `String`, `Option`, `Vec`, and
//! tuples.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree; the intermediate form between Rust values
/// and any concrete format.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / a vacant `Option`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only used when negative).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Content)>),
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into [`Content`].
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Conversion out of [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        Error::custom(format!("{v} out of range for i64"))
                    })?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

/// Derive-macro helper: views a content tree as a struct's field map.
pub fn expect_map(content: &Content) -> Result<&[(String, Content)], Error> {
    match content {
        Content::Map(entries) => Ok(entries),
        other => Err(Error::custom(format!("expected map, got {other:?}"))),
    }
}

/// Derive-macro helper: extracts and deserializes one named field.
pub fn map_field<T: Deserialize>(
    entries: &[(String, Content)],
    name: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::from_content(value),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_content(&vec![1u32, 2].to_content()).unwrap(),
            vec![1, 2]
        );
        let pair = ("k".to_string(), 3u64);
        assert_eq!(
            <(String, u64)>::from_content(&pair.to_content()).unwrap(),
            pair
        );
    }

    #[test]
    fn integers_cross_decode() {
        // JSON has one number kind; integral floats decode as ints.
        assert_eq!(u64::from_content(&Content::F64(8.0)).unwrap(), 8);
        assert_eq!(i64::from_content(&Content::U64(8)).unwrap(), 8);
        assert!(u64::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn map_field_lookup() {
        let entries = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(map_field::<u64>(&entries, "a").unwrap(), 1);
        assert!(map_field::<u64>(&entries, "b").is_err());
    }
}
