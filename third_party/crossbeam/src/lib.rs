//! Vendored shim for the `crossbeam` API surface this workspace uses:
//! `channel::{unbounded, Sender, Receiver}` (over `std::sync::mpsc`) and
//! `utils::CachePadded` (a `#[repr(align)]` wrapper). See
//! `third_party/README.md` for why dependencies are vendored.

/// Multi-producer channels with crossbeam's API over `std::sync::mpsc`.
pub mod channel {
    use std::fmt;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// closes when every sender is dropped.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }
}

/// Utilities: cache-line padding.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so two adjacent `CachePadded`
    /// values never share a cache line (128 covers the spatial-prefetcher
    /// pairing on modern x86 and the 128-byte lines on Apple silicon).
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads `value` to a cache line.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Consumes the padding, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded").field("value", &self.value).finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::utils::CachePadded;

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7usize).unwrap();
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err(), "closed channel must error");
    }

    #[test]
    fn cache_padded_layout() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<[CachePadded<u64>; 2]>() >= 256);
        let p = CachePadded::new(3u32);
        assert_eq!(*p, 3);
        assert_eq!(p.into_inner(), 3);
    }
}
