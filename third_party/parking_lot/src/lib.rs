//! Vendored shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal, std-backed implementations of its external
//! dependencies (see `third_party/README.md`). This crate exposes
//! `Mutex`/`MutexGuard` and `RwLock` with parking_lot's ergonomics —
//! guard-returning `lock()` (no `Result`), `Option`-returning `try_lock()`
//! — implemented over `std::sync`. Poisoning is deliberately ignored, which
//! matches parking_lot semantics (a panicking holder does not poison the
//! lock).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }

    /// Whether the mutex is currently locked by any thread.
    pub fn is_locked(&self) -> bool {
        match self.0.try_lock() {
            Ok(_) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
