//! Vendored shim for the `serde_json` API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, the `json!` macro, and
//! `Value`. See `third_party/README.md` for why dependencies are vendored.
//!
//! JSON text maps directly onto the serde shim's [`Content`] tree, which
//! this crate re-exports as [`Value`].

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// A parsed JSON value (the serde shim's content tree).
pub type Value = Content;

/// Serializes a value into compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value into 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_content(&content)
}

/// Builds a [`Value`] from JSON-shaped syntax; object and array literals
/// nest, and any other token sequence is a Rust expression implementing
/// `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::json!($value)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_content(
    content: &Content,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            // `{}` prints integral floats without a decimal point; keep one
            // so the value reads back as a float-compatible number.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            write_bracketed(items.len(), b'[', indent, depth, out, |i, out| {
                write_content(&items[i], indent, depth + 1, out)
            })?;
        }
        Content::Map(entries) => {
            write_bracketed(entries.len(), b'{', indent, depth, out, |i, out| {
                let (key, value) = &entries[i];
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, indent, depth + 1, out)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    len: usize,
    open: u8,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(usize, &mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(i, out)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than mangle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid utf-8"))?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("latent \"cache\"".to_string())),
            ("count".to_string(), Value::U64(3)),
            ("delta".to_string(), Value::I64(-2)),
            ("ratio".to_string(), Value::F64(0.5)),
            (
                "tags".to_string(),
                Value::Seq(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_shape() {
        let value = json!({ "a": 1, "b": [2, 3] });
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\n  \"a\": 1"), "got: {text}");
        assert!(text.ends_with('}'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn json_macro_shapes() {
        let inner = vec![1u32, 2];
        let v = json!({
            "nested": { "deep": [true, null] },
            "expr": inner,
            "float": 1.25,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"nested":{"deep":[true,null]},"expr":[1,2],"float":1.25}"#
        );
    }

    #[test]
    fn float_integral_keeps_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("line\n\ttab \\ \"q\" \u{1}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let unicode: Value = from_str(r#""é""#).unwrap();
        assert_eq!(unicode, Value::Str("é".to_string()));
    }
}
