//! Vendored shim for the `criterion` API surface this workspace uses:
//! `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_custom}`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/
//! `criterion_main!` macros. See `third_party/README.md` for why
//! dependencies are vendored.
//!
//! The statistics are intentionally simple — warm-up, timed sample
//! batches, then median/min/max per iteration — because this workspace
//! treats criterion output as human-readable guidance; the committed
//! perf numbers come from the dedicated `perf_json` harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts CLI configuration for API parity; the shim has none.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("single", f);
        group.finish();
        self
    }
}

/// A parameterized benchmark label, printed as `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and its input parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

/// Work performed per iteration, reported alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the untimed warm-up duration.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", id.function, id.parameter);
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (output is printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::Calibrate,
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the per-sample iteration count until one sample
        // is long enough to time reliably.
        let per_sample = self
            .measurement_time
            .div_f64(self.sample_size as f64)
            .max(Duration::from_micros(200));
        loop {
            f(&mut bencher);
            if bencher.elapsed >= per_sample || bencher.iters >= 1 << 24 {
                break;
            }
            let grow = if bencher.elapsed < per_sample / 8 { 8 } else { 2 };
            bencher.iters = (bencher.iters * grow).min(1 << 24);
        }
        let iters = bencher.iters;

        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
        }

        // Timed samples.
        bencher.mode = Mode::Measure;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];

        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  thrpt: {:>12.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  thrpt: {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            _ => String::new(),
        };
        println!(
            "{}/{label:<28} time: [{min:>10.1} ns {median:>10.1} ns {max:>10.1} ns]{throughput}",
            self.name
        );
    }
}

enum Mode {
    Calibrate,
    Measure,
}

/// Runs and times the benchmark body.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body`, running it many times per sample.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let _ = &self.mode;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets `body` time `iters` iterations itself and report the total.
    pub fn iter_custom(&mut self, mut body: impl FnMut(u64) -> Duration) {
        self.elapsed = body(self.iters);
    }
}

/// Best-effort optimization barrier (std's hint on stable).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark-group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("spin", |b| b.iter(|| count = count.wrapping_add(1)));
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_custom_reports_given_duration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("custom");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(1));
        group.warm_up_time(Duration::ZERO);
        group.bench_function("fixed", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
        group.finish();
    }
}
