//! Raw slab representation shared by both allocators.
//!
//! A slab is one power-of-two-sized, equally-aligned [`PageBlock`] carved
//! into equal objects after a small in-slab header. Because size equals
//! alignment, masking any object address recovers the slab base — the
//! userspace analog of the kernel's page→slab mapping — and the header
//! stores the slab's index in its cache's slab table.
//!
//! All mutation of a `RawSlab` (and all header invalidation) happens under
//! the owning cache's node lock; the header itself is written once at
//! creation.

use std::ptr::NonNull;

use pbs_mem::PageBlock;

use crate::sizing::{SizingPolicy, SLAB_HEADER_RESERVE};
use crate::traits::ObjPtr;

const SLAB_MAGIC: u64 = 0x5052_5544_454e_4345; // "PRUDENCE"

/// The header written at the base of every slab.
#[repr(C)]
struct SlabHeader {
    magic: u64,
    slab_index: u64,
}

/// Reads the slab index for an object pointer by masking to the slab base.
///
/// # Safety
///
/// `obj` must point into a live slab of a cache whose policy has exactly
/// `slab_bytes` bytes per slab. The caller must hold the owning cache's
/// node lock (headers are invalidated under it).
pub unsafe fn resolve_slab_index(obj: ObjPtr, slab_bytes: usize) -> usize {
    debug_assert!(slab_bytes.is_power_of_two());
    let base = obj.addr() & !(slab_bytes - 1);
    let header = base as *const SlabHeader;
    debug_assert_eq!((*header).magic, SLAB_MAGIC, "bad slab magic");
    (*header).slab_index as usize
}

/// One slab: an owned page block plus free-list bookkeeping.
///
/// Invariants:
/// * `free.len() + allocated == policy.objects_per_slab` where `allocated`
///   counts objects currently outside the free list (live, cached in a CPU
///   cache, or deferred),
/// * every index in `free` is unique and `< objects_per_slab`.
#[derive(Debug)]
pub struct RawSlab {
    block: PageBlock,
    object_size: usize,
    objects: u16,
    objects_base: usize,
    free: Vec<u16>,
    allocated: u16,
}

impl RawSlab {
    /// Carves a new slab out of `block` and stamps its header.
    ///
    /// `color` cycles the object-area start offset across slabs to spread
    /// hardware cache-set pressure (Bonwick's slab coloring, reused by
    /// Prudence per paper §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `block` is smaller than the policy's slab size or
    /// misaligned.
    pub fn new(block: PageBlock, policy: &SizingPolicy, slab_index: usize, color: usize) -> Self {
        assert!(block.len() >= policy.slab_bytes);
        assert_eq!(block.base().as_ptr() as usize % policy.slab_bytes, 0);
        let spare = policy.slab_bytes - SLAB_HEADER_RESERVE - policy.payload_bytes();
        let color_offset = ((color % policy.colors) * 64).min(spare) & !7;
        let objects_base = block.base().as_ptr() as usize + SLAB_HEADER_RESERVE + color_offset;
        // SAFETY: the block is exclusively owned and large enough for the
        // header.
        unsafe {
            let header = block.base().as_ptr() as *mut SlabHeader;
            header.write(SlabHeader {
                magic: SLAB_MAGIC,
                slab_index: slab_index as u64,
            });
        }
        let objects = policy.objects_per_slab as u16;
        Self {
            block,
            object_size: policy.object_size,
            objects,
            objects_base,
            // LIFO free list: freshly-freed objects are reallocated first.
            free: (0..objects).rev().collect(),
            allocated: 0,
        }
    }

    /// Total objects in the slab.
    pub fn capacity(&self) -> usize {
        self.objects as usize
    }

    /// Objects currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Objects currently outside the free list.
    pub fn allocated_count(&self) -> usize {
        self.allocated as usize
    }

    /// Whether every object is out (candidate for the full list).
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Whether every object is on the free list (candidate for release).
    pub fn is_free(&self) -> bool {
        self.allocated == 0
    }

    /// Pointer to object `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn object_ptr(&self, index: u16) -> ObjPtr {
        assert!(index < self.objects, "object index out of range");
        let addr = self.objects_base + index as usize * self.object_size;
        // SAFETY: objects_base is non-null and offsets stay in the block.
        ObjPtr::new(unsafe { NonNull::new_unchecked(addr as *mut u8) })
    }

    /// Index of an object pointer within this slab.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the pointer does not address an object
    /// boundary of this slab.
    pub fn index_of(&self, obj: ObjPtr) -> u16 {
        let off = obj.addr().wrapping_sub(self.objects_base);
        debug_assert_eq!(off % self.object_size, 0, "pointer not on object boundary");
        let idx = off / self.object_size;
        debug_assert!(idx < self.objects as usize, "pointer outside slab");
        idx as u16
    }

    /// Pops up to `n` objects off the free list (for object-cache refill).
    pub fn take(&mut self, n: usize, out: &mut Vec<ObjPtr>) -> usize {
        let take = n.min(self.free.len());
        for _ in 0..take {
            let idx = self.free.pop().expect("free list non-empty");
            out.push(self.object_ptr(idx));
        }
        self.allocated += take as u16;
        take
    }

    /// Returns one object to the free list (object-cache flush).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double-free of the same index.
    pub fn give_back(&mut self, obj: ObjPtr) {
        let idx = self.index_of(obj);
        self.give_back_index(idx);
    }

    /// Returns object `index` to the free list.
    pub fn give_back_index(&mut self, index: u16) {
        debug_assert!(!self.free.contains(&index), "double free of object {index}");
        debug_assert!(self.allocated > 0);
        self.free.push(index);
        self.allocated -= 1;
    }

    /// Consumes the slab and returns its page block for release.
    pub fn into_block(self) -> PageBlock {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;

    fn mk(policy: &SizingPolicy, index: usize) -> (RawSlab, PageAllocator) {
        let pages = PageAllocator::new();
        let block = pages
            .allocate_aligned(policy.slab_bytes, policy.slab_bytes)
            .unwrap();
        (RawSlab::new(block, policy, index, 0), pages)
    }

    #[test]
    fn carve_take_give_back_roundtrip() {
        let policy = SizingPolicy::for_object_size(64);
        let (mut slab, pages) = mk(&policy, 7);
        assert_eq!(slab.free_count(), policy.objects_per_slab);
        let mut objs = Vec::new();
        let took = slab.take(5, &mut objs);
        assert_eq!(took, 5);
        assert_eq!(slab.allocated_count(), 5);
        for &o in &objs {
            assert_eq!(unsafe { resolve_slab_index(o, policy.slab_bytes) }, 7);
            assert_eq!(slab.object_ptr(slab.index_of(o)), o);
        }
        for o in objs {
            slab.give_back(o);
        }
        assert!(slab.is_free());
        pages.free_pages(slab.into_block());
    }

    #[test]
    fn objects_do_not_overlap_and_stay_in_bounds() {
        for size in [8, 24, 192, 1024, 4096] {
            let policy = SizingPolicy::for_object_size(size);
            let (mut slab, pages) = mk(&policy, 0);
            let mut objs = Vec::new();
            slab.take(policy.objects_per_slab, &mut objs);
            assert!(slab.is_full());
            let base = objs[0].addr() & !(policy.slab_bytes - 1);
            let mut addrs: Vec<usize> = objs.iter().map(|o| o.addr()).collect();
            addrs.sort_unstable();
            for pair in addrs.windows(2) {
                assert!(pair[1] - pair[0] >= policy.object_size);
            }
            let last = *addrs.last().unwrap();
            assert!(last + policy.object_size <= base + policy.slab_bytes);
            assert!(addrs[0] >= base + SLAB_HEADER_RESERVE);
            for o in objs {
                slab.give_back(o);
            }
            pages.free_pages(slab.into_block());
        }
    }

    #[test]
    fn coloring_offsets_differ_but_stay_valid() {
        let policy = SizingPolicy::for_object_size(100);
        let pages = PageAllocator::new();
        let mut bases = Vec::new();
        let mut slabs = Vec::new();
        for color in 0..4 {
            let block = pages
                .allocate_aligned(policy.slab_bytes, policy.slab_bytes)
                .unwrap();
            let mut slab = RawSlab::new(block, &policy, color, color);
            let mut objs = Vec::new();
            slab.take(1, &mut objs);
            bases.push(objs[0].addr() & (policy.slab_bytes - 1));
            slab.give_back(objs[0]);
            slabs.push(slab);
        }
        // At least two distinct coloring offsets (unless no spare space).
        let spare = policy.slab_bytes - SLAB_HEADER_RESERVE - policy.payload_bytes();
        if spare >= 64 {
            assert!(bases.iter().any(|&b| b != bases[0]), "offsets: {bases:?}");
        }
        for slab in slabs {
            pages.free_pages(slab.into_block());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_detected_in_debug() {
        let policy = SizingPolicy::for_object_size(64);
        let (mut slab, _pages) = mk(&policy, 0);
        let mut objs = Vec::new();
        slab.take(1, &mut objs);
        slab.give_back(objs[0]);
        slab.give_back(objs[0]);
    }

    #[test]
    fn lifo_reuse_order() {
        let policy = SizingPolicy::for_object_size(64);
        let (mut slab, pages) = mk(&policy, 0);
        let mut objs = Vec::new();
        slab.take(2, &mut objs);
        let first = objs[0];
        slab.give_back(first);
        let mut again = Vec::new();
        slab.take(1, &mut again);
        assert_eq!(again[0], first, "most recently freed object reused first");
        slab.give_back(again[0]);
        slab.give_back(objs[1]);
        pages.free_pages(slab.into_block());
    }
}
