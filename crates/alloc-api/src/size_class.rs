//! kmalloc-style size classes.

/// The size classes served by the general-purpose (`kmalloc`) front end,
/// mirroring the Linux kmalloc caches the paper benchmarks (kmalloc-64,
/// kmalloc-512, ..., kmalloc-4096).
pub const SIZE_CLASSES: &[usize] = &[8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096];

/// Index of the smallest size class that can hold `size` bytes, or `None`
/// if `size` exceeds the largest class.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::{class_index_for, SIZE_CLASSES};
///
/// assert_eq!(SIZE_CLASSES[class_index_for(1).unwrap()], 8);
/// assert_eq!(SIZE_CLASSES[class_index_for(64).unwrap()], 64);
/// assert_eq!(SIZE_CLASSES[class_index_for(65).unwrap()], 96);
/// assert_eq!(class_index_for(8192), None);
/// ```
pub fn class_index_for(size: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_unique() {
        for pair in SIZE_CLASSES.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn exact_boundaries() {
        for (i, &c) in SIZE_CLASSES.iter().enumerate() {
            assert_eq!(class_index_for(c), Some(i));
        }
    }

    #[test]
    fn zero_maps_to_smallest() {
        assert_eq!(class_index_for(0), Some(0));
    }

    #[test]
    fn oversized_is_none() {
        assert_eq!(class_index_for(SIZE_CLASSES[SIZE_CLASSES.len() - 1] + 1), None);
    }
}
