//! Slab-cache statistics: the raw material for the paper's Figures 7–11.
//!
//! # Hot-path design
//!
//! Counters touched on every allocation or free live in per-CPU
//! [`StatShard`]s, one cache-padded block per CPU slot, and are updated
//! with plain `Relaxed` load/store pairs instead of atomic
//! read-modify-writes. The discipline that makes this sound mirrors the
//! kernel's percpu counters: a shard's single-writer counters are only
//! bumped while the owning per-CPU slot lock is held, so at most one
//! thread writes a given counter at a time and the lock's release/acquire
//! edges order successive writers. Readers ([`CacheStats::snapshot`]) sum
//! the shards locklessly and may observe a bump late — fine for
//! reporting, which only runs after quiescence.
//!
//! The single-writer lock need not be a *slot* lock: node-path counters
//! (`node_lock_contended`, `pre_movements`) are bumped only under the
//! node lock and attributed to shard 0. Events recorded outside any lock
//! (slot-lock misses) use [`Counter::add_contended`], a real `fetch_add`,
//! because they can race; they are off the hot path by definition. Never
//! mix the two schemes on one counter — an RMW landing between a lock
//! holder's load and store is silently overwritten.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;
use pbs_telemetry::{ComponentTelemetry, EventKind, EventRing, LogHistogram, NamedHistogram};
use serde::{Deserialize, Serialize};

/// Process-wide cache id allocator, so trace events from different caches
/// stay distinguishable in a merged timeline (`src` field of each record).
static NEXT_CACHE_ID: AtomicU32 = AtomicU32::new(1);

/// Records per trace lane. Cache hot paths emit at most a handful of event
/// kinds per operation, and the interesting windows (OOM deferral, slab
/// churn storms) are short; 256 records per lane keeps the footprint at a
/// few KiB per CPU slot while surviving typical bursts.
const CACHE_LANE_CAPACITY: usize = 256;

/// A single event counter inside a [`StatShard`].
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1 from the shard's owner (the holder of the matching per-CPU
    /// slot lock). A plain load/store pair — no atomic RMW — so callers
    /// must hold that lock; see the module docs.
    #[inline]
    pub fn bump(&self) {
        self.bump_by(1);
    }

    /// Owner-only add, as [`Counter::bump`].
    #[inline]
    pub fn bump_by(&self, n: u64) {
        self.0
            .store(self.0.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }

    /// Adds from any thread (atomic RMW) for events recorded outside the
    /// shard's slot lock.
    #[inline]
    pub fn add_contended(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed per-shard tally (live-object delta: allocations minus frees
/// attributed to this shard; individual shards can go negative when an
/// object is allocated on one CPU and freed on another).
///
/// Deliberately has no contended (RMW) variant: every update races with
/// the slot-lock holders' plain load+store bumps, so *all* writers must
/// hold the owning slot's lock — a fetch_add from outside it can land
/// between a holder's load and store and be silently overwritten.
#[derive(Debug, Default)]
pub struct SignedCounter(AtomicI64);

impl SignedCounter {
    /// Owner-only `+1`; same single-writer contract as [`Counter::bump`].
    #[inline]
    pub fn bump_add(&self) {
        self.0
            .store(self.0.load(Ordering::Relaxed).wrapping_add(1), Ordering::Relaxed);
    }

    /// Owner-only `-1`.
    #[inline]
    pub fn bump_sub(&self) {
        self.0
            .store(self.0.load(Ordering::Relaxed).wrapping_sub(1), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-CPU block of hot-path counters. One per CPU slot, cache-padded so
/// slots never false-share.
#[derive(Debug, Default)]
pub struct StatShard {
    /// Allocation requests served (successfully).
    pub alloc_requests: Counter,
    /// Allocations served directly from the per-CPU object cache.
    pub cache_hits: Counter,
    /// Allocations served after merging safe deferred objects from the
    /// latent cache (Prudence only; counted as hits for Figure 7, tracked
    /// separately for diagnostics).
    pub latent_hits: Counter,
    /// Immediate frees.
    pub frees: Counter,
    /// Deferred frees (`free_deferred`).
    pub deferred_frees: Counter,
    /// Object-cache refill operations (from node slabs).
    pub refills: Counter,
    /// Refills that were *partial* because deferred objects were pending in
    /// the latent cache (Prudence optimization, §4.2).
    pub partial_refills: Counter,
    /// Object-cache flush operations (to node slabs).
    pub flushes: Counter,
    /// Latent-cache pre-flush operations performed off the hot path.
    pub preflushes: Counter,
    /// Slab pre-movements between full/partial/free lists (Prudence, §4.2).
    pub pre_movements: Counter,
    /// Times the node-list lock was contended (try_lock failed).
    /// Single-writer under the *node* lock — bumped (plain [`Counter::bump`])
    /// only by the thread that just acquired it, and always attributed to
    /// shard 0. Never bump this without holding the node lock: it would
    /// race the existing non-atomic bumps.
    pub node_lock_contended: Counter,
    /// Times the home CPU slot's try_lock failed and the allocation took
    /// the slow path (spin, neighbor slot, or blocking acquire). Recorded
    /// outside slot locks: use [`Counter::add_contended`].
    pub cpu_slot_misses: Counter,
    /// Live-object delta attributed to this shard.
    pub live_delta: SignedCounter,
}

/// Live statistics maintained by a slab cache: sharded hot counters plus
/// a few cold, globally-shared ones.
///
/// Allocators update shards on their hot paths; experiments read a
/// [`CacheStatsSnapshot`] at the end of a run.
#[derive(Debug)]
pub struct CacheStats {
    /// Process-unique id for this cache, stamped into every trace event's
    /// `src` field.
    id: u32,
    /// One shard per CPU slot.
    shards: Box<[CachePadded<StatShard>]>,
    /// Event ring with one lane per CPU slot plus a final lane reserved
    /// for node-path events (see [`CacheStats::node_lane`]). The lane
    /// assignment reuses the single-writer discipline that protects the
    /// shards: slot lanes are written only under the owning slot lock,
    /// the node lane only under the node lock, so lane writes never race.
    pub ring: EventRing,
    /// Time spent waiting for a per-CPU slot lock when the home slot's
    /// `try_lock` missed (nanoseconds). Only slow paths record here.
    pub slot_wait_ns: LogHistogram,
    /// `free_deferred` → object-reusable delay (nanoseconds): how long a
    /// deferred object sat in the latent cache before a merge made it
    /// allocatable again (the Prudence counterpart of the baseline's
    /// callback delay).
    pub defer_delay_ns: LogHistogram,
    /// Slab-cache grow operations (slabs allocated from the page
    /// allocator). Cold: a grow amortizes over a whole slab of objects.
    pub grows: AtomicU64,
    /// Slab-cache shrink operations (slabs returned to the page allocator).
    pub shrinks: AtomicU64,
    /// Times an allocation had to wait for a grace period under memory
    /// pressure instead of triggering OOM (Prudence, §4.2).
    pub oom_waits: AtomicU64,
    /// Slabs currently allocated.
    pub slabs_current: AtomicUsize,
    /// Peak of `slabs_current`.
    pub slabs_peak: AtomicUsize,
    /// Deferred-backlog pressure level (gauge): 0 = nominal, 1 = soft
    /// watermark crossed, 2 = hard watermark crossed. Maintained by
    /// [`update_pressure`](Self::update_pressure).
    pub pressure_level: AtomicUsize,
    /// Pressure-level transitions, either direction.
    pub pressure_transitions: AtomicU64,
    /// Caller-assisted reclaim passes run by freeing threads while at the
    /// hard pressure level.
    pub assisted_merges: AtomicU64,
    /// Successful OOM-ladder recoveries attributed to each rung (index 0 =
    /// stage 1 local flush, 1 = stage 2 expedited GP + merge, 2 = stage 3
    /// backoff retry). Cold: one bump per recovered allocation.
    pub oom_recoveries: [AtomicU64; 3],
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::new(1)
    }
}

impl CacheStats {
    /// Creates zeroed statistics with one shard per CPU slot (at least
    /// one).
    pub fn new(nshards: usize) -> Self {
        let nshards = nshards.max(1);
        Self {
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            shards: (0..nshards)
                .map(|_| CachePadded::new(StatShard::default()))
                .collect(),
            // One lane per CPU slot plus the node lane.
            ring: EventRing::new(nshards + 1, CACHE_LANE_CAPACITY),
            slot_wait_ns: LogHistogram::default(),
            defer_delay_ns: LogHistogram::default(),
            grows: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
            oom_waits: AtomicU64::new(0),
            slabs_current: AtomicUsize::new(0),
            slabs_peak: AtomicUsize::new(0),
            pressure_level: AtomicUsize::new(0),
            pressure_transitions: AtomicU64::new(0),
            assisted_merges: AtomicU64::new(0),
            oom_recoveries: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Publishes the deferred-backlog pressure level implied by
    /// `outstanding` against the `soft`/`hard` watermarks. Returns
    /// `Some((from, to))` when this caller won the transition (so exactly
    /// one racing thread runs any transition side effect), `None` when the
    /// level is unchanged or another thread transitioned first.
    pub fn update_pressure(
        &self,
        outstanding: usize,
        soft: usize,
        hard: usize,
    ) -> Option<(usize, usize)> {
        let new = if outstanding >= hard {
            2
        } else if outstanding >= soft {
            1
        } else {
            0
        };
        let old = self.pressure_level.load(Ordering::Relaxed);
        if new == old {
            return None;
        }
        if self
            .pressure_level
            .compare_exchange(old, new, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.pressure_transitions.fetch_add(1, Ordering::Relaxed);
            Some((old, new))
        } else {
            None
        }
    }

    /// Counts a successful OOM-ladder recovery attributed to `stage`
    /// (1-based; stages past the ladder clamp to the last rung).
    pub fn record_oom_recovery(&self, stage: usize) {
        let idx = stage.saturating_sub(1).min(self.oom_recoveries.len() - 1);
        self.oom_recoveries[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Process-unique id for this cache (stamped into trace events).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Index of the trace lane reserved for events recorded under the
    /// node lock (grow/shrink/pre-movement). Per-CPU hot-path events use
    /// the slot index as the lane.
    #[inline]
    pub fn node_lane(&self) -> usize {
        self.ring.lanes() - 1
    }

    /// Records a trace event on the node lane. Callers must hold the node
    /// lock (or otherwise be the only writer of that lane), matching the
    /// single-writer ring discipline.
    #[inline]
    pub fn record_node_event(&self, kind: EventKind, a: u64, b: u64) {
        self.ring.record(self.node_lane(), kind, self.id, a, b);
    }

    /// The shard for CPU slot `cpu` (wrapped into range, like CPU-slot
    /// selection itself).
    #[inline]
    pub fn shard(&self, cpu: usize) -> &StatShard {
        // Callers pass an in-range slot index on every hot path; branch
        // instead of `%` so the common case skips a hardware divide.
        let n = self.shards.len();
        let idx = if cpu < n { cpu } else { cpu % n };
        &self.shards[idx]
    }

    /// Records that a slab was allocated, maintaining the peak watermark.
    ///
    /// The peak is folded in with `fetch_max`: `slabs_peak` only ever
    /// increases and ends up at least `slabs_current`'s value as observed
    /// here. A concurrent grow publishing a larger peak makes this call's
    /// contribution moot, and `fetch_max` stops right there instead of
    /// retrying a CAS it can no longer win.
    pub fn record_grow(&self) {
        self.grows.fetch_add(1, Ordering::Relaxed);
        let now = self.slabs_current.fetch_add(1, Ordering::Relaxed) + 1;
        self.slabs_peak.fetch_max(now, Ordering::Relaxed);
        self.record_node_event(EventKind::SlabGrow, now as u64, 0);
    }

    /// Records that a slab was returned to the page allocator.
    pub fn record_shrink(&self) {
        self.shrinks.fetch_add(1, Ordering::Relaxed);
        let before = self.slabs_current.fetch_sub(1, Ordering::Relaxed);
        self.record_node_event(EventKind::SlabShrink, before.saturating_sub(1) as u64, 0);
    }

    /// Telemetry view of this cache: slot-wait and defer-delay histograms
    /// plus the event-ring snapshot.
    pub fn telemetry(&self) -> ComponentTelemetry {
        ComponentTelemetry::new(
            self.ring.snapshot(),
            vec![
                NamedHistogram {
                    name: "slot_wait_ns".to_string(),
                    hist: self.slot_wait_ns.snapshot(),
                },
                NamedHistogram {
                    name: "defer_delay_ns".to_string(),
                    hist: self.defer_delay_ns.snapshot(),
                },
            ],
        )
    }

    /// Takes a consistent-enough snapshot for reporting, summing all
    /// shards.
    pub fn snapshot(&self, object_size: usize, slab_bytes: usize) -> CacheStatsSnapshot {
        self.snapshot_with_fastpath(object_size, slab_bytes, &pbs_percpu::FastPathSnapshot::default())
    }

    /// [`snapshot`](Self::snapshot) plus the allocator's per-CPU
    /// fast-path totals. Fast-path hits never touch the shards (that is
    /// the point), so they are folded in here: a fast pop is an
    /// allocation request served from cache, a fast push is an immediate
    /// free, and both move the live-object balance — *before* the
    /// non-negative clamp, because with a fast cache in front the shard
    /// sum alone can legitimately go negative (alloc on the fast path,
    /// free on the slow path).
    pub fn snapshot_with_fastpath(
        &self,
        object_size: usize,
        slab_bytes: usize,
        fast: &pbs_percpu::FastPathSnapshot,
    ) -> CacheStatsSnapshot {
        let mut snap = CacheStatsSnapshot {
            object_size,
            slab_bytes,
            grows: self.grows.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            oom_waits: self.oom_waits.load(Ordering::Relaxed),
            slabs_current: self.slabs_current.load(Ordering::Relaxed),
            slabs_peak: self.slabs_peak.load(Ordering::Relaxed),
            pressure_level: self.pressure_level.load(Ordering::Relaxed),
            pressure_transitions: self.pressure_transitions.load(Ordering::Relaxed),
            assisted_merges: self.assisted_merges.load(Ordering::Relaxed),
            oom_recoveries_stage1: self.oom_recoveries[0].load(Ordering::Relaxed),
            oom_recoveries_stage2: self.oom_recoveries[1].load(Ordering::Relaxed),
            oom_recoveries_stage3: self.oom_recoveries[2].load(Ordering::Relaxed),
            ..CacheStatsSnapshot::default()
        };
        let mut live = 0i64;
        for shard in self.shards.iter() {
            snap.alloc_requests += shard.alloc_requests.get();
            snap.cache_hits += shard.cache_hits.get();
            snap.latent_hits += shard.latent_hits.get();
            snap.frees += shard.frees.get();
            snap.deferred_frees += shard.deferred_frees.get();
            snap.refills += shard.refills.get();
            snap.partial_refills += shard.partial_refills.get();
            snap.flushes += shard.flushes.get();
            snap.preflushes += shard.preflushes.get();
            snap.pre_movements += shard.pre_movements.get();
            snap.node_lock_contended += shard.node_lock_contended.get();
            snap.cpu_slot_misses += shard.cpu_slot_misses.get();
            live += shard.live_delta.get();
        }
        snap.alloc_requests += fast.alloc_hits;
        snap.cache_hits += fast.alloc_hits;
        snap.frees += fast.free_hits;
        snap.rseq_hits = fast.alloc_hits + fast.free_hits;
        snap.rseq_restarts = fast.restarts;
        snap.fastpath_fallbacks = fast.fallbacks;
        live += fast.alloc_hits as i64 - fast.free_hits as i64;
        snap.live_objects = live.max(0) as u64;
        snap
    }
}

/// Immutable snapshot of [`CacheStats`] plus derived metrics.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::CacheStats;
///
/// let stats = CacheStats::new(2);
/// stats.record_grow();
/// let snap = stats.snapshot(64, 4096);
/// assert_eq!(snap.slabs_peak, 1);
/// assert_eq!(snap.slab_churns(), 0); // a grow without a shrink is not a churn pair
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CacheStatsSnapshot {
    /// Object size of the cache.
    pub object_size: usize,
    /// Bytes per slab.
    pub slab_bytes: usize,
    /// See [`StatShard`]/[`CacheStats`] field docs for each counter.
    pub alloc_requests: u64,
    /// Allocations served directly from the object cache.
    pub cache_hits: u64,
    /// Allocations served from merged-in safe deferred objects.
    pub latent_hits: u64,
    /// Immediate frees.
    pub frees: u64,
    /// Deferred frees.
    pub deferred_frees: u64,
    /// Object-cache refills.
    pub refills: u64,
    /// Partial refills.
    pub partial_refills: u64,
    /// Object-cache flushes.
    pub flushes: u64,
    /// Latent-cache pre-flushes.
    pub preflushes: u64,
    /// Slab grow operations.
    pub grows: u64,
    /// Slab shrink operations.
    pub shrinks: u64,
    /// Slab pre-movements.
    pub pre_movements: u64,
    /// Contended node-lock acquisitions.
    pub node_lock_contended: u64,
    /// Home-CPU-slot try_lock misses (allocation took a slow path).
    pub cpu_slot_misses: u64,
    /// OOM-deferral waits.
    pub oom_waits: u64,
    /// Slabs currently held.
    pub slabs_current: usize,
    /// Peak slabs held (Figure 10).
    pub slabs_peak: usize,
    /// Live (requested) objects at snapshot time.
    pub live_objects: u64,
    /// Deferred-backlog pressure level at snapshot time (0 = nominal,
    /// 1 = soft, 2 = hard).
    pub pressure_level: usize,
    /// Pressure-level transitions, either direction.
    pub pressure_transitions: u64,
    /// Caller-assisted reclaim passes at the hard pressure level.
    pub assisted_merges: u64,
    /// OOM recoveries via ladder stage 1 (local latent flush).
    pub oom_recoveries_stage1: u64,
    /// OOM recoveries via ladder stage 2 (expedited GP + full merge).
    pub oom_recoveries_stage2: u64,
    /// OOM recoveries via ladder stage 3 (backoff retry).
    pub oom_recoveries_stage3: u64,
    /// Operations (pops + pushes) served by the per-CPU fast path with
    /// no lock and no atomic RMW. Counted for both engines; under the
    /// emulation engine these are slot-mutex hits with the same
    /// semantics, so trajectories stay comparable across hosts.
    pub rseq_hits: u64,
    /// rseq critical sections restarted by preemption/migration (always
    /// zero under the emulation engine).
    pub rseq_restarts: u64,
    /// Fast-path operations that bounced to the slow path (empty/full
    /// slot, disabled fast path, engine switch in flight, contention).
    pub fastpath_fallbacks: u64,
}

impl CacheStatsSnapshot {
    /// Percentage of allocation requests served from the object cache
    /// (Figure 7). Latent-cache merges count as hits, as in the paper:
    /// "eligible deferred objects ... are merged into the object cache and
    /// the allocation request is served from the object cache".
    pub fn hit_percent(&self) -> f64 {
        if self.alloc_requests == 0 {
            return 0.0;
        }
        100.0 * (self.cache_hits + self.latent_hits) as f64 / self.alloc_requests as f64
    }

    /// Object-cache churns: pairs of refill/flush operations (Figure 8).
    pub fn object_cache_churns(&self) -> u64 {
        self.refills.min(self.flushes)
    }

    /// Slab churns: pairs of grow/shrink operations (Figure 9).
    pub fn slab_churns(&self) -> u64 {
        self.grows.min(self.shrinks)
    }

    /// Total frees of any kind.
    pub fn total_frees(&self) -> u64 {
        self.frees + self.deferred_frees
    }

    /// Allocations that recovered from OOM via any ladder stage.
    pub fn oom_recoveries_total(&self) -> u64 {
        self.oom_recoveries_stage1 + self.oom_recoveries_stage2 + self.oom_recoveries_stage3
    }

    /// Percentage of frees that were deferred (Figure 12).
    pub fn deferred_free_percent(&self) -> f64 {
        let total = self.total_frees();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.deferred_frees as f64 / total as f64
    }

    /// Total fragmentation `f_t = allocated / requested` (paper §4.2):
    /// slab memory held by the allocator divided by memory the cache user
    /// actually has live. Returns `None` when no objects are live.
    pub fn total_fragmentation(&self) -> Option<f64> {
        let requested = self.live_objects * self.object_size as u64;
        if requested == 0 {
            return None;
        }
        Some((self.slabs_current * self.slab_bytes) as f64 / requested as f64)
    }

    /// Folds another snapshot into this one (summing counters, taking max
    /// of peaks). Useful for aggregating per-CPU or per-class stats.
    pub fn merge(&mut self, other: &CacheStatsSnapshot) {
        self.alloc_requests += other.alloc_requests;
        self.cache_hits += other.cache_hits;
        self.latent_hits += other.latent_hits;
        self.frees += other.frees;
        self.deferred_frees += other.deferred_frees;
        self.refills += other.refills;
        self.partial_refills += other.partial_refills;
        self.flushes += other.flushes;
        self.preflushes += other.preflushes;
        self.grows += other.grows;
        self.shrinks += other.shrinks;
        self.pre_movements += other.pre_movements;
        self.node_lock_contended += other.node_lock_contended;
        self.cpu_slot_misses += other.cpu_slot_misses;
        self.oom_waits += other.oom_waits;
        self.slabs_current += other.slabs_current;
        self.slabs_peak += other.slabs_peak;
        self.live_objects += other.live_objects;
        // The merged pressure level is the worst of the two gauges.
        self.pressure_level = self.pressure_level.max(other.pressure_level);
        self.pressure_transitions += other.pressure_transitions;
        self.assisted_merges += other.assisted_merges;
        self.oom_recoveries_stage1 += other.oom_recoveries_stage1;
        self.oom_recoveries_stage2 += other.oom_recoveries_stage2;
        self.oom_recoveries_stage3 += other.oom_recoveries_stage3;
        self.rseq_hits += other.rseq_hits;
        self.rseq_restarts += other.rseq_restarts;
        self.fastpath_fallbacks += other.fastpath_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(f: impl FnOnce(&CacheStats)) -> CacheStatsSnapshot {
        let s = CacheStats::new(2);
        f(&s);
        s.snapshot(64, 4096)
    }

    #[test]
    fn hit_percent_counts_latent_hits() {
        let snap = snap_with(|s| {
            s.shard(0).alloc_requests.bump_by(10);
            s.shard(0).cache_hits.bump_by(6);
            s.shard(1).latent_hits.bump_by(2);
        });
        assert!((snap.hit_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn hit_percent_zero_requests() {
        assert_eq!(snap_with(|_| {}).hit_percent(), 0.0);
    }

    #[test]
    fn churns_are_pairs() {
        let snap = snap_with(|s| {
            s.shard(0).refills.bump_by(10);
            s.shard(1).flushes.bump_by(7);
            s.grows.store(3, Ordering::Relaxed);
            s.shrinks.store(5, Ordering::Relaxed);
        });
        assert_eq!(snap.object_cache_churns(), 7);
        assert_eq!(snap.slab_churns(), 3);
    }

    #[test]
    fn deferred_free_percent() {
        let snap = snap_with(|s| {
            s.shard(0).frees.bump_by(75);
            s.shard(1).deferred_frees.bump_by(25);
        });
        assert!((snap.deferred_free_percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_formula() {
        let snap = snap_with(|s| {
            s.slabs_current.store(2, Ordering::Relaxed);
            for _ in 0..64 {
                s.shard(0).live_delta.bump_add();
            }
        });
        // 2 slabs * 4096 B / (64 objects * 64 B) = 2.0
        assert!((snap.total_fragmentation().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_none_when_no_live_objects() {
        assert_eq!(snap_with(|_| {}).total_fragmentation(), None);
    }

    #[test]
    fn shards_sum_and_wrap() {
        let s = CacheStats::new(2);
        s.shard(0).alloc_requests.bump();
        s.shard(1).alloc_requests.bump();
        // Slot index wraps modulo shard count, like CPU-slot selection.
        s.shard(2).alloc_requests.bump();
        s.shard(3).cpu_slot_misses.add_contended(2);
        let snap = s.snapshot(64, 4096);
        assert_eq!(snap.alloc_requests, 3);
        assert_eq!(snap.cpu_slot_misses, 2);
    }

    #[test]
    fn cross_shard_live_delta_balances() {
        // Alloc on shard 0, free on shard 1: shard 1 goes negative but the
        // summed snapshot stays balanced.
        let s = CacheStats::new(2);
        for _ in 0..3 {
            s.shard(0).live_delta.bump_add();
        }
        s.shard(1).live_delta.bump_sub();
        assert_eq!(s.shard(1).live_delta.get(), -1);
        assert_eq!(s.snapshot(64, 4096).live_objects, 2);
    }

    #[test]
    fn grow_shrink_update_peak() {
        let s = CacheStats::new(1);
        s.record_grow();
        s.record_grow();
        s.record_shrink();
        s.record_grow();
        let snap = s.snapshot(8, 4096);
        assert_eq!(snap.slabs_current, 2);
        assert_eq!(snap.slabs_peak, 2);
        assert_eq!(snap.grows, 3);
        assert_eq!(snap.shrinks, 1);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = snap_with(|s| {
            s.shard(0).alloc_requests.bump_by(5);
            s.shard(0).cache_hits.bump_by(5);
        });
        let b = snap_with(|s| {
            s.shard(0).alloc_requests.bump_by(5);
            s.shard(0).cache_hits.bump_by(1);
        });
        a.merge(&b);
        assert_eq!(a.alloc_requests, 10);
        assert!((a.hit_percent() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn cache_ids_are_unique() {
        let a = CacheStats::new(1);
        let b = CacheStats::new(1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn grow_shrink_emit_node_lane_events() {
        let s = CacheStats::new(2);
        s.record_grow();
        s.record_grow();
        s.record_shrink();
        assert_eq!(s.node_lane(), 2); // one lane per slot + the node lane
        let t = s.telemetry();
        assert_eq!(t.count_of(pbs_telemetry::EventKind::SlabGrow), 2);
        assert_eq!(t.count_of(pbs_telemetry::EventKind::SlabShrink), 1);
        // Every event is stamped with this cache's id and the node lane.
        for e in &t.events {
            assert_eq!(e.src, s.id());
            assert_eq!(e.lane as usize, s.node_lane());
        }
    }

    #[test]
    fn telemetry_exposes_named_histograms() {
        let s = CacheStats::new(1);
        s.slot_wait_ns.record(100);
        s.defer_delay_ns.record(5);
        s.defer_delay_ns.record(9);
        let t = s.telemetry();
        assert_eq!(t.histogram("slot_wait_ns").unwrap().count, 1);
        assert_eq!(t.histogram("defer_delay_ns").unwrap().count, 2);
        assert!(t.histogram("no_such_histogram").is_none());
    }

    #[test]
    fn snapshot_serializes() {
        let snap = snap_with(|s| s.shard(0).alloc_requests.bump());
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
