//! Slab-cache statistics: the raw material for the paper's Figures 7–11.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

/// Live atomic counters maintained by a slab cache.
///
/// Allocators update these on their hot paths; experiments read a
/// [`CacheStatsSnapshot`] at the end of a run.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Allocation requests served (successfully).
    pub alloc_requests: AtomicU64,
    /// Allocations served directly from the per-CPU object cache.
    pub cache_hits: AtomicU64,
    /// Allocations served after merging safe deferred objects from the
    /// latent cache (Prudence only; counted as hits for Figure 7, tracked
    /// separately for diagnostics).
    pub latent_hits: AtomicU64,
    /// Immediate frees.
    pub frees: AtomicU64,
    /// Deferred frees (`free_deferred`).
    pub deferred_frees: AtomicU64,
    /// Object-cache refill operations (from node slabs).
    pub refills: AtomicU64,
    /// Refills that were *partial* because deferred objects were pending in
    /// the latent cache (Prudence optimization, §4.2).
    pub partial_refills: AtomicU64,
    /// Object-cache flush operations (to node slabs).
    pub flushes: AtomicU64,
    /// Latent-cache pre-flush operations performed off the hot path.
    pub preflushes: AtomicU64,
    /// Slab-cache grow operations (slabs allocated from the page allocator).
    pub grows: AtomicU64,
    /// Slab-cache shrink operations (slabs returned to the page allocator).
    pub shrinks: AtomicU64,
    /// Slab pre-movements between full/partial/free lists (Prudence, §4.2).
    pub pre_movements: AtomicU64,
    /// Times the node-list lock was contended (try_lock failed).
    pub node_lock_contended: AtomicU64,
    /// Times an allocation had to wait for a grace period under memory
    /// pressure instead of triggering OOM (Prudence, §4.2).
    pub oom_waits: AtomicU64,
    /// Slabs currently allocated.
    pub slabs_current: AtomicUsize,
    /// Peak of `slabs_current`.
    pub slabs_peak: AtomicUsize,
    /// Objects currently live from the cache user's perspective
    /// (allocated − freed − deferred-freed). Deferred objects stop being
    /// "requested" at defer time, matching the paper's fragmentation
    /// accounting.
    pub live_objects: AtomicI64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a slab was allocated, maintaining the peak watermark.
    pub fn record_grow(&self) {
        self.grows.fetch_add(1, Ordering::Relaxed);
        let now = self.slabs_current.fetch_add(1, Ordering::Relaxed) + 1;
        let mut peak = self.slabs_peak.load(Ordering::Relaxed);
        while now > peak {
            match self.slabs_peak.compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    /// Records that a slab was returned to the page allocator.
    pub fn record_shrink(&self) {
        self.shrinks.fetch_add(1, Ordering::Relaxed);
        self.slabs_current.fetch_sub(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self, object_size: usize, slab_bytes: usize) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            object_size,
            slab_bytes,
            alloc_requests: self.alloc_requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            latent_hits: self.latent_hits.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            deferred_frees: self.deferred_frees.load(Ordering::Relaxed),
            refills: self.refills.load(Ordering::Relaxed),
            partial_refills: self.partial_refills.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            preflushes: self.preflushes.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            pre_movements: self.pre_movements.load(Ordering::Relaxed),
            node_lock_contended: self.node_lock_contended.load(Ordering::Relaxed),
            oom_waits: self.oom_waits.load(Ordering::Relaxed),
            slabs_current: self.slabs_current.load(Ordering::Relaxed),
            slabs_peak: self.slabs_peak.load(Ordering::Relaxed),
            live_objects: self.live_objects.load(Ordering::Relaxed).max(0) as u64,
        }
    }
}

/// Immutable snapshot of [`CacheStats`] plus derived metrics.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::CacheStats;
///
/// let stats = CacheStats::new();
/// stats.record_grow();
/// let snap = stats.snapshot(64, 4096);
/// assert_eq!(snap.slabs_peak, 1);
/// assert_eq!(snap.slab_churns(), 0); // a grow without a shrink is not a churn pair
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CacheStatsSnapshot {
    /// Object size of the cache.
    pub object_size: usize,
    /// Bytes per slab.
    pub slab_bytes: usize,
    /// See [`CacheStats`] field docs for each counter.
    pub alloc_requests: u64,
    /// Allocations served directly from the object cache.
    pub cache_hits: u64,
    /// Allocations served from merged-in safe deferred objects.
    pub latent_hits: u64,
    /// Immediate frees.
    pub frees: u64,
    /// Deferred frees.
    pub deferred_frees: u64,
    /// Object-cache refills.
    pub refills: u64,
    /// Partial refills.
    pub partial_refills: u64,
    /// Object-cache flushes.
    pub flushes: u64,
    /// Latent-cache pre-flushes.
    pub preflushes: u64,
    /// Slab grow operations.
    pub grows: u64,
    /// Slab shrink operations.
    pub shrinks: u64,
    /// Slab pre-movements.
    pub pre_movements: u64,
    /// Contended node-lock acquisitions.
    pub node_lock_contended: u64,
    /// OOM-deferral waits.
    pub oom_waits: u64,
    /// Slabs currently held.
    pub slabs_current: usize,
    /// Peak slabs held (Figure 10).
    pub slabs_peak: usize,
    /// Live (requested) objects at snapshot time.
    pub live_objects: u64,
}

impl CacheStatsSnapshot {
    /// Percentage of allocation requests served from the object cache
    /// (Figure 7). Latent-cache merges count as hits, as in the paper:
    /// "eligible deferred objects ... are merged into the object cache and
    /// the allocation request is served from the object cache".
    pub fn hit_percent(&self) -> f64 {
        if self.alloc_requests == 0 {
            return 0.0;
        }
        100.0 * (self.cache_hits + self.latent_hits) as f64 / self.alloc_requests as f64
    }

    /// Object-cache churns: pairs of refill/flush operations (Figure 8).
    pub fn object_cache_churns(&self) -> u64 {
        self.refills.min(self.flushes)
    }

    /// Slab churns: pairs of grow/shrink operations (Figure 9).
    pub fn slab_churns(&self) -> u64 {
        self.grows.min(self.shrinks)
    }

    /// Total frees of any kind.
    pub fn total_frees(&self) -> u64 {
        self.frees + self.deferred_frees
    }

    /// Percentage of frees that were deferred (Figure 12).
    pub fn deferred_free_percent(&self) -> f64 {
        let total = self.total_frees();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.deferred_frees as f64 / total as f64
    }

    /// Total fragmentation `f_t = allocated / requested` (paper §4.2):
    /// slab memory held by the allocator divided by memory the cache user
    /// actually has live. Returns `None` when no objects are live.
    pub fn total_fragmentation(&self) -> Option<f64> {
        let requested = self.live_objects * self.object_size as u64;
        if requested == 0 {
            return None;
        }
        Some((self.slabs_current * self.slab_bytes) as f64 / requested as f64)
    }

    /// Folds another snapshot into this one (summing counters, taking max
    /// of peaks). Useful for aggregating per-CPU or per-class stats.
    pub fn merge(&mut self, other: &CacheStatsSnapshot) {
        self.alloc_requests += other.alloc_requests;
        self.cache_hits += other.cache_hits;
        self.latent_hits += other.latent_hits;
        self.frees += other.frees;
        self.deferred_frees += other.deferred_frees;
        self.refills += other.refills;
        self.partial_refills += other.partial_refills;
        self.flushes += other.flushes;
        self.preflushes += other.preflushes;
        self.grows += other.grows;
        self.shrinks += other.shrinks;
        self.pre_movements += other.pre_movements;
        self.node_lock_contended += other.node_lock_contended;
        self.oom_waits += other.oom_waits;
        self.slabs_current += other.slabs_current;
        self.slabs_peak += other.slabs_peak;
        self.live_objects += other.live_objects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(f: impl FnOnce(&CacheStats)) -> CacheStatsSnapshot {
        let s = CacheStats::new();
        f(&s);
        s.snapshot(64, 4096)
    }

    #[test]
    fn hit_percent_counts_latent_hits() {
        let snap = snap_with(|s| {
            s.alloc_requests.store(10, Ordering::Relaxed);
            s.cache_hits.store(6, Ordering::Relaxed);
            s.latent_hits.store(2, Ordering::Relaxed);
        });
        assert!((snap.hit_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn hit_percent_zero_requests() {
        assert_eq!(snap_with(|_| {}).hit_percent(), 0.0);
    }

    #[test]
    fn churns_are_pairs() {
        let snap = snap_with(|s| {
            s.refills.store(10, Ordering::Relaxed);
            s.flushes.store(7, Ordering::Relaxed);
            s.grows.store(3, Ordering::Relaxed);
            s.shrinks.store(5, Ordering::Relaxed);
        });
        assert_eq!(snap.object_cache_churns(), 7);
        assert_eq!(snap.slab_churns(), 3);
    }

    #[test]
    fn deferred_free_percent() {
        let snap = snap_with(|s| {
            s.frees.store(75, Ordering::Relaxed);
            s.deferred_frees.store(25, Ordering::Relaxed);
        });
        assert!((snap.deferred_free_percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_formula() {
        let snap = snap_with(|s| {
            s.slabs_current.store(2, Ordering::Relaxed);
            s.live_objects.store(64, Ordering::Relaxed);
        });
        // 2 slabs * 4096 B / (64 objects * 64 B) = 2.0
        assert!((snap.total_fragmentation().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_none_when_no_live_objects() {
        assert_eq!(snap_with(|_| {}).total_fragmentation(), None);
    }

    #[test]
    fn grow_shrink_update_peak() {
        let s = CacheStats::new();
        s.record_grow();
        s.record_grow();
        s.record_shrink();
        s.record_grow();
        let snap = s.snapshot(8, 4096);
        assert_eq!(snap.slabs_current, 2);
        assert_eq!(snap.slabs_peak, 2);
        assert_eq!(snap.grows, 3);
        assert_eq!(snap.shrinks, 1);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = snap_with(|s| {
            s.alloc_requests.store(5, Ordering::Relaxed);
            s.cache_hits.store(5, Ordering::Relaxed);
        });
        let b = snap_with(|s| {
            s.alloc_requests.store(5, Ordering::Relaxed);
            s.cache_hits.store(1, Ordering::Relaxed);
        });
        a.merge(&b);
        assert_eq!(a.alloc_requests, 10);
        assert!((a.hit_percent() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serializes() {
        let snap = snap_with(|s| s.alloc_requests.store(1, Ordering::Relaxed));
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
