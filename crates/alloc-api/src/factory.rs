//! Factory for creating named slab caches on a chosen allocator design.

use std::sync::Arc;

use crate::traits::ObjectAllocator;

/// Creates named object caches. Simulated kernel subsystems (`pbs-simfs`,
/// `pbs-simnet`) take a factory so the *same* subsystem code runs over the
/// SLUB baseline or Prudence — the comparison the paper's Figures 7–13
/// make.
///
/// Implementations: `pbs_slub::SlubFactory` and `prudence::PrudenceFactory`.
pub trait CacheFactory: Send + Sync {
    /// Creates a cache named `name` serving `object_size`-byte objects.
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator>;

    /// Short label for reports ("slub" or "prudence").
    fn label(&self) -> &str;
}
