//! Per-thread "CPU slot" assignment.
//!
//! Kernel slab allocators keep a per-CPU object cache. In this userspace
//! reproduction each [`CpuRegistry`] hands every thread a stable slot in
//! `0..ncpus` the first time the thread touches it; per-CPU caches become
//! per-slot caches. Slots are assigned round-robin, so with as many worker
//! threads as slots each thread gets a private cache — the same contention
//! structure as kernel per-CPU data.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A CPU-slot index in `0..ncpus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub usize);

static NEXT_REGISTRY_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// One-entry inline cache over [`SLOTS`]: the (registry id, slot) of
    /// the last lookup. A thread hammering one allocator — the hot-path
    /// case — resolves its slot with a single `Cell` read instead of a
    /// `RefCell` borrow plus a scan.
    static LAST_SLOT: Cell<(usize, usize)> = const { Cell::new((usize::MAX, 0)) };

    /// Maps registry id → assigned slot for this thread. Registries are few
    /// per process, so a linear-scan Vec beats a HashMap on the hot path.
    static SLOTS: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Assigns threads to CPU slots for one allocator instance.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::CpuRegistry;
///
/// let reg = CpuRegistry::new(4);
/// let a = reg.current_cpu();
/// let b = reg.current_cpu();
/// assert_eq!(a, b); // stable per thread
/// assert!(a.0 < 4);
/// ```
#[derive(Debug)]
pub struct CpuRegistry {
    id: usize,
    ncpus: usize,
    next_slot: AtomicUsize,
}

impl CpuRegistry {
    /// Creates a registry with `ncpus` slots.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(ncpus: usize) -> Self {
        assert!(ncpus > 0, "need at least one CPU slot");
        Self {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            ncpus,
            next_slot: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// The calling thread's slot, assigned round-robin on first use.
    #[inline]
    pub fn current_cpu(&self) -> CpuId {
        let (id, slot) = LAST_SLOT.with(Cell::get);
        if id == self.id {
            return CpuId(slot);
        }
        self.current_cpu_slow()
    }

    #[cold]
    fn current_cpu_slow(&self) -> CpuId {
        let slot = SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(&(_, slot)) = slots.iter().find(|(id, _)| *id == self.id) {
                return slot;
            }
            let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.ncpus;
            slots.push((self.id, slot));
            slot
        });
        LAST_SLOT.with(|last| last.set((self.id, slot)));
        CpuId(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stable_within_thread() {
        let reg = CpuRegistry::new(2);
        assert_eq!(reg.current_cpu(), reg.current_cpu());
    }

    #[test]
    fn distinct_registries_track_separately() {
        let a = CpuRegistry::new(8);
        let b = CpuRegistry::new(8);
        // Both give this thread slot 0 (first registrant), but via separate
        // counters.
        assert_eq!(a.current_cpu(), CpuId(0));
        assert_eq!(b.current_cpu(), CpuId(0));
    }

    #[test]
    fn round_robin_across_threads() {
        let reg = Arc::new(CpuRegistry::new(4));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || reg.current_cpu().0));
        }
        let mut seen: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        seen.sort_unstable();
        // 8 threads over 4 slots: each slot used exactly twice.
        assert_eq!(seen, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cpus_panics() {
        CpuRegistry::new(0);
    }
}
