//! # pbs-alloc-api — shared allocator interface for the Prudence reproduction
//!
//! Both allocators in this workspace — the SLUB-style baseline
//! (`pbs-slub`) and Prudence (`prudence`) — implement the same
//! [`ObjectAllocator`] trait, so data structures, simulated subsystems and
//! benchmark drivers are written once and parameterized by allocator.
//!
//! The crate also provides:
//!
//! * [`CacheStats`] — the counters behind the paper's Figures 7–11
//!   (cache hits, object-cache churns, slab churns, peak slab usage, total
//!   fragmentation),
//! * [`SizingPolicy`] — SLUB-like heuristics for slab size, objects per
//!   slab and per-CPU object-cache size (paper §4.3: Prudence reuses the
//!   existing allocator heuristics),
//! * kmalloc-style size classes ([`SIZE_CLASSES`], [`class_index_for`]),
//! * [`CpuRegistry`] — stable per-thread "CPU slot" assignment standing in
//!   for kernel per-CPU data.

mod cpu;
mod factory;
mod size_class;
mod sizing;
pub mod slab_layout;
mod slab_lists;
mod stats;
mod telemetry;
mod traits;

pub use cpu::{CpuId, CpuRegistry};
pub use factory::CacheFactory;
pub use size_class::{class_index_for, SIZE_CLASSES};
pub use sizing::SizingPolicy;
pub use slab_layout::RawSlab;
pub use slab_lists::{ListKind, SlabLists};
pub use stats::{CacheStats, CacheStatsSnapshot};
pub use telemetry::{CacheTelemetry, TelemetrySnapshot};
pub use traits::{AllocError, ObjPtr, ObjectAllocator};

// Re-exported so allocators and harnesses name the fast-path engine
// types without a separate dependency edge.
pub use pbs_percpu::{
    default_engine as fastpath_default_engine, env_disabled as fastpath_env_disabled,
    Engine as FastPathEngine, FastPathSnapshot,
};
