//! The allocator trait both SLUB and Prudence implement.

use std::fmt;
use std::ptr::NonNull;

use crate::stats::CacheStatsSnapshot;

/// Error returned by [`ObjectAllocator::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The underlying page allocator is out of memory and no deferred
    /// objects could be reclaimed in time.
    OutOfMemory,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "object allocator out of memory"),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<pbs_mem::OutOfMemory> for AllocError {
    fn from(_: pbs_mem::OutOfMemory) -> Self {
        AllocError::OutOfMemory
    }
}

/// An owned pointer to an object handed out by an [`ObjectAllocator`].
///
/// `ObjPtr` is `Send`/`Sync` because ownership of the underlying object is
/// exclusive until it is freed; transferring the pointer transfers that
/// ownership. The pointee is uninitialized on allocation.
///
/// # Example
///
/// ```
/// use std::ptr::NonNull;
/// use pbs_alloc_api::ObjPtr;
///
/// let mut value = 42u64;
/// let obj = ObjPtr::new(NonNull::from(&mut value).cast());
/// assert_eq!(obj.addr(), &value as *const _ as usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjPtr(NonNull<u8>);

// SAFETY: an ObjPtr represents exclusive ownership of an allocator object;
// the allocator types that mint them synchronize internally.
unsafe impl Send for ObjPtr {}
unsafe impl Sync for ObjPtr {}

impl ObjPtr {
    /// Wraps a raw object pointer.
    pub fn new(ptr: NonNull<u8>) -> Self {
        Self(ptr)
    }

    /// The pointer as `NonNull`.
    pub fn as_non_null(self) -> NonNull<u8> {
        self.0
    }

    /// The raw pointer.
    pub fn as_ptr(self) -> *mut u8 {
        self.0.as_ptr()
    }

    /// The address as an integer (for masking to slab bases, dedup checks).
    pub fn addr(self) -> usize {
        self.0.as_ptr() as usize
    }
}

/// A slab cache of fixed-size objects with support for *deferred* frees
/// synchronized by RCU.
///
/// Implemented by the SLUB-style baseline (`pbs-slub`, where
/// [`free_deferred`](Self::free_deferred) registers an RCU callback exactly
/// as Linux kernel code does) and by Prudence (`prudence`, where deferred
/// objects enter latent caches/slabs inside the allocator — the paper's
/// contribution).
///
/// # Safety contract
///
/// Pointers returned by [`allocate`](Self::allocate) reference
/// `object_size()` bytes of uninitialized, exclusively-owned memory. The
/// `free` family is `unsafe`: callers must pass pointers obtained from
/// *this* allocator, exactly once, and must not touch the object afterwards
/// (for `free_deferred`, concurrent RCU readers that obtained the pointer
/// before it was unlinked may continue reading it until the grace period
/// ends — that is the point).
pub trait ObjectAllocator: Send + Sync {
    /// Allocates one object.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the page allocator is
    /// exhausted and (for Prudence) waiting for deferred objects cannot
    /// satisfy the request either.
    fn allocate(&self) -> Result<ObjPtr, AllocError>;

    /// Immediately frees an object (no readers may reference it).
    ///
    /// # Safety
    ///
    /// `obj` must originate from [`allocate`](Self::allocate) on this
    /// allocator, must not have been freed already, and must not be used
    /// after this call.
    unsafe fn free(&self, obj: ObjPtr);

    /// Defers freeing of an object until after an RCU grace period.
    ///
    /// This is the turnkey replacement for `call_rcu(kfree)` described in
    /// paper §4 (Listing 2).
    ///
    /// # Safety
    ///
    /// `obj` must originate from [`allocate`](Self::allocate) on this
    /// allocator and must not be freed again. The caller must have unlinked
    /// the object so no *new* readers can reach it; pre-existing RCU readers
    /// may keep reading it until the grace period completes.
    ///
    /// Declared `#[track_caller]` so implementations can attribute the
    /// deferred garbage to the freeing call site (the attribute is
    /// inherited by every implementation, including through `dyn`).
    #[track_caller]
    unsafe fn free_deferred(&self, obj: ObjPtr);

    /// Size in bytes of objects served by this cache.
    fn object_size(&self) -> usize;

    /// Human-readable cache name (the paper uses Linux names such as
    /// `filp`, `dentry`, `ext4_inode`, `kmalloc-64`).
    fn name(&self) -> &str;

    /// The RCU domain deferred frees of this allocator synchronize with.
    /// Data structures check their read guards against
    /// [`Rcu::id`](pbs_rcu::Rcu::id) before traversing.
    fn rcu(&self) -> &std::sync::Arc<pbs_rcu::Rcu>;

    /// The reclamation domain this allocator's deferred frees route
    /// through, when it is attached to one (`None` for allocators that
    /// predate the pluggable backends or run pure epoch machinery).
    /// Harnesses use this to read backend stats and drive
    /// [`advance`](pbs_rcu::reclaim::ReclamationDomain::advance) without
    /// knowing the concrete cache type.
    fn reclaim_domain(&self) -> Option<&std::sync::Arc<dyn pbs_rcu::reclaim::ReclamationDomain>> {
        None
    }

    /// Snapshot of the cache statistics (Figures 7–11 inputs).
    fn stats(&self) -> CacheStatsSnapshot;

    /// Telemetry view of the cache: latency histograms and the event-ring
    /// snapshot. The default is empty so simple test allocators need not
    /// carry a ring; real allocators forward their
    /// [`CacheStats::telemetry`](crate::CacheStats::telemetry).
    fn telemetry(&self) -> pbs_telemetry::ComponentTelemetry {
        pbs_telemetry::ComponentTelemetry::default()
    }

    /// Blocks until all deferred frees issued so far have been reclaimed
    /// and are reusable. Used at the end of benchmark runs so peak/
    /// fragmentation measurements compare like with like.
    fn quiesce(&self);

    /// Number of objects whose free was deferred and has not yet been
    /// reclaimed into a reusable state. After [`quiesce`](Self::quiesce)
    /// this must be zero — the chaos harness asserts exactly that. The
    /// default is `0` for allocators without a deferral path.
    fn deferred_outstanding(&self) -> usize {
        0
    }

    /// Enables or disables this allocator's per-CPU fast path at
    /// runtime. Disabling must drain any fast-parked objects back into
    /// the regular caches so the switchover is leak-free; both
    /// directions must be safe under concurrent traffic. The default is
    /// a no-op for allocators without a fast path.
    fn fastpath_set_enabled(&self, _enabled: bool) {}

    /// Whether the per-CPU fast path is currently accepting operations.
    /// Allocators without one report `false`.
    fn fastpath_enabled(&self) -> bool {
        false
    }

    /// Switches the fast path's engine live (rseq ⇄ slot-lock
    /// emulation), preserving parked objects. Requests for an
    /// unavailable engine degrade to the portable one. No-op default.
    fn fastpath_set_engine(&self, _engine: pbs_percpu::Engine) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_ptr_roundtrip() {
        let mut buf = [0u8; 8];
        let nn = NonNull::new(buf.as_mut_ptr()).unwrap();
        let p = ObjPtr::new(nn);
        assert_eq!(p.as_non_null(), nn);
        assert_eq!(p.as_ptr(), nn.as_ptr());
        assert_eq!(p.addr(), nn.as_ptr() as usize);
    }

    #[test]
    fn alloc_error_displays() {
        assert!(AllocError::OutOfMemory.to_string().contains("out of memory"));
        let oom = pbs_mem::OutOfMemory { requested_bytes: 1 };
        assert_eq!(AllocError::from(oom), AllocError::OutOfMemory);
    }

    #[test]
    fn obj_ptr_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ObjPtr>();
    }
}
