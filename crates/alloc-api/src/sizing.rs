//! SLUB-like sizing heuristics, shared by both allocators.
//!
//! Paper §4.3: "our implementation of Prudence in the Linux kernel reuses
//! the existing heuristics employed by SLUB allocator to decide the size of
//! the object cache, the size of a slab, the threshold after which the slab
//! shrinking should be considered." Both allocators here consume the same
//! [`SizingPolicy`], so differences in the figures come from reclamation
//! design, not tuning.

use pbs_mem::PAGE_SIZE;

/// Bytes reserved at the base of every slab for the in-slab header that
/// maps an object pointer back to its slab metadata.
pub(crate) const SLAB_HEADER_RESERVE: usize = 64;

/// Maximum slab order (slab bytes = `PAGE_SIZE << order`).
const MAX_ORDER: u32 = 3;

/// Minimum number of objects we try to fit in one slab.
const MIN_OBJECTS_PER_SLAB: usize = 8;

/// Sizing decisions for one slab cache.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::SizingPolicy;
///
/// let p = SizingPolicy::for_object_size(512);
/// assert!(p.objects_per_slab >= 8);
/// assert!(p.slab_bytes.is_power_of_two());
/// // Larger objects get smaller per-CPU caches (paper §5.2: "larger
/// // objects are normally optimized for memory efficiency").
/// assert!(SizingPolicy::for_object_size(4096).object_cache_size
///     < SizingPolicy::for_object_size(64).object_cache_size);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizingPolicy {
    /// Size of each object in bytes (already aligned).
    pub object_size: usize,
    /// Bytes per slab (power of two; slabs are allocated aligned to this).
    pub slab_bytes: usize,
    /// Objects carved per slab (after the header reserve).
    pub objects_per_slab: usize,
    /// Capacity of the per-CPU object cache.
    pub object_cache_size: usize,
    /// Shrinking starts once a node holds more than this many free slabs.
    pub free_slabs_limit: usize,
    /// Number of cache-coloring offsets cycled across slabs.
    pub colors: usize,
}

impl SizingPolicy {
    /// Computes the policy for an object size, rounding the size up to
    /// 8-byte alignment.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is zero or larger than half the maximum slab
    /// size.
    pub fn for_object_size(object_size: usize) -> Self {
        assert!(object_size > 0, "object size must be non-zero");
        let object_size = object_size.next_multiple_of(8);
        let max_slab = PAGE_SIZE << MAX_ORDER;
        assert!(
            object_size <= max_slab / 2,
            "object size {object_size} too large for max slab {max_slab}"
        );
        // Smallest order that fits MIN_OBJECTS_PER_SLAB objects, capped.
        let mut order = 0;
        let slab_bytes = loop {
            let bytes = PAGE_SIZE << order;
            let objs = (bytes - SLAB_HEADER_RESERVE) / object_size;
            if objs >= MIN_OBJECTS_PER_SLAB || order == MAX_ORDER {
                break bytes;
            }
            order += 1;
        };
        let objects_per_slab = (slab_bytes - SLAB_HEADER_RESERVE) / object_size;
        Self {
            object_size,
            slab_bytes,
            objects_per_slab,
            object_cache_size: object_cache_size_for(object_size),
            free_slabs_limit: 8,
            colors: 8,
        }
    }

    /// Usable object bytes per slab (for fragmentation accounting).
    pub fn payload_bytes(&self) -> usize {
        self.objects_per_slab * self.object_size
    }
}

/// Historical SLAB-style per-CPU cache limits: big caches for small
/// objects, small caches for large ones.
fn object_cache_size_for(object_size: usize) -> usize {
    match object_size {
        0..=32 => 120,
        33..=64 => 96,
        65..=128 => 64,
        129..=256 => 54,
        257..=512 => 36,
        513..=1024 => 24,
        1025..=2048 => 16,
        _ => 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_objects_use_single_page_slabs() {
        let p = SizingPolicy::for_object_size(64);
        assert_eq!(p.slab_bytes, PAGE_SIZE);
        assert_eq!(p.objects_per_slab, (PAGE_SIZE - SLAB_HEADER_RESERVE) / 64);
    }

    #[test]
    fn large_objects_grow_slab_order() {
        let p = SizingPolicy::for_object_size(4096);
        assert!(p.slab_bytes > PAGE_SIZE);
        assert!(p.slab_bytes <= PAGE_SIZE << MAX_ORDER);
        assert!(p.objects_per_slab >= 1);
    }

    #[test]
    fn object_size_rounded_to_8() {
        let p = SizingPolicy::for_object_size(13);
        assert_eq!(p.object_size, 16);
    }

    #[test]
    fn cache_size_monotonically_shrinks_with_object_size() {
        let sizes = [8, 64, 128, 256, 512, 1024, 2048, 4096];
        let caches: Vec<_> = sizes
            .iter()
            .map(|&s| SizingPolicy::for_object_size(s).object_cache_size)
            .collect();
        for pair in caches.windows(2) {
            assert!(pair[0] >= pair[1], "cache sizes must not grow: {caches:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_object_size_panics() {
        SizingPolicy::for_object_size(0);
    }

    #[test]
    fn payload_fits_in_slab() {
        for size in [8, 24, 100, 192, 700, 2048, 4096] {
            let p = SizingPolicy::for_object_size(size);
            assert!(p.payload_bytes() + SLAB_HEADER_RESERVE <= p.slab_bytes);
        }
    }
}
