//! Unified telemetry exposition: one serializable snapshot combining the
//! RCU domain's stats, its grace-period event trace, and every cache's
//! counters, histograms and events.
//!
//! The snapshot is pure data (serde-serializable, no atomics), so
//! exporters — Prometheus text, chrome://tracing JSON — live downstream in
//! `pbs-workloads` and render it without touching live allocator state.

use pbs_rcu::reclaim::ReclaimStats;
use pbs_rcu::{BlameReport, RcuStats};
use pbs_telemetry::site::SiteReport;
use pbs_telemetry::ComponentTelemetry;
use serde::{Deserialize, Serialize};

use crate::stats::CacheStatsSnapshot;
use crate::traits::ObjectAllocator;

/// Telemetry for a single slab cache: its counter snapshot plus latency
/// histograms and trace events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheTelemetry {
    /// Cache name as reported by [`ObjectAllocator::name`].
    pub name: String,
    /// Counter snapshot (Figures 7–11 inputs).
    pub stats: CacheStatsSnapshot,
    /// Histograms (`slot_wait_ns`, `defer_delay_ns`) and trace events.
    pub telemetry: ComponentTelemetry,
}

impl CacheTelemetry {
    /// Captures a cache's telemetry through the [`ObjectAllocator`] trait.
    pub fn capture(alloc: &dyn ObjectAllocator) -> Self {
        Self {
            name: alloc.name().to_string(),
            stats: alloc.stats(),
            telemetry: alloc.telemetry(),
        }
    }
}

/// A full telemetry capture: the RCU domain plus any number of caches.
///
/// Snapshots from different runs (or different caches of the same run)
/// can be folded together with [`TelemetrySnapshot::merge`]; exporters
/// consume the merged result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// RCU domain counters (grace periods, callbacks, barrier paths).
    pub rcu: RcuStats,
    /// RCU histograms (`gp_latency_ns`, `callback_delay_ns`) and
    /// grace-period trace events.
    pub rcu_telemetry: ComponentTelemetry,
    /// Per-cache telemetry, one entry per captured cache.
    pub caches: Vec<CacheTelemetry>,
    /// Reclamation-backend counters of the domain the caches route
    /// deferred frees through (scan/seal/eject activity).
    pub reclaim: ReclaimStats,
    /// Stall-blame records: who wedged reclamation, for how long,
    /// history plus any still-open episode last.
    pub blame: Vec<BlameReport>,
    /// Per-call-site garbage attribution and age distribution.
    pub sites: SiteReport,
}

impl TelemetrySnapshot {
    /// Builds a snapshot from the RCU domain's views, with no caches yet.
    pub fn new(rcu: RcuStats, rcu_telemetry: ComponentTelemetry) -> Self {
        Self {
            rcu,
            rcu_telemetry,
            caches: Vec::new(),
            reclaim: ReclaimStats::default(),
            blame: Vec::new(),
            sites: SiteReport::default(),
        }
    }

    /// Captures and appends one cache.
    pub fn push_cache(&mut self, alloc: &dyn ObjectAllocator) {
        self.caches.push(CacheTelemetry::capture(alloc));
    }

    /// Folds another snapshot into this one. RCU counters add field-wise
    /// (two captures of the *same* domain should not be merged — that
    /// would double-count); caches merge by name, unknown names append.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.rcu.gp_advances += other.rcu.gp_advances;
        self.rcu.synchronize_calls += other.rcu.synchronize_calls;
        self.rcu.membarrier_advances += other.rcu.membarrier_advances;
        self.rcu.fallback_fence_advances += other.rcu.fallback_fence_advances;
        self.rcu.injected_gp_stalls += other.rcu.injected_gp_stalls;
        self.rcu.stall_warnings += other.rcu.stall_warnings;
        self.rcu.stall_blames += other.rcu.stall_blames;
        self.rcu.longest_stall_ns = self.rcu.longest_stall_ns.max(other.rcu.longest_stall_ns);
        self.rcu.active_stalls += other.rcu.active_stalls;
        self.rcu.expedited_gps += other.rcu.expedited_gps;
        self.rcu.callbacks_enqueued += other.rcu.callbacks_enqueued;
        self.rcu.callbacks_processed += other.rcu.callbacks_processed;
        self.rcu.callback_backlog += other.rcu.callback_backlog;
        self.rcu.max_callback_backlog = self
            .rcu
            .max_callback_backlog
            .max(other.rcu.max_callback_backlog);
        self.rcu_telemetry.merge(&other.rcu_telemetry);
        if self.reclaim.backend.is_empty() {
            self.reclaim.backend = other.reclaim.backend.clone();
        }
        self.reclaim.deferred_in_domain += other.reclaim.deferred_in_domain;
        self.reclaim.scans += other.reclaim.scans;
        self.reclaim.scan_reclaimed += other.reclaim.scan_reclaimed;
        self.reclaim.scan_protected += other.reclaim.scan_protected;
        self.reclaim.batches_sealed += other.reclaim.batches_sealed;
        self.reclaim.batch_refs_captured += other.reclaim.batch_refs_captured;
        self.reclaim.ejections += other.reclaim.ejections;
        self.reclaim.injected_stalls += other.reclaim.injected_stalls;
        self.blame.extend(other.blame.iter().cloned());
        self.sites.merge(&other.sites);
        for cache in &other.caches {
            match self.caches.iter_mut().find(|c| c.name == cache.name) {
                Some(mine) => {
                    mine.stats.merge(&cache.stats);
                    mine.telemetry.merge(&cache.telemetry);
                }
                None => self.caches.push(cache.clone()),
            }
        }
    }

    /// Total trace events surfaced across the RCU domain and all caches.
    pub fn total_events(&self) -> usize {
        self.rcu_telemetry.events.len()
            + self.caches.iter().map(|c| c.telemetry.events.len()).sum::<usize>()
    }

    /// Looks up a cache's telemetry by name.
    pub fn cache(&self, name: &str) -> Option<&CacheTelemetry> {
        self.caches.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new(
            RcuStats {
                gp_advances: 4,
                membarrier_advances: 4,
                synchronize_calls: 2,
                ..Default::default()
            },
            ComponentTelemetry::default(),
        );
        snap.caches.push(CacheTelemetry {
            name: "kmalloc-64".to_string(),
            stats: CacheStatsSnapshot {
                alloc_requests: 10,
                cache_hits: 9,
                ..Default::default()
            },
            telemetry: ComponentTelemetry::default(),
        });
        snap
    }

    #[test]
    fn merge_folds_every_rcu_counter() {
        let mut a = sample();
        a.rcu.injected_gp_stalls = 1;
        a.rcu.stall_warnings = 2;
        a.rcu.longest_stall_ns = 500;
        a.rcu.expedited_gps = 3;
        let mut b = sample();
        b.rcu.injected_gp_stalls = 4;
        b.rcu.stall_warnings = 1;
        b.rcu.longest_stall_ns = 900;
        b.rcu.active_stalls = 1;
        b.rcu.expedited_gps = 2;
        a.merge(&b);
        assert_eq!(a.rcu.injected_gp_stalls, 5);
        assert_eq!(a.rcu.stall_warnings, 3);
        assert_eq!(a.rcu.longest_stall_ns, 900, "longest stall is a maximum");
        assert_eq!(a.rcu.active_stalls, 1);
        assert_eq!(a.rcu.expedited_gps, 5);
    }

    #[test]
    fn merge_by_cache_name() {
        let mut a = sample();
        let mut b = sample();
        b.caches[0].stats.alloc_requests = 5;
        b.caches.push(CacheTelemetry {
            name: "filp".to_string(),
            ..Default::default()
        });
        a.merge(&b);
        assert_eq!(a.rcu.gp_advances, 8);
        assert_eq!(a.rcu.synchronize_calls, 4);
        assert_eq!(a.caches.len(), 2);
        assert_eq!(a.cache("kmalloc-64").unwrap().stats.alloc_requests, 15);
        assert!(a.cache("filp").is_some());
        assert!(a.cache("dentry").is_none());
    }

    #[test]
    fn serde_round_trip() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rcu, snap.rcu);
        assert_eq!(back.caches.len(), 1);
        assert_eq!(back.caches[0].name, "kmalloc-64");
        assert_eq!(back.caches[0].stats, snap.caches[0].stats);
    }

    #[test]
    fn total_events_sums_components() {
        let mut snap = sample();
        assert_eq!(snap.total_events(), 0);
        snap.rcu_telemetry.events.push(pbs_telemetry::EventSnapshot {
            seq: 0,
            t_ns: 1,
            kind: 0,
            lane: 0,
            src: 0,
            a: 0,
            b: 0,
        });
        assert_eq!(snap.total_events(), 1);
    }
}
