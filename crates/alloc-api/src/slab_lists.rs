//! Full/partial/free slab list bookkeeping with O(1) moves.
//!
//! Slab allocators group slabs by occupancy (paper Figure 2 / Figure 4).
//! Both allocators here track membership with this helper: each slab index
//! lives on exactly one list, and moving a slab between lists is O(1).

/// The list a slab currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListKind {
    /// All objects are out.
    Full,
    /// Some objects out, some free.
    Partial,
    /// All objects free (or expected to be free after a grace period, when
    /// Prudence pre-moves a slab — paper §4.2, *Slab pre-movement*).
    Free,
}

impl ListKind {
    fn idx(self) -> usize {
        match self {
            ListKind::Full => 0,
            ListKind::Partial => 1,
            ListKind::Free => 2,
        }
    }
}

/// Tracks which of the three lists each slab index is on.
///
/// # Example
///
/// ```
/// use pbs_alloc_api::{ListKind, SlabLists};
///
/// let mut lists = SlabLists::new();
/// lists.insert(3, ListKind::Partial);
/// assert_eq!(lists.kind_of(3), Some(ListKind::Partial));
/// lists.move_to(3, ListKind::Full);
/// assert_eq!(lists.list(ListKind::Full), &[3]);
/// lists.remove(3);
/// assert_eq!(lists.kind_of(3), None);
/// ```
#[derive(Debug, Default)]
pub struct SlabLists {
    lists: [Vec<usize>; 3],
    /// `loc[slab] = Some((kind, position-in-list))`.
    loc: Vec<Option<(ListKind, usize)>>,
}

impl SlabLists {
    /// Creates empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a slab on a list.
    ///
    /// # Panics
    ///
    /// Panics if the slab is already on a list.
    pub fn insert(&mut self, slab: usize, kind: ListKind) {
        if self.loc.len() <= slab {
            self.loc.resize(slab + 1, None);
        }
        assert!(self.loc[slab].is_none(), "slab {slab} already listed");
        let list = &mut self.lists[kind.idx()];
        list.push(slab);
        self.loc[slab] = Some((kind, list.len() - 1));
    }

    /// Removes a slab from whatever list it is on.
    ///
    /// # Panics
    ///
    /// Panics if the slab is not on any list.
    pub fn remove(&mut self, slab: usize) {
        let (kind, pos) = self.loc[slab].take().expect("slab not on any list");
        let list = &mut self.lists[kind.idx()];
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.loc[moved] = Some((kind, pos));
        }
    }

    /// Moves a slab to `kind` (no-op if already there).
    pub fn move_to(&mut self, slab: usize, kind: ListKind) {
        if self.kind_of(slab) == Some(kind) {
            return;
        }
        self.remove(slab);
        self.insert(slab, kind);
    }

    /// Which list the slab is on, if any.
    pub fn kind_of(&self, slab: usize) -> Option<ListKind> {
        self.loc.get(slab).copied().flatten().map(|(k, _)| k)
    }

    /// The slabs currently on a list (unordered).
    pub fn list(&self, kind: ListKind) -> &[usize] {
        &self.lists[kind.idx()]
    }

    /// Number of slabs on a list.
    pub fn len(&self, kind: ListKind) -> usize {
        self.lists[kind.idx()].len()
    }

    /// Whether a list is empty.
    pub fn is_empty(&self, kind: ListKind) -> bool {
        self.lists[kind.idx()].is_empty()
    }

    /// First slab on a list, if any.
    pub fn first(&self, kind: ListKind) -> Option<usize> {
        self.lists[kind.idx()].first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_move_remove() {
        let mut l = SlabLists::new();
        l.insert(0, ListKind::Free);
        l.insert(5, ListKind::Free);
        l.insert(2, ListKind::Partial);
        assert_eq!(l.len(ListKind::Free), 2);
        l.move_to(0, ListKind::Partial);
        assert_eq!(l.list(ListKind::Free), &[5]);
        assert_eq!(l.kind_of(0), Some(ListKind::Partial));
        l.remove(5);
        assert!(l.is_empty(ListKind::Free));
        assert_eq!(l.kind_of(5), None);
    }

    #[test]
    fn swap_remove_fixes_positions() {
        let mut l = SlabLists::new();
        for i in 0..4 {
            l.insert(i, ListKind::Partial);
        }
        l.remove(0); // 3 swaps into position 0
        l.remove(3); // must still be findable
        assert_eq!(l.len(ListKind::Partial), 2);
        assert_eq!(l.kind_of(1), Some(ListKind::Partial));
        assert_eq!(l.kind_of(2), Some(ListKind::Partial));
    }

    #[test]
    fn move_to_same_list_is_noop() {
        let mut l = SlabLists::new();
        l.insert(1, ListKind::Full);
        l.move_to(1, ListKind::Full);
        assert_eq!(l.list(ListKind::Full), &[1]);
    }

    #[test]
    #[should_panic(expected = "already listed")]
    fn double_insert_panics() {
        let mut l = SlabLists::new();
        l.insert(1, ListKind::Full);
        l.insert(1, ListKind::Free);
    }

    #[test]
    fn first_returns_head() {
        let mut l = SlabLists::new();
        assert_eq!(l.first(ListKind::Partial), None);
        l.insert(9, ListKind::Partial);
        l.insert(4, ListKind::Partial);
        assert_eq!(l.first(ListKind::Partial), Some(9));
    }
}
