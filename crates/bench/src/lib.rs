//! # pbs-bench — Criterion benchmark harness
//!
//! One bench target per table/figure of the paper's evaluation:
//!
//! | target | regenerates |
//! |---|---|
//! | `alloc_cost` | §3.3 hit/refill/grow cost table |
//! | `fig3_endurance` | Figure 3 (short form; see the `endurance` binary for the full curve) |
//! | `fig6_micro` | Figure 6 microbenchmark sweep |
//! | `fig7_to_13_apps` | Figures 7–13 application benchmarks |
//! | `ablation` | per-optimization ablations of the §4.2 design choices |
//!
//! Run with `cargo bench --workspace`. Long-form experiments (the full
//! Figure 3 curve, paper-scale transaction counts) live in the
//! `pbs-workloads` binaries; the Criterion targets here use reduced
//! parameters so the whole suite completes in minutes.

use std::sync::Arc;

use pbs_alloc_api::ObjectAllocator;
use pbs_mem::PageAllocator;
use pbs_rcu::{Rcu, RcuConfig};
use prudence::{PrudenceCache, PrudenceConfig};

/// Builds a Prudence cache with a given configuration on fresh substrates
/// (shared by the ablation benches).
pub fn prudence_cache_with(config: PrudenceConfig, object_size: usize) -> Arc<PrudenceCache> {
    let pages = Arc::new(PageAllocator::new());
    let rcu = Arc::new(Rcu::with_config(RcuConfig::linux_like()));
    Arc::new(PrudenceCache::new("bench", object_size, config, pages, rcu))
}

/// One kmalloc/kfree_deferred pair on any allocator (the Figure 6 inner
/// loop body). Allocation failures panic (benches run without memory
/// limits).
pub fn deferred_pair(cache: &dyn ObjectAllocator) {
    let obj = cache.allocate().expect("bench allocation");
    // SAFETY: fresh exclusive object, deferred exactly once.
    unsafe {
        obj.as_ptr().cast::<u64>().write(0xBEEF);
        cache.free_deferred(obj);
    }
}
