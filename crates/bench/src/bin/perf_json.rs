//! perf_json — machine-readable before/after performance capture.
//!
//! Criterion output is for humans; this binary produces the committed
//! numbers. It measures the two hot paths the paper's evaluation leans
//! on — the Figure 6 kmalloc/kfree_deferred pair loop and the §3.3
//! cache-hit regime — across thread counts, and merges the results into
//! `BENCH_fig6.json` / `BENCH_alloc_cost.json` under a run label, so a
//! "baseline" run and an "optimized" run can sit side by side in the
//! same file.
//!
//! Usage:
//!
//! ```text
//! perf_json <label> [--out-dir DIR] [--threads 1,2,4,8] [--secs 0.5]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pbs_rcu::RcuConfig;
use pbs_workloads::alloc_cost::measure_alloc_cost;
use pbs_workloads::{AllocatorKind, Testbed};
use serde::Serialize;
use serde_json::Value;

/// One measured configuration of a pair loop.
#[derive(Debug, Clone, Serialize)]
struct PairRow {
    /// Allocator label ("slub" / "prudence").
    allocator: String,
    /// Object size in bytes.
    object_size: usize,
    /// Concurrent worker threads.
    threads: usize,
    /// Aggregate pairs per second across all threads.
    pairs_per_sec: f64,
    /// Mean wall nanoseconds per pair per thread.
    ns_per_pair: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut label = None;
    let mut out_dir = ".".to_string();
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut secs = 0.5f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => out_dir = args.next().expect("--out-dir needs a value"),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .split(',')
                    .map(|t| t.parse().expect("bad thread count"))
                    .collect();
            }
            "--secs" => {
                secs = args
                    .next()
                    .expect("--secs needs a value")
                    .parse()
                    .expect("bad seconds");
            }
            other if label.is_none() && !other.starts_with('-') => {
                label = Some(other.to_string());
            }
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let label = label.unwrap_or_else(|| "run".to_string());
    let duration = Duration::from_secs_f64(secs);
    let meta = run_metadata();
    println!(
        "run metadata: rev={} nproc={} kernel={} engine={} reclaim={}",
        meta.git_rev, meta.nproc, meta.kernel, meta.fastpath_engine, meta.reclaim_backend
    );

    // Figure 6 regime: alloc + deferred free, contended per-CPU state.
    let mut fig6_rows = Vec::new();
    println!("fig6 deferred-pair sweep ({label}):");
    for &size in &[128usize, 1024] {
        for kind in AllocatorKind::BOTH {
            for &t in &threads {
                let row = measure_pair_loop(kind, size, t, duration, true);
                println!(
                    "  {:<9} size={size:<5} threads={t}  {:>12.0} pairs/s  {:>8.1} ns/pair",
                    row.allocator, row.pairs_per_sec, row.ns_per_pair
                );
                fig6_rows.push(row);
            }
        }
    }
    merge_run(
        &format!("{out_dir}/BENCH_fig6.json"),
        &label,
        serde_json::json!({
            "meta": meta,
            "rows": fig6_rows,
        }),
    );

    // §3.3 hit regime: alloc + immediate free (pure object-cache hits),
    // plus the single-threaded derived cost table.
    let mut hit_rows = Vec::new();
    println!("alloc-cost hit-path sweep ({label}):");
    for kind in AllocatorKind::BOTH {
        for &t in &threads {
            let row = measure_pair_loop(kind, 512, t, duration, false);
            println!(
                "  {:<9} threads={t}  {:>12.0} pairs/s  {:>8.1} ns/pair",
                row.allocator, row.pairs_per_sec, row.ns_per_pair
            );
            hit_rows.push(row);
        }
    }
    let table = measure_alloc_cost(512, 100_000);
    let blob = serde_json::json!({
        "meta": meta,
        "hit_path": hit_rows,
        "s33_table": table,
    });
    merge_run(&format!("{out_dir}/BENCH_alloc_cost.json"), &label, blob);
}

/// Provenance recorded with every committed run, so a number in a BENCH
/// file can be traced to the code, machine and fast-path engine that
/// produced it.
#[derive(Debug, Clone, Serialize)]
struct RunMeta {
    /// `git rev-parse --short HEAD`, or "unknown" outside a checkout.
    git_rev: String,
    /// Available hardware parallelism on the measuring machine.
    nproc: usize,
    /// Kernel release (`/proc/sys/kernel/osrelease`), or "unknown".
    kernel: String,
    /// Fast-path engine new caches select here ("rseq" / "locks"), after
    /// any `PBS_FASTPATH` override; "off" when the override disabled the
    /// fast path entirely (the run measures the regular paths).
    fastpath_engine: String,
    /// Value of `PBS_FASTPATH` if the run was forced, else null.
    fastpath_override: Option<String>,
    /// Reclamation backend new testbeds select here ("epoch" / "hp" /
    /// "hyaline"), after any `PBS_RECLAIM` override.
    reclaim_backend: String,
    /// Value of `PBS_RECLAIM` if the run was forced, else null.
    reclaim_override: Option<String>,
}

fn run_metadata() -> RunMeta {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    RunMeta {
        git_rev,
        nproc: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernel,
        fastpath_engine: if pbs_alloc_api::fastpath_env_disabled() {
            "off".to_string()
        } else {
            pbs_alloc_api::fastpath_default_engine().label().to_string()
        },
        fastpath_override: std::env::var("PBS_FASTPATH").ok(),
        reclaim_backend: pbs_rcu::reclaim::ReclaimBackend::from_env()
            .label()
            .to_string(),
        reclaim_override: std::env::var("PBS_RECLAIM").ok(),
    }
}

/// Runs `threads` workers doing alloc/free pairs on one shared cache for
/// `duration`, returning the aggregate rate. `deferred` selects
/// `free_deferred` (the Figure 6 loop) versus `free` (the hit regime).
fn measure_pair_loop(
    kind: AllocatorKind,
    object_size: usize,
    threads: usize,
    duration: Duration,
    deferred: bool,
) -> PairRow {
    let bed = Testbed::new(kind, threads, RcuConfig::linux_like(), None);
    let cache = bed.create_cache("perf", object_size);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Batch the stop check off the measured path.
                    for _ in 0..64 {
                        let obj = cache.allocate().expect("perf allocation");
                        // SAFETY: fresh exclusive object, freed exactly once.
                        unsafe {
                            obj.as_ptr().cast::<u64>().write(0xBEEF);
                            if deferred {
                                cache.free_deferred(obj);
                            } else {
                                cache.free(obj);
                            }
                        }
                    }
                    ops += 64;
                }
                total.fetch_add(ops, Ordering::Relaxed);
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("perf worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    if std::env::var_os("PERF_JSON_DUMP_STATS").is_some() {
        eprintln!("  stats: {:?}", cache.stats());
        eprintln!("  rcu:   {:?}", bed.rcu().stats());
    }
    cache.quiesce();

    let pairs = total.load(Ordering::Relaxed) as f64;
    let pairs_per_sec = pairs / elapsed;
    PairRow {
        allocator: kind.label().to_string(),
        object_size,
        threads,
        pairs_per_sec,
        ns_per_pair: threads as f64 * elapsed * 1e9 / pairs.max(1.0),
    }
}

/// Inserts `data` under `runs.<label>` in the JSON file at `path`,
/// creating the file or replacing an existing run of the same label.
fn merge_run(path: &str, label: &str, data: Value) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .unwrap_or_else(|| Value::Map(vec![("runs".to_string(), Value::Map(Vec::new()))]));
    let Value::Map(entries) = &mut root else {
        panic!("{path}: top level is not an object");
    };
    let runs = match entries.iter_mut().find(|(key, _)| key == "runs") {
        Some((_, runs)) => runs,
        None => {
            entries.push(("runs".to_string(), Value::Map(Vec::new())));
            &mut entries.last_mut().unwrap().1
        }
    };
    let Value::Map(runs) = runs else {
        panic!("{path}: \"runs\" is not an object");
    };
    match runs.iter_mut().find(|(key, _)| key == label) {
        Some((_, slot)) => *slot = data,
        None => runs.push((label.to_string(), data)),
    }
    let text = serde_json::to_string_pretty(&root).expect("serialize run file");
    std::fs::write(path, text + "\n").expect("write run file");
    println!("merged run {label:?} into {path}");
}
