//! trace_overhead — the tracing-cost guard.
//!
//! Measures the alloc/free pair loop with event tracing enabled versus
//! disabled and reports the regression, in the two regimes that matter:
//!
//! * **hit path** (`allocate` + `free`): tracing's cost here is the
//!   single relaxed load of the global flag — the budget is ≤3% at
//!   4 threads.
//! * **deferred path** (`allocate` + `free_deferred`): tracing also
//!   stamps defer clocks, interns the call site, and writes ring
//!   records, so this regime bounds the full instrumentation cost
//!   including per-site garbage attribution.
//! * **hit+doctor** (`allocate` + `free` with the live `/doctor`
//!   endpoint up and polled): bounds what a scrape loop costs the hot
//!   path. Recorded, not gated — snapshot gathering runs off-thread.
//!
//! Runs are measured in back-to-back off/on pairs (order alternating
//! per rep, as in `idle_overhead`): the reported delta is the median of
//! the per-pair deltas, so slow machine drift cancels inside each pair
//! and the median discards reps a preemption landed in the middle of.
//!
//! Usage:
//!
//! ```text
//! trace_overhead [--threads 4] [--secs 0.5] [--reps 5] [--out PATH]
//!                [--enforce] [--budget-pct 3.0]
//! ```
//!
//! With `--enforce`, exits nonzero if the hit-path delta exceeds the
//! budget (default 3%), printing the offending regime — this is the CI
//! gate keeping attribution honest.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pbs_rcu::RcuConfig;
use pbs_workloads::doctor::{http_get, DoctorServer};
use pbs_workloads::{AllocatorKind, Testbed};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 4usize;
    let mut secs = 0.5f64;
    let mut reps = 5usize;
    let mut out: Option<String> = None;
    let mut enforce = false;
    let mut budget_pct = 3.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => threads = parse(args.next(), "--threads"),
            "--secs" => secs = parse(args.next(), "--secs"),
            "--reps" => reps = parse(args.next(), "--reps"),
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--enforce" => enforce = true,
            "--budget-pct" => budget_pct = parse(args.next(), "--budget-pct"),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let duration = Duration::from_secs_f64(secs);

    println!(
        "trace overhead guard: {threads} threads, {reps}x{secs}s per mode, prudence 512 B"
    );
    let mut report = Vec::new();
    for (regime, deferred, doctor) in [
        ("hit", false, false),
        ("deferred", true, false),
        ("hit+doctor", false, true),
    ] {
        let (off, on, delta_pct) = measure_modes(threads, duration, reps, deferred, doctor);
        println!(
            "  {regime:<10} tracing off {off:>8.1} ns/pair   on {on:>8.1} ns/pair   delta {delta_pct:+.2}%"
        );
        report.push((regime, off, on, delta_pct));
    }

    if let Some(path) = out {
        let mut json = String::from("{\n");
        for (i, (regime, off, on, delta)) in report.iter().enumerate() {
            json.push_str(&format!(
                "  \"{regime}\": {{\"off_ns_per_pair\": {off:.2}, \"on_ns_per_pair\": {on:.2}, \"delta_pct\": {delta:.3}}}{}\n",
                if i + 1 < report.len() { "," } else { "" }
            ));
        }
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write report");
        println!("wrote {path}");
    }

    // Leave the flag where the library default puts it.
    pbs_telemetry::set_enabled(true);

    if enforce {
        // Only the hit path is gated: the deferred regime deliberately
        // pays for ring writes + site stamps, and the doctor regime's
        // scrape cost lands on the server thread, not the workers.
        let &(regime, _, _, delta) = report
            .iter()
            .find(|(regime, ..)| *regime == "hit")
            .expect("hit regime always measured");
        if delta > budget_pct {
            eprintln!(
                "trace_overhead: {regime} path regression {delta:+.2}% exceeds the {budget_pct:.1}% budget"
            );
            std::process::exit(1);
        }
        println!("enforce: {regime} path delta {delta:+.2}% within the {budget_pct:.1}% budget");
    }
}

fn parse<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    arg.and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value"))
}

/// Runs `reps` back-to-back off/on measurement pairs (order alternating
/// per rep) and returns the median ns/pair of each mode plus the median
/// of the per-pair relative deltas — the drift-immune number the gate
/// judges. With `doctor`, the "on" legs also run the live introspection
/// endpoint and scrape it throughout the measurement.
fn measure_modes(
    threads: usize,
    duration: Duration,
    reps: usize,
    deferred: bool,
    doctor: bool,
) -> (f64, f64, f64) {
    let run = |on: bool, dur: Duration| {
        pbs_telemetry::set_enabled(on);
        measure_pair_loop(threads, dur, deferred, doctor && on)
    };
    // Warm up both modes once so neither pays first-touch costs.
    for on in [false, true] {
        run(on, duration / 4);
    }
    let mut off = Vec::new();
    let mut on = Vec::new();
    let mut deltas = Vec::new();
    for rep in 0..reps {
        let (o, n) = if rep % 2 == 0 {
            let o = run(false, duration);
            (o, run(true, duration))
        } else {
            let n = run(true, duration);
            (run(false, duration), n)
        };
        deltas.push((n - o) / o * 100.0);
        off.push(o);
        on.push(n);
    }
    (median(off), median(on), median(deltas))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// One measurement: `threads` workers doing alloc/free pairs on a shared
/// Prudence cache for `duration`; returns the best observed ns/pair.
///
/// As in `idle_overhead`, each worker times itself in 64-pair batches
/// and keeps its fastest batch: a batch (~10 µs) is far shorter than a
/// scheduler timeslice, so on oversubscribed machines the fastest
/// batches run preemption-free and measure the per-pair cost rather
/// than the scheduler. Tracing's cost recurs in *every* batch (flag
/// load on the hit path; ring write + site stamp + clock read on the
/// deferred path), so the minimum still contains it.
///
/// With `doctor`, the live endpoint is up for the whole window and the
/// timing thread scrapes `/doctor` instead of sleeping idle, so snapshot
/// gathering genuinely contends with the hot loop.
fn measure_pair_loop(threads: usize, duration: Duration, deferred: bool, doctor: bool) -> f64 {
    let bed = Arc::new(Testbed::new(
        AllocatorKind::Prudence,
        threads,
        RcuConfig::linux_like(),
        None,
    ));
    let server = if doctor {
        let provider = Arc::clone(&bed);
        Some(DoctorServer::start(move || provider.telemetry()).expect("doctor endpoint binds"))
    } else {
        None
    };
    let cache = bed.create_cache("overhead", 512);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    const BATCH: u32 = 64;

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut best = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    let batch_start = Instant::now();
                    for _ in 0..BATCH {
                        let obj = cache.allocate().expect("overhead allocation");
                        // SAFETY: fresh exclusive object, freed exactly once.
                        unsafe {
                            obj.as_ptr().cast::<u64>().write(0xBEEF);
                            if deferred {
                                cache.free_deferred(obj);
                            } else {
                                cache.free(obj);
                            }
                        }
                    }
                    best = best.min(batch_start.elapsed().as_nanos() as u64);
                }
                best
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    match &server {
        Some(server) => {
            // Scrape continuously: each GET walks every cache + the RCU
            // domain for a snapshot while the workers hammer the cache.
            while start.elapsed() < duration {
                let _ = http_get(server.addr(), "/doctor");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        None => std::thread::sleep(duration),
    }
    stop.store(true, Ordering::Relaxed);
    let best = workers
        .into_iter()
        .map(|w| w.join().expect("overhead worker panicked"))
        .min()
        .unwrap_or(u64::MAX);
    cache.quiesce();
    best as f64 / f64::from(BATCH)
}
