//! trace_overhead — the tracing-cost guard.
//!
//! Measures the alloc/free pair loop with event tracing enabled versus
//! disabled and reports the regression, in the two regimes that matter:
//!
//! * **hit path** (`allocate` + `free`): tracing's cost here is the
//!   single relaxed load of the global flag — the budget is ≤3% at
//!   4 threads.
//! * **deferred path** (`allocate` + `free_deferred`): tracing also
//!   stamps defer clocks and writes ring records, so this regime bounds
//!   the full instrumentation cost.
//!
//! Runs are interleaved off/on/off/on… and summarized by median, so
//! machine drift hits both modes equally.
//!
//! Usage:
//!
//! ```text
//! trace_overhead [--threads 4] [--secs 0.5] [--reps 5] [--out PATH]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pbs_rcu::RcuConfig;
use pbs_workloads::{AllocatorKind, Testbed};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 4usize;
    let mut secs = 0.5f64;
    let mut reps = 5usize;
    let mut out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => threads = parse(args.next(), "--threads"),
            "--secs" => secs = parse(args.next(), "--secs"),
            "--reps" => reps = parse(args.next(), "--reps"),
            "--out" => out = Some(args.next().expect("--out needs a value")),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let duration = Duration::from_secs_f64(secs);

    println!(
        "trace overhead guard: {threads} threads, {reps}x{secs}s per mode, prudence 512 B"
    );
    let mut report = Vec::new();
    for (regime, deferred) in [("hit", false), ("deferred", true)] {
        let (off, on) = measure_modes(threads, duration, reps, deferred);
        let delta_pct = (on - off) / off * 100.0;
        println!(
            "  {regime:<9} tracing off {off:>8.1} ns/pair   on {on:>8.1} ns/pair   delta {delta_pct:+.2}%"
        );
        report.push((regime, off, on, delta_pct));
    }

    if let Some(path) = out {
        let mut json = String::from("{\n");
        for (i, (regime, off, on, delta)) in report.iter().enumerate() {
            json.push_str(&format!(
                "  \"{regime}\": {{\"off_ns_per_pair\": {off:.2}, \"on_ns_per_pair\": {on:.2}, \"delta_pct\": {delta:.3}}}{}\n",
                if i + 1 < report.len() { "," } else { "" }
            ));
        }
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write report");
        println!("wrote {path}");
    }

    // Leave the flag where the library default puts it.
    pbs_telemetry::set_enabled(true);
}

fn parse<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    arg.and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value"))
}

/// Runs `reps` interleaved off/on measurements and returns the median
/// ns/pair of each mode.
fn measure_modes(
    threads: usize,
    duration: Duration,
    reps: usize,
    deferred: bool,
) -> (f64, f64) {
    // Warm up both modes once so neither pays first-touch costs.
    for on in [false, true] {
        pbs_telemetry::set_enabled(on);
        measure_pair_loop(threads, duration / 4, deferred);
    }
    let mut off = Vec::new();
    let mut on = Vec::new();
    for _ in 0..reps {
        pbs_telemetry::set_enabled(false);
        off.push(measure_pair_loop(threads, duration, deferred));
        pbs_telemetry::set_enabled(true);
        on.push(measure_pair_loop(threads, duration, deferred));
    }
    (median(off), median(on))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// One measurement: `threads` workers doing alloc/free pairs on a shared
/// Prudence cache for `duration`; returns mean ns per pair per thread.
fn measure_pair_loop(threads: usize, duration: Duration, deferred: bool) -> f64 {
    let bed = Testbed::new(AllocatorKind::Prudence, threads, RcuConfig::linux_like(), None);
    let cache = bed.create_cache("overhead", 512);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Batch the stop check off the measured path.
                    for _ in 0..64 {
                        let obj = cache.allocate().expect("overhead allocation");
                        // SAFETY: fresh exclusive object, freed exactly once.
                        unsafe {
                            obj.as_ptr().cast::<u64>().write(0xBEEF);
                            if deferred {
                                cache.free_deferred(obj);
                            } else {
                                cache.free(obj);
                            }
                        }
                    }
                    ops += 64;
                }
                total.fetch_add(ops, Ordering::Relaxed);
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("overhead worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    cache.quiesce();
    let pairs = total.load(Ordering::Relaxed) as f64;
    threads as f64 * elapsed * 1e9 / pairs.max(1.0)
}
