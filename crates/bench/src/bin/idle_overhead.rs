//! idle_overhead — the graceful-degradation idle-cost guard.
//!
//! The stall watchdog, the deferred-backlog pressure governor and the OOM
//! recovery ladder must be free when nothing is wrong: the watchdog lives
//! on the grace-period driver thread, the governor runs only on the
//! deferred-free path, and the ladder only on allocation failure. None of
//! them may add work to the uncontended allocate/free hit path.
//!
//! This guard measures that claim instead of trusting it. It times the
//! 4-thread alloc/free pair loop twice — once with the machinery **armed**
//! at its defaults (watchdog threshold 100 ms, stock watermarks) and once
//! **quiescent** (threshold and watermarks pushed beyond reach) — with
//! registered-but-unpinned readers present so the watchdog scan has real
//! records to walk.
//!
//! Shared machines drift on timescales of seconds (frequency governors,
//! noisy neighbours), which swamps a 1% budget if the two modes are
//! measured in long separate blocks. So the guard measures in short
//! back-to-back *pairs* (order alternating per rep), computes the relative
//! delta within each pair — where the machine state is nearly constant —
//! and reports the median of the per-pair deltas. The run fails (exit 1)
//! if that median says the armed mode is more than `--max-delta` percent
//! slower (default 1%).
//!
//! Usage:
//!
//! ```text
//! idle_overhead [--threads 4] [--secs 0.15] [--reps 12] [--max-delta 1.0]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pbs_rcu::RcuConfig;
use pbs_workloads::{AllocatorKind, Testbed};
use prudence::PrudenceConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 4usize;
    let mut secs = 0.15f64;
    let mut reps = 12usize;
    let mut max_delta = 1.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => threads = parse(args.next(), "--threads"),
            "--secs" => secs = parse(args.next(), "--secs"),
            "--reps" => reps = parse(args.next(), "--reps"),
            "--max-delta" => max_delta = parse(args.next(), "--max-delta"),
            other => panic!("unexpected argument {other:?}"),
        }
    }
    let duration = Duration::from_secs_f64(secs);

    println!(
        "idle overhead guard: {threads} threads, {reps}x{secs}s per mode, \
         prudence 512 B hit path, budget {max_delta}%"
    );

    // Warm both modes once so neither pays first-touch costs.
    for armed in [false, true] {
        measure_pair_loop(threads, duration / 2, armed);
    }
    let mut deltas = Vec::new();
    let mut best_q = f64::INFINITY;
    let mut best_a = f64::INFINITY;
    for rep in 0..reps {
        // Alternate which mode goes first so ordering effects (frequency
        // ramp, cache warmth) cancel across reps.
        let (q, a) = if rep % 2 == 0 {
            let q = measure_pair_loop(threads, duration, false);
            (q, measure_pair_loop(threads, duration, true))
        } else {
            let a = measure_pair_loop(threads, duration, true);
            (measure_pair_loop(threads, duration, false), a)
        };
        best_q = best_q.min(q);
        best_a = best_a.min(a);
        deltas.push((a - q) / q * 100.0);
    }
    // Each delta compares two back-to-back measurements, so slow machine
    // drift cancels inside the pair; the median then discards the reps a
    // preemption or frequency step landed in the middle of.
    let delta_pct = median(&mut deltas);
    println!(
        "  hit path  quiescent {best_q:>8.1} ns/pair   armed {best_a:>8.1} ns/pair   \
         median paired delta {delta_pct:+.2}%"
    );
    if delta_pct > max_delta {
        eprintln!(
            "idle_overhead: degradation machinery costs {delta_pct:.2}% on the idle hit \
             path (budget {max_delta}%)"
        );
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(arg: Option<String>, flag: &str) -> T {
    arg.and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a valid value"))
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN deltas"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// One measurement: `threads` workers doing alloc/free pairs on a shared
/// Prudence cache for `duration`; returns the best observed ns per pair.
///
/// Each worker times itself in 64-pair batches and keeps its fastest
/// batch. A batch (~10 µs) is far shorter than a scheduler timeslice, so
/// on oversubscribed machines (CI runners, 1-CPU containers) the fastest
/// batches run preemption-free: the minimum batch time measures the
/// uncontended hit-path cost, where throughput-over-wall-clock would
/// mostly measure the scheduler.
///
/// `armed` keeps the degradation machinery at its defaults; otherwise the
/// stall threshold and pressure watermarks are pushed out of reach, making
/// the machinery as quiescent as it can be without a rebuild.
fn measure_pair_loop(threads: usize, duration: Duration, armed: bool) -> f64 {
    // Both modes build byte-identical structures (same calls, same
    // allocations) so heap layout cannot differ between them — only the
    // threshold and watermark scalars do.
    let (threshold, soft, hard) = if armed {
        (Duration::from_millis(100), 4096, 16384)
    } else {
        (Duration::from_secs(3600), usize::MAX / 4, usize::MAX / 4)
    };
    let bed = Testbed::new_tuned(
        AllocatorKind::Prudence,
        threads,
        RcuConfig::linux_like().with_stall_threshold(threshold),
        None,
        None,
        None,
        Some(PrudenceConfig::new(threads).with_watermarks(soft, hard)),
        None,
    );
    // Registered (never pinned) readers: the watchdog scan on the driver
    // thread walks real records, as it would in a live system at idle.
    let readers: Vec<_> = (0..threads).map(|_| bed.rcu().register()).collect();
    let cache = bed.create_cache("idle-overhead", 512);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    const BATCH: u32 = 64;

    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut best = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    let batch_start = Instant::now();
                    for _ in 0..BATCH {
                        let obj = cache.allocate().expect("idle-overhead allocation");
                        // SAFETY: fresh exclusive object, freed exactly once.
                        unsafe {
                            obj.as_ptr().cast::<u64>().write(0xBEEF);
                            cache.free(obj);
                        }
                    }
                    best = best.min(batch_start.elapsed().as_nanos() as u64);
                }
                best
            })
        })
        .collect();

    barrier.wait();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let best = workers
        .into_iter()
        .map(|w| w.join().expect("idle-overhead worker panicked"))
        .min()
        .unwrap_or(u64::MAX);
    cache.quiesce();
    drop(readers);
    best as f64 / f64::from(BATCH)
}
