//! Ablations of the §4.2 design choices (DESIGN.md experiment index):
//! each Prudence optimization is disabled in turn and the deferred-pair
//! loop re-measured, quantifying what the latent cache, partial refill,
//! idle pre-flush, proportional flush, deferred-aware slab selection and
//! the 10-slab scan window each contribute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pbs_alloc_api::ObjectAllocator;
use prudence::PrudenceConfig;

fn variants() -> Vec<(&'static str, PrudenceConfig)> {
    let base = PrudenceConfig::new(2);
    vec![
        ("full", base.clone()),
        ("no_latent_cache", base.clone().with_latent_cache(false)),
        ("no_partial_refill", base.clone().with_partial_refill(false)),
        ("no_preflush", base.clone().with_preflush(false)),
        (
            "no_proportional_flush",
            base.clone().with_proportional_flush(false),
        ),
        (
            "no_deferred_selection",
            base.clone().with_deferred_aware_selection(false),
        ),
        ("scan_window_1", base.clone().with_slab_scan_window(1)),
        ("scan_window_100", base.with_slab_scan_window(100)),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_deferred_pairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, config) in variants() {
        let cache = pbs_bench::prudence_cache_with(config, 512);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new(name, 512), &(), |b, ()| {
            b.iter(|| pbs_bench::deferred_pair(cache.as_ref()));
        });
        cache.quiesce();
        let s = cache.stats();
        println!(
            "ablation {name}: refills={} flushes={} grows={} shrinks={} peak={} preflushes={} pre_movements={}",
            s.refills, s.flushes, s.grows, s.shrinks, s.slabs_peak, s.preflushes, s.pre_movements
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
