//! Figure 6: kmalloc/kfree_deferred pairs per second, SLUB vs Prudence,
//! across object sizes. Criterion reports time per pair; the paper's
//! pairs/second is its reciprocal. The paper's shape to look for: Prudence
//! is faster at every size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pbs_rcu::RcuConfig;
use pbs_workloads::{AllocatorKind, Testbed};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_deferred_pairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[128usize, 512, 1024, 4096] {
        for kind in AllocatorKind::BOTH {
            // One testbed per measurement so deferred backlogs never leak
            // between configurations.
            let bed = Testbed::new(kind, 2, RcuConfig::linux_like(), None);
            let cache = bed.create_cache("fig6", size);
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(
                BenchmarkId::new(kind.label(), size),
                &size,
                |b, _| {
                    b.iter(|| pbs_bench::deferred_pair(cache.as_ref()));
                },
            );
            cache.quiesce();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
