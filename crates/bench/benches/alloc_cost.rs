//! §3.3 cost table: cache-hit vs refill vs grow allocation regimes on the
//! baseline allocator. The paper reports refill ≈ 4× and grow ≈ 14× the
//! hit cost; the derived multiples are printed after the timed runs.

use criterion::{criterion_group, criterion_main, Criterion};

use pbs_rcu::RcuConfig;
use pbs_workloads::alloc_cost::measure_alloc_cost;
use pbs_workloads::{AllocatorKind, Testbed};

fn bench_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_cost_s33");
    group.sample_size(20);

    // Hit regime: steady alloc/free of one object.
    {
        let bed = Testbed::new(AllocatorKind::Slub, 1, RcuConfig::eager(), None);
        let cache = bed.create_cache("hit", 512);
        group.bench_function("hit_pair", |b| {
            b.iter(|| {
                let o = cache.allocate().expect("alloc");
                // SAFETY: freed exactly once, immediately.
                unsafe { cache.free(o) };
            });
        });
    }

    // Refill regime: cycle 2x the object cache through alloc/free.
    {
        let bed = Testbed::new(AllocatorKind::Slub, 1, RcuConfig::eager(), None);
        let cache = bed.create_cache("refill", 512);
        let batch = 2 * pbs_alloc_api::SizingPolicy::for_object_size(512).object_cache_size;
        let mut held = Vec::with_capacity(batch);
        group.bench_function("refill_cycle_per_obj", |b| {
            b.iter(|| {
                for _ in 0..batch {
                    held.push(cache.allocate().expect("alloc"));
                }
                for o in held.drain(..) {
                    // SAFETY: each held object freed once.
                    unsafe { cache.free(o) };
                }
            });
        });
    }

    group.finish();

    // The derived §3.3 table.
    let report = measure_alloc_cost(512, 200_000);
    println!("{}", report.render());
}

criterion_group!(benches, bench_regimes);
criterion_main!(benches);
