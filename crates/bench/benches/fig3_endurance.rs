//! Figure 3 (short form): update throughput and memory behaviour of the
//! endurance workload. The full 10-second memory curve (and the baseline
//! OOM) is produced by `cargo run --release -p pbs-workloads --bin
//! endurance`; here Criterion measures sustained update cost per
//! allocator, and the summary printed at the end records the memory
//! outcome of one short run each.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pbs_workloads::endurance::{run_endurance, EnduranceParams};
use pbs_workloads::AllocatorKind;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_endurance");
    group.sample_size(10);
    for kind in AllocatorKind::BOTH {
        group.bench_with_input(BenchmarkId::new(kind.label(), "burst"), &kind, |b, &kind| {
            b.iter_custom(|iters| {
                let params = EnduranceParams {
                    threads: 2,
                    list_entries: 64,
                    // Scale work with requested iterations, bounded so a
                    // sample stays sub-second.
                    duration: Duration::from_millis((iters * 20).clamp(100, 800)),
                    memory_limit: 96 << 20,
                    sample_interval: Duration::from_millis(10),
                    reclaim: None,
                };
                let start = std::time::Instant::now();
                let report = run_endurance(kind, &params);
                // Normalize: report time per requested iteration bundle.
                start.elapsed().div_f64((report.updates.max(1)) as f64) * iters as u32
            });
        });
    }
    group.finish();

    // Memory-shape summary (the actual Figure 3 claim).
    let params = EnduranceParams {
        threads: 2,
        list_entries: 64,
        duration: Duration::from_millis(1500),
        memory_limit: 8 << 20,
        sample_interval: Duration::from_millis(10),
        reclaim: None,
    };
    for kind in AllocatorKind::BOTH {
        let report = run_endurance(kind, &params);
        println!("fig3 summary: {}", report.render());
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
