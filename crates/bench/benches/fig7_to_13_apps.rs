//! Figures 7–13: the application benchmarks (Postmark, Netperf, Apache,
//! pgbench) on both allocators. Criterion measures transaction cost
//! (Figure 13's throughput is the reciprocal); the per-cache attribute
//! tables (Figures 7–11) and deferred-free mix (Figure 12) are printed
//! after the timed runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pbs_workloads::apps::{compare, run_apache, run_netperf, run_pgbench, run_postmark, AppParams};
use pbs_workloads::AllocatorKind;

fn bench_params() -> AppParams {
    AppParams {
        threads: 2,
        transactions_per_thread: 2_000,
        pool_size: 50,
        seed: 0x5EED,
    }
}

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_apps");
    group.sample_size(10);
    type Runner = fn(AllocatorKind, &AppParams) -> pbs_workloads::AppResult;
    for (name, runner) in [
        ("postmark", run_postmark as Runner),
        ("netperf", run_netperf as Runner),
        ("apache", run_apache as Runner),
        ("pgbench", run_pgbench as Runner),
    ] {
        for kind in AllocatorKind::BOTH {
            group.bench_with_input(BenchmarkId::new(name, kind.label()), &kind, |b, &kind| {
                b.iter_custom(|iters| {
                    let params = AppParams {
                        transactions_per_thread: 500 * iters.clamp(1, 8),
                        ..bench_params()
                    };
                    let result = runner(kind, &params);
                    std::time::Duration::from_secs_f64(result.seconds)
                        .div_f64(result.ops.max(1) as f64)
                        * (iters as u32)
                });
            });
        }
    }
    group.finish();

    // Per-cache attribute tables (Figures 7-12).
    for name in ["postmark", "netperf", "apache", "pgbench"] {
        let cmp = compare(name, &bench_params());
        println!("{}", cmp.render());
    }
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
