//! The baseline slab cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use pbs_alloc_api::slab_layout::resolve_slab_index;
use pbs_alloc_api::{
    AllocError, CacheStats, CacheStatsSnapshot, CpuRegistry, ListKind, ObjPtr, ObjectAllocator,
    RawSlab, SizingPolicy, SlabLists,
};
use pbs_mem::PageAllocator;
use pbs_percpu::{FastCache, FastPop, FastPush};
use pbs_rcu::reclaim::{DomainHandle, EpochDomain, ReclaimClient, ReclamationDomain};
use pbs_rcu::Rcu;
use pbs_telemetry::EventKind;

/// Per-node slab bookkeeping, guarded by one lock (the "node list lock"
/// whose contention the paper discusses in §3.1).
#[derive(Debug, Default)]
struct Node {
    slabs: Vec<Option<RawSlab>>,
    free_slots: Vec<usize>,
    lists: SlabLists,
    next_color: usize,
}

impl Node {
    fn slab_mut(&mut self, index: usize) -> &mut RawSlab {
        self.slabs[index].as_mut().expect("live slab index")
    }
}

/// Spin budget on a busy home slot before trying neighbours; matches the
/// Prudence cache's fast-path policy so the comparison stays fair.
const SLOT_SPIN: usize = 24;

/// Degradation knobs for the baseline cache.
///
/// The defaults match the Prudence cache's (`PrudenceConfig`) so the
/// hardened comparison stays fair. Setting `oom_retries` to zero disables
/// the recovery ladder entirely, reproducing the paper's unhardened
/// baseline that reports out-of-memory on the first slab-grow failure —
/// the endurance experiment (Figure 3) pins that configuration.
#[derive(Debug, Clone)]
pub struct SlubTuning {
    /// Deferred-backlog soft watermark (pressure level 1: expedite GPs).
    pub soft_watermark: usize,
    /// Deferred-backlog hard watermark (pressure level 2: freeing threads
    /// assist reclaim).
    pub hard_watermark: usize,
    /// Recovery-ladder rungs to climb before reporting OOM; zero turns
    /// the ladder off.
    pub oom_retries: usize,
    /// Route the alloc/free hit paths through the per-CPU fast path
    /// (`pbs-percpu`), matching the Prudence cache so comparisons stay
    /// fair. Disabling builds the cache without fast-path slots.
    pub fastpath: bool,
}

impl Default for SlubTuning {
    fn default() -> Self {
        Self {
            soft_watermark: 4096,
            hard_watermark: 16384,
            oom_retries: 4,
            fastpath: true,
        }
    }
}

/// A SLUB-style slab cache for fixed-size objects.
///
/// See the [crate-level documentation](crate) for the role this type plays
/// in the reproduction and an example.
pub struct SlubCache {
    name: String,
    policy: SizingPolicy,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
    cpus: CpuRegistry,
    /// Per-CPU object caches, cache-padded so neighbouring slots (and
    /// their lock words) never share a line.
    cpu_caches: Vec<CachePadded<Mutex<Vec<ObjPtr>>>>,
    /// Per-CPU zero-atomic hit path in front of the slot-locked caches;
    /// only immediately-reusable objects park here.
    fast: FastCache,
    node: Mutex<Node>,
    stats: CacheStats,
    /// Objects handed to `free_deferred` whose RCU callback has not yet
    /// returned them to a CPU cache.
    deferred_pending: AtomicUsize,
    /// Degradation knobs (watermarks normalised so soft ≤ hard).
    tuning: SlubTuning,
    weak_self: Weak<SlubCache>,
    /// The attached reclamation domain. Set once right after construction
    /// (the handle needs this cache's `Weak`); the epoch backend keeps
    /// the baseline's `call_rcu` path byte-for-byte, robust backends
    /// divert deferred objects into the domain.
    reclaim: std::sync::OnceLock<DomainHandle>,
}

impl std::fmt::Debug for SlubCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlubCache")
            .field("name", &self.name)
            .field("object_size", &self.policy.object_size)
            .finish()
    }
}

impl SlubCache {
    /// Creates a cache for `object_size`-byte objects with `ncpus` per-CPU
    /// object caches, growing from `pages` and deferring frees through
    /// `rcu`.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is zero or too large for the maximum slab
    /// order, or `ncpus` is zero.
    pub fn new(
        name: &str,
        object_size: usize,
        ncpus: usize,
        pages: Arc<PageAllocator>,
        rcu: Arc<Rcu>,
    ) -> Arc<Self> {
        Self::with_tuning(name, object_size, ncpus, SlubTuning::default(), pages, rcu)
    }

    /// Like [`new`](Self::new) with explicit degradation knobs. The hard
    /// watermark is clamped to at least the soft one so the pressure
    /// levels stay ordered.
    pub fn with_tuning(
        name: &str,
        object_size: usize,
        ncpus: usize,
        tuning: SlubTuning,
        pages: Arc<PageAllocator>,
        rcu: Arc<Rcu>,
    ) -> Arc<Self> {
        let domain: Arc<dyn ReclamationDomain> = Arc::new(EpochDomain::new(rcu));
        Self::with_domain(name, object_size, ncpus, tuning, pages, domain)
    }

    /// Like [`with_tuning`](Self::with_tuning), but integrated with an
    /// explicit [`ReclamationDomain`] instead of the default epoch
    /// backend. With a robust backend (`hp`/`hyaline`) deferred frees
    /// bypass `call_rcu` and route through the domain; with the epoch
    /// backend the cache behaves exactly like the baseline.
    pub fn with_domain(
        name: &str,
        object_size: usize,
        ncpus: usize,
        mut tuning: SlubTuning,
        pages: Arc<PageAllocator>,
        domain: Arc<dyn ReclamationDomain>,
    ) -> Arc<Self> {
        let rcu = Arc::clone(domain.rcu());
        let policy = SizingPolicy::for_object_size(object_size);
        tuning.soft_watermark = tuning.soft_watermark.max(1);
        tuning.hard_watermark = tuning.hard_watermark.max(tuning.soft_watermark);
        let fast_cap = if tuning.fastpath && !pbs_percpu::env_disabled() {
            policy.object_cache_size
        } else {
            0
        };
        let cache = Arc::new_cyclic(|weak_self| Self {
            name: name.to_owned(),
            policy,
            pages,
            rcu,
            cpus: CpuRegistry::new(ncpus),
            cpu_caches: (0..ncpus)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
            fast: FastCache::with_slots(fast_cap, ncpus),
            node: Mutex::new(Node::default()),
            stats: CacheStats::new(ncpus),
            deferred_pending: AtomicUsize::new(0),
            tuning,
            weak_self: weak_self.clone(),
            reclaim: std::sync::OnceLock::new(),
        });
        let weak = cache.weak_self.clone() as Weak<dyn ReclaimClient>;
        let _ = cache.reclaim.set(DomainHandle::attach(domain, weak));
        cache.record_fastpath_engine(fast_cap);
        cache
    }

    /// The domain attachment (set once during construction).
    fn hook(&self) -> &DomainHandle {
        self.reclaim.get().expect("domain attached at construction")
    }

    /// The reclamation domain this cache is attached to.
    pub fn reclaim_domain(&self) -> &Arc<dyn ReclamationDomain> {
        &self.hook().domain
    }

    /// The sizing policy in effect (shared with Prudence for fairness).
    pub fn policy(&self) -> &SizingPolicy {
        &self.policy
    }

    /// Locks the node list, counting contention for the statistics.
    fn lock_node(&self) -> MutexGuard<'_, Node> {
        if let Some(guard) = self.node.try_lock() {
            return guard;
        }
        // Acquire first, count after: recording between the failed
        // try_lock and the blocking acquire would let a relock race
        // double-count one contention event, and the counter bump below is
        // single-writer precisely because the node lock is already held.
        let guard = self.node.lock();
        self.stats.shard(0).node_lock_contended.bump();
        guard
    }

    /// Acquires a per-CPU slot for the hot paths: try the home slot, spin
    /// briefly on contention, steal any other free slot, then block.
    /// Returns the index actually locked so callers attribute stats to
    /// the right shard.
    fn lock_cpu(&self) -> (usize, MutexGuard<'_, Vec<ObjPtr>>) {
        let home = self.cpus.current_cpu().0;
        if let Some(guard) = self.cpu_caches[home].try_lock() {
            return (home, guard);
        }
        self.stats.shard(home).cpu_slot_misses.add_contended(1);
        // Time the slow path only; the fast path above stays clock-free.
        let t0 = if pbs_telemetry::enabled() {
            pbs_telemetry::now_nanos()
        } else {
            0
        };
        let acquired = self.lock_cpu_slow(home);
        if t0 != 0 {
            self.stats
                .slot_wait_ns
                .record(pbs_telemetry::now_nanos().saturating_sub(t0));
        }
        acquired
    }

    /// Contended continuation of [`lock_cpu`](Self::lock_cpu).
    fn lock_cpu_slow(&self, home: usize) -> (usize, MutexGuard<'_, Vec<ObjPtr>>) {
        for _ in 0..SLOT_SPIN {
            std::hint::spin_loop();
            if let Some(guard) = self.cpu_caches[home].try_lock() {
                return (home, guard);
            }
        }
        let n = self.cpu_caches.len();
        for offset in 1..n {
            let idx = (home + offset) % n;
            if let Some(guard) = self.cpu_caches[idx].try_lock() {
                return (idx, guard);
            }
        }
        (home, self.cpu_caches[home].lock())
    }

    /// Refills a CPU object cache from node slabs, growing if needed, and
    /// returns the object the caller asked for.
    ///
    /// `Ok` carries an object out of the refilled cache, so the caller
    /// never has to pop-and-hope; every failure — including injected
    /// page-allocator faults — surfaces as `Err`, never a panic, and the
    /// `parking_lot` locks held here cannot be poisoned by an unwind.
    fn refill(&self, cpu_idx: usize, cache: &mut Vec<ObjPtr>) -> Result<ObjPtr, AllocError> {
        // Fault hook: an injected `fastpath.disable` flips the per-CPU
        // fast path live (drain-on-disable), so chaos runs exercise the
        // switchover under load. Consulted before any node lock: the
        // toggle takes it internally.
        if let Some(faults) = self.pages.faults() {
            if faults.should_fail(pbs_fault::site::FASTPATH_DISABLE) {
                self.fastpath_set_enabled(!self.fast.is_enabled());
            }
        }
        self.stats.shard(cpu_idx).refills.bump();
        let want = self.policy.object_cache_size;
        let mut node = self.lock_node();
        let mut remaining = want;
        while remaining > 0 {
            // SLUB picks the first partial slab, then free slabs, then
            // grows.
            let slab_index = match node
                .lists
                .first(ListKind::Partial)
                .or_else(|| node.lists.first(ListKind::Free))
            {
                Some(index) => index,
                None => match self.grow(&mut node) {
                    Ok(index) => index,
                    // Out of pages: partial refills are still usable.
                    Err(_) if !cache.is_empty() => break,
                    Err(e) => return Err(e.into()),
                },
            };
            let slab = node.slab_mut(slab_index);
            remaining -= slab.take(remaining, cache);
            let kind = if node.slabs[slab_index].as_ref().expect("live slab").is_full() {
                ListKind::Full
            } else {
                ListKind::Partial
            };
            node.lists.move_to(slab_index, kind);
        }
        match cache.pop() {
            Some(obj) => Ok(obj),
            None => Err(AllocError::OutOfMemory),
        }
    }

    /// Allocates a new slab from the page allocator.
    fn grow(&self, node: &mut Node) -> Result<usize, pbs_mem::OutOfMemory> {
        let block = self.pages.allocate_aligned_at(
            self.policy.slab_bytes,
            self.policy.slab_bytes,
            pbs_fault::site::SLUB_GROW,
        )?;
        let index = node.free_slots.pop().unwrap_or(node.slabs.len());
        let color = node.next_color;
        node.next_color = node.next_color.wrapping_add(1);
        let slab = RawSlab::new(block, &self.policy, index, color);
        if index == node.slabs.len() {
            node.slabs.push(Some(slab));
        } else {
            node.slabs[index] = Some(slab);
        }
        node.lists.insert(index, ListKind::Free);
        self.stats.record_grow();
        Ok(index)
    }

    /// Flushes the overflowing half of a CPU cache back to slabs, then
    /// shrinks if too many slabs became free.
    fn flush(&self, cpu_idx: usize, cache: &mut Vec<ObjPtr>) {
        self.stats.shard(cpu_idx).flushes.bump();
        let keep = self.policy.object_cache_size / 2;
        let excess: Vec<ObjPtr> = cache.drain(..cache.len().saturating_sub(keep)).collect();
        self.give_back_to_slabs(excess);
    }

    /// Returns free objects to their slabs under the node lock, then
    /// shrinks if too many slabs became free.
    fn give_back_to_slabs(&self, objs: Vec<ObjPtr>) {
        let mut node = self.lock_node();
        for obj in objs {
            // SAFETY: the object came from this cache (callers only pass
            // pointers previously handed to `free`), and the node lock is
            // held.
            let slab_index = unsafe { resolve_slab_index(obj, self.policy.slab_bytes) };
            let slab = node.slab_mut(slab_index);
            slab.give_back(obj);
            let kind = if slab.is_free() {
                ListKind::Free
            } else {
                ListKind::Partial
            };
            node.lists.move_to(slab_index, kind);
        }
        self.shrink(&mut node);
    }

    /// Wire code of the fast path's current engine for trace payloads:
    /// 1 = rseq, 2 = slot-lock emulation.
    fn fastpath_engine_code(&self) -> u64 {
        match self.fast.engine() {
            pbs_percpu::Engine::Rseq => 1,
            pbs_percpu::Engine::Locks => 2,
        }
    }

    /// Traces the engine the fast path selected at construction (`a` =
    /// engine code, 0 when built without a fast path; `b` = per-CPU slot
    /// capacity). Runs before the cache is shared, so the node lane has
    /// no other writer yet.
    fn record_fastpath_engine(&self, cap: usize) {
        let code = if cap == 0 {
            0
        } else {
            self.fastpath_engine_code()
        };
        self.stats
            .record_node_event(EventKind::FastpathEngine, code, cap as u64);
    }

    /// Returns fast-drained object addresses to their slabs and traces
    /// the drain. `disabling` distinguishes a toggle-off drain from a
    /// quiesce/OOM flush in the event payload.
    fn give_back_fast(&self, addrs: Vec<usize>, disabling: bool) {
        if addrs.is_empty() {
            return;
        }
        let n = addrs.len() as u64;
        let objs: Vec<ObjPtr> = addrs
            .into_iter()
            // SAFETY: only pointers minted by this cache's `allocate` are
            // pushed onto the fast path, each drained exactly once.
            .map(|addr| {
                ObjPtr::new(unsafe { std::ptr::NonNull::new_unchecked(addr as *mut u8) })
            })
            .collect();
        self.give_back_to_slabs(objs);
        let _node = self.lock_node();
        self.stats
            .record_node_event(EventKind::FastpathDrain, n, disabling as u64);
    }

    /// Drains fast-parked objects to their slabs (quiesce/OOM paths).
    /// The fast path stays enabled and refills organically afterwards.
    fn flush_fastpath(&self) {
        self.give_back_fast(self.fast.drain(), false);
    }

    /// Attributes a successful allocation that needed the OOM ladder to
    /// the rung that unblocked it (`attempts` = ladder entries so far; 0 =
    /// the fast path, nothing to record). Caller holds the `cpu_idx` slot
    /// lock, which owns that trace lane.
    fn record_oom_recovery(&self, cpu_idx: usize, attempts: usize) {
        if attempts == 0 {
            return;
        }
        let stage = attempts.min(3);
        self.stats.record_oom_recovery(stage);
        self.stats.ring.record(
            cpu_idx,
            EventKind::OomRecovery,
            self.stats.id(),
            stage as u64,
            1,
        );
    }

    /// One rung of the staged OOM recovery ladder; the baseline's analogue
    /// of the Prudence cache's ladder so degradation behaviour is
    /// comparable. Every entry counts as an `oom_wait`.
    fn run_recovery_stage(&self, attempt: usize) {
        self.stats.oom_waits.fetch_add(1, Ordering::Relaxed);
        match attempt {
            // Stage 1: consolidate every CPU cache back into slabs — free
            // objects parked on other slots become refillable without any
            // grace-period wait.
            1 => self.oom_flush_cpu_caches(),
            // Stage 2: drive the grace period (expedited) and give the
            // reclaimer threads a bounded window to run the callbacks that
            // hand deferred objects back.
            2 => self.await_deferred_drain(true),
            // Stage 3+: the backlog is waiting on something slower; back
            // off, then wait out a full (non-expedited) grace period.
            n => {
                let shift = (n - 3).min(4) as u32;
                std::thread::sleep(std::time::Duration::from_micros(50 << shift));
                self.await_deferred_drain(false);
            }
        }
    }

    /// Ladder stage 1: drain every CPU cache to its slabs.
    fn oom_flush_cpu_caches(&self) {
        self.flush_fastpath();
        for (cpu_idx, slot) in self.cpu_caches.iter().enumerate() {
            let mut cache = slot.lock();
            if cache.is_empty() {
                continue;
            }
            self.stats.shard(cpu_idx).flushes.bump();
            let objs: Vec<ObjPtr> = cache.drain(..).collect();
            drop(cache);
            self.give_back_to_slabs(objs);
        }
    }

    /// Ladder stages 2/3: complete a grace period, then give the domain's
    /// reclaimer threads a bounded window to return deferred objects
    /// (unlike Prudence, the baseline cannot merge them itself — they only
    /// come back through RCU callbacks).
    fn await_deferred_drain(&self, expedited: bool) {
        let before = self.deferred_pending.load(Ordering::Relaxed);
        let hook = self.hook();
        if hook.robust {
            // Robust backends deliver synchronously from the drain; no
            // reclaimer-thread window needed afterwards.
            if expedited {
                hook.domain.synchronize_expedited();
            } else {
                hook.domain.synchronize();
            }
            return;
        }
        if expedited {
            self.rcu.synchronize_expedited();
        } else {
            self.rcu.synchronize();
        }
        for _ in 0..64 {
            if self.deferred_pending.load(Ordering::Relaxed) < before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Returns free slabs beyond the threshold to the page allocator.
    fn shrink(&self, node: &mut Node) {
        while node.lists.len(ListKind::Free) > self.policy.free_slabs_limit {
            let index = node
                .lists
                .first(ListKind::Free)
                .expect("free list non-empty");
            node.lists.remove(index);
            let slab = node.slabs[index].take().expect("live slab index");
            debug_assert!(slab.is_free());
            node.free_slots.push(index);
            self.pages.free_pages(slab.into_block());
            self.stats.record_shrink();
        }
    }

    /// Returns an object to this allocator (common tail of immediate frees
    /// and RCU callbacks). `count_free` bumps the free counters under the
    /// slot lock (immediate frees); the deferred path already counted at
    /// defer time.
    fn release(&self, obj: ObjPtr, count_free: bool) {
        // Zero-atomic fast path for immediate frees: park the object in
        // this CPU's slot (its stats fold in at snapshot time). Deferred
        // callbacks skip it — they must run the pressure bookkeeping
        // below under the slot lock anyway.
        if count_free {
            if let FastPush::Pushed = self.fast.push(obj.addr()) {
                return;
            }
        }
        let (cpu_idx, mut cache) = self.lock_cpu();
        if count_free {
            let shard = self.stats.shard(cpu_idx);
            shard.frees.bump();
            shard.live_delta.bump_sub();
        } else {
            // RCU callback returning a deferred object: this is the moment
            // the baseline makes it reusable. Slot lock held → lane owned.
            // Credit site attribution here so both return routes (direct
            // `call_rcu` and domain delivery) close the defer stamp.
            pbs_telemetry::site::note_reclaimed(obj.addr());
            let prev = self.deferred_pending.fetch_sub(1, Ordering::Relaxed);
            // Downward pressure transitions happen here as the backlog
            // drains (gauge/counter only; the defer path owns the event).
            self.stats.update_pressure(
                prev.saturating_sub(1),
                self.tuning.soft_watermark,
                self.tuning.hard_watermark,
            );
            self.stats.ring.record(
                cpu_idx,
                EventKind::DeferredReusable,
                self.stats.id(),
                obj.addr() as u64,
                0,
            );
        }
        cache.push(obj);
        if cache.len() > self.policy.object_cache_size {
            self.flush(cpu_idx, &mut cache);
        }
    }
}

impl ReclaimClient for SlubCache {
    /// Domain delivery: each address re-enters through the deferred
    /// release path (`release(obj, false)`), which owns the pending-count
    /// and pressure bookkeeping. Runs with no domain locks held and never
    /// re-enters the domain.
    fn reclaim_addrs(&self, addrs: &[usize]) {
        for &addr in addrs {
            // SAFETY: the domain only returns addresses this cache
            // deferred into it, each exactly once.
            let obj = ObjPtr::new(unsafe { std::ptr::NonNull::new_unchecked(addr as *mut u8) });
            self.release(obj, false);
        }
    }
}

impl ObjectAllocator for SlubCache {
    fn allocate(&self) -> Result<ObjPtr, AllocError> {
        if let FastPop::Hit(addr) = self.fast.pop() {
            // SAFETY: fast-parked addresses originate from `free` on this
            // cache, each handed out exactly once by the commit protocol.
            return Ok(ObjPtr::new(unsafe {
                std::ptr::NonNull::new_unchecked(addr as *mut u8)
            }));
        }
        let mut attempts = 0;
        let mut counted_request = false;
        loop {
            let (cpu_idx, mut cache) = self.lock_cpu();
            // Shard bumps are single-writer: this thread holds the matching
            // slot lock.
            let shard = self.stats.shard(cpu_idx);
            if !counted_request {
                shard.alloc_requests.bump();
                counted_request = true;
            }
            if let Some(obj) = cache.pop() {
                shard.cache_hits.bump();
                shard.live_delta.bump_add();
                self.record_oom_recovery(cpu_idx, attempts);
                return Ok(obj);
            }
            match self.refill(cpu_idx, &mut cache) {
                Ok(obj) => {
                    shard.live_delta.bump_add();
                    self.record_oom_recovery(cpu_idx, attempts);
                    return Ok(obj);
                }
                Err(e) => {
                    // Recover via the ladder while deferred objects remain;
                    // release the slot lock first so frees can progress.
                    drop(cache);
                    if attempts >= self.tuning.oom_retries
                        || self.deferred_pending.load(Ordering::Relaxed) == 0
                    {
                        return Err(e);
                    }
                    attempts += 1;
                    self.run_recovery_stage(attempts);
                }
            }
        }
    }

    unsafe fn free(&self, obj: ObjPtr) {
        self.release(obj, true);
    }

    unsafe fn free_deferred(&self, obj: ObjPtr) {
        if pbs_telemetry::enabled() {
            // Attribute the garbage to the freeing call site before any
            // defer machinery runs (a robust defer may reclaim on this
            // stack); the domain-layer fallback stamp is a no-op after
            // this one.
            let hook = self.hook();
            pbs_telemetry::site::note_deferred(
                obj.addr(),
                pbs_telemetry::site::intern(std::panic::Location::caller()),
                self.policy.object_size,
                pbs_telemetry::site::backend_index(hook.domain.backend().label()),
            );
        }
        // Bump under the slot lock (matching the Prudence cache):
        // `live_delta` is a single-writer counter also updated by the
        // locked alloc/free paths with plain load+store pairs, so a
        // lock-free fetch_add here could land between a holder's load and
        // store and be silently overwritten. The lock is dropped before
        // the `call_rcu` box allocation below.
        let transition;
        {
            let (cpu_idx, _cache) = self.lock_cpu();
            let shard = self.stats.shard(cpu_idx);
            shard.deferred_frees.bump();
            shard.live_delta.bump_sub();
            let outstanding = self.deferred_pending.fetch_add(1, Ordering::Relaxed) + 1;
            transition = self.stats.update_pressure(
                outstanding,
                self.tuning.soft_watermark,
                self.tuning.hard_watermark,
            );
            self.stats.ring.record(
                cpu_idx,
                EventKind::DeferredFree,
                self.stats.id(),
                obj.addr() as u64,
                0,
            );
            if let Some((_, to)) = transition {
                self.stats.ring.record(
                    cpu_idx,
                    EventKind::PressureChange,
                    self.stats.id(),
                    to as u64,
                    outstanding as u64,
                );
            }
        }
        let hook = self.hook();
        if hook.robust {
            // Robust backends own the backlog: the object enters the
            // domain and comes back through `reclaim_addrs` →
            // `release(obj, false)` once proven unreachable.
            hook.domain.defer(hook.client, obj.addr());
        } else {
            // The baseline behaviour under test: the allocator registers an
            // RCU callback and the object stays invisible to it until
            // background reclaim runs the callback. The callback holds only
            // a weak reference — a strong one would cycle through the RCU
            // queues and keep cache and domain alive forever. If the cache
            // is gone by the time the callback runs, its slabs (and the
            // object) were already returned wholesale, so dropping the
            // pointer is correct.
            let weak = self.weak_self.clone();
            self.rcu.call_rcu(Box::new(move || {
                if let Some(cache) = weak.upgrade() {
                    cache.release(obj, false);
                }
            }));
        }
        // Backpressure, with no locks held. An upward transition nudges
        // the reclamation machinery once; at the hard level every freeing
        // thread drives it and yields — for the epoch backend that means
        // getting the RCU callbacks runnable and ceding the CPU to the
        // reclaimers, for robust backends one bounded scan/seal step.
        if let Some((from, to)) = transition {
            if to > from {
                hook.domain.expedite();
            }
        }
        if self.stats.pressure_level.load(Ordering::Relaxed) >= 2 {
            self.stats.assisted_merges.fetch_add(1, Ordering::Relaxed);
            if hook.robust {
                hook.domain.advance();
            } else {
                self.rcu.expedite();
            }
            std::thread::yield_now();
        }
    }

    fn object_size(&self) -> usize {
        self.policy.object_size
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    fn reclaim_domain(&self) -> Option<&Arc<dyn ReclamationDomain>> {
        Some(SlubCache::reclaim_domain(self))
    }

    fn stats(&self) -> CacheStatsSnapshot {
        self.stats.snapshot_with_fastpath(
            self.policy.object_size,
            self.policy.slab_bytes,
            &self.fast.snapshot(),
        )
    }

    fn telemetry(&self) -> pbs_telemetry::ComponentTelemetry {
        self.stats.telemetry()
    }

    fn quiesce(&self) {
        // Park nothing across a quiesce: fast-cached objects go back to
        // their slabs so peak/fragmentation measurements stay comparable.
        self.flush_fastpath();
        let hook = self.hook();
        if hook.robust {
            hook.domain.synchronize();
        } else {
            self.rcu.barrier();
        }
    }

    fn deferred_outstanding(&self) -> usize {
        self.deferred_pending.load(Ordering::Relaxed)
    }

    fn fastpath_set_enabled(&self, enabled: bool) {
        let drained = self.fast.set_enabled(enabled);
        self.give_back_fast(drained, true);
        let _node = self.lock_node();
        self.stats.record_node_event(
            EventKind::FastpathToggle,
            self.fast.is_enabled() as u64,
            self.fastpath_engine_code(),
        );
    }

    fn fastpath_enabled(&self) -> bool {
        self.fast.is_enabled()
    }

    fn fastpath_set_engine(&self, engine: pbs_percpu::Engine) {
        self.fast.set_engine(engine);
        let _node = self.lock_node();
        self.stats.record_node_event(
            EventKind::FastpathToggle,
            self.fast.is_enabled() as u64,
            self.fastpath_engine_code(),
        );
    }
}

impl Drop for SlubCache {
    fn drop(&mut self) {
        // Return every slab's pages. Objects still live at this point are
        // the owner's responsibility; their memory goes away with the slab.
        let mut node = self.node.lock();
        for slab in node.slabs.drain(..).flatten() {
            self.pages.free_pages(slab.into_block());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: usize) -> (Arc<SlubCache>, Arc<PageAllocator>, Arc<Rcu>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let c = SlubCache::new("t", size, 2, Arc::clone(&pages), Arc::clone(&rcu));
        (c, pages, rcu)
    }

    #[test]
    fn allocate_free_roundtrip() {
        let (c, _p, _r) = cache(64);
        let a = c.allocate().unwrap();
        let b = c.allocate().unwrap();
        assert_ne!(a, b);
        unsafe {
            c.free(a);
            c.free(b);
        }
        let s = c.stats();
        assert_eq!(s.alloc_requests, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.live_objects, 0);
    }

    #[test]
    fn first_allocation_misses_then_hits() {
        let (c, _p, _r) = cache(64);
        let a = c.allocate().unwrap();
        let b = c.allocate().unwrap();
        let s = c.stats();
        assert_eq!(s.refills, 1);
        assert_eq!(s.cache_hits, 1); // second alloc served from the refill
        unsafe {
            c.free(a);
            c.free(b);
        }
    }

    #[test]
    fn objects_are_writable_and_distinct() {
        let (c, _p, _r) = cache(128);
        let objs: Vec<ObjPtr> = (0..50).map(|_| c.allocate().unwrap()).collect();
        for (i, o) in objs.iter().enumerate() {
            unsafe { o.as_ptr().cast::<u64>().write(i as u64) };
        }
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(unsafe { o.as_ptr().cast::<u64>().read() }, i as u64);
        }
        for o in objs {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn grow_and_shrink_cycle() {
        let (c, pages, _r) = cache(512);
        let per_slab = c.policy().objects_per_slab;
        let objs: Vec<ObjPtr> = (0..per_slab * 20).map(|_| c.allocate().unwrap()).collect();
        assert!(c.stats().grows >= 20);
        assert!(pages.used_bytes() > 0);
        for o in objs {
            unsafe { c.free(o) };
        }
        let s = c.stats();
        assert!(s.shrinks > 0, "freeing everything should shrink: {s:?}");
        // Slabs still referenced by per-CPU caches (slot-locked and
        // fast-path slots) stay partial; everything beyond those plus the
        // free-slab threshold must have shrunk.
        let cpu_cached_slabs =
            (2 * c.policy().object_cache_size).div_ceil(c.policy().objects_per_slab);
        let fast_cached_slabs = (pbs_percpu::nslots() * c.policy().object_cache_size)
            .div_ceil(c.policy().objects_per_slab);
        assert!(
            s.slabs_current
                <= c.policy().free_slabs_limit + cpu_cached_slabs + fast_cached_slabs + 1,
            "retained too many slabs: {s:?}"
        );
    }

    #[test]
    fn deferred_free_goes_through_rcu() {
        let (c, _p, rcu) = cache(256);
        let objs: Vec<ObjPtr> = (0..10).map(|_| c.allocate().unwrap()).collect();
        for o in objs {
            unsafe { c.free_deferred(o) };
        }
        assert_eq!(c.stats().deferred_frees, 10);
        c.quiesce();
        assert_eq!(rcu.callback_backlog(), 0);
        // After quiesce the objects are reusable: allocate again without
        // growing further.
        let grows_before = c.stats().grows;
        let again: Vec<ObjPtr> = (0..10).map(|_| c.allocate().unwrap()).collect();
        assert_eq!(c.stats().grows, grows_before);
        for o in again {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn deferred_objects_not_reused_before_grace_period() {
        // With a reader pinned, deferred objects must not come back from
        // allocate() (their memory could still be read).
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let c = SlubCache::new("t", 64, 1, pages, Arc::clone(&rcu));
        let reader = rcu.register();

        let a = c.allocate().unwrap();
        let guard = reader.read_lock();
        unsafe { c.free_deferred(a) };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Drain the cpu cache worth of allocations; none may equal `a`.
        let objs: Vec<ObjPtr> = (0..c.policy().object_cache_size * 2)
            .map(|_| c.allocate().unwrap())
            .collect();
        assert!(objs.iter().all(|&o| o != a), "deferred object reused early");
        drop(guard);
        for o in objs {
            unsafe { c.free(o) };
        }
        c.quiesce();
    }

    #[test]
    fn concurrent_alloc_free_stress() {
        let (c, _p, _r) = cache(64);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..5_000 {
                        held.push(c.allocate().unwrap());
                        if i % 3 == 0 {
                            if let Some(o) = held.pop() {
                                unsafe { c.free(o) };
                            }
                        }
                        if held.len() > 100 {
                            for o in held.drain(..) {
                                unsafe { c.free(o) };
                            }
                        }
                    }
                    for o in held {
                        unsafe { c.free(o) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.stats().live_objects, 0);
    }

    #[test]
    fn oom_propagates() {
        let pages = Arc::new(PageAllocator::builder().limit_bytes(8 * 4096).build());
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let c = SlubCache::new("t", 2048, 1, pages, rcu);
        let mut objs = Vec::new();
        let err = loop {
            match c.allocate() {
                Ok(o) => objs.push(o),
                Err(e) => break e,
            }
        };
        assert_eq!(err, AllocError::OutOfMemory);
        for o in objs {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn deferred_outstanding_drains_on_quiesce() {
        let (c, _p, _r) = cache(64);
        assert_eq!(c.deferred_outstanding(), 0);
        let objs: Vec<ObjPtr> = (0..10).map(|_| c.allocate().unwrap()).collect();
        for o in objs {
            unsafe { c.free_deferred(o) };
        }
        assert_eq!(c.deferred_outstanding(), 10);
        c.quiesce();
        assert_eq!(c.deferred_outstanding(), 0);
    }

    #[test]
    fn injected_grow_fault_propagates_as_err() {
        use pbs_fault::{site, FaultInjector, Schedule};
        let faults = Arc::new(FaultInjector::new(1));
        faults.schedule(site::SLUB_GROW, Schedule::EveryKth(1));
        let pages = Arc::new(
            PageAllocator::builder()
                .fault_injector(Arc::clone(&faults))
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let c = SlubCache::new("t", 64, 1, pages, rcu);
        // A fresh cache has nothing cached, so the very first allocation
        // must reach grow, hit the blackout, and report OOM — not panic.
        assert_eq!(c.allocate(), Err(AllocError::OutOfMemory));
        assert!(faults.injected(site::SLUB_GROW) >= 1);
        assert_eq!(c.stats().live_objects, 0);
    }

    #[test]
    fn pressure_gauge_rises_and_falls() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let tuning = SlubTuning {
            soft_watermark: 4,
            hard_watermark: 8,
            ..SlubTuning::default()
        };
        let c = SlubCache::with_tuning("t", 64, 1, tuning, pages, Arc::clone(&rcu));
        let reader = rcu.register();
        let objs: Vec<ObjPtr> = (0..16).map(|_| c.allocate().unwrap()).collect();
        // Pin a reader so callbacks cannot drain the backlog mid-test.
        let guard = reader.read_lock();
        for &o in &objs {
            unsafe { c.free_deferred(o) };
        }
        let s = c.stats();
        assert_eq!(s.pressure_level, 2, "hard watermark crossed: {s:?}");
        assert!(s.pressure_transitions >= 2, "0→1→2 expected: {s:?}");
        assert!(
            s.assisted_merges >= 1,
            "hard-level frees must assist: {s:?}"
        );
        assert!(
            c.telemetry()
                .count_of(pbs_telemetry::EventKind::PressureChange)
                >= 2,
            "transitions should be traced"
        );
        drop(guard);
        c.quiesce();
        let s = c.stats();
        assert_eq!(s.pressure_level, 0, "gauge returns to nominal: {s:?}");
        assert_eq!(c.deferred_outstanding(), 0);
    }

    #[test]
    fn oom_ladder_recovers_deferred_backlog() {
        // Page budget fits ~4 slabs; with everything deferred the baseline
        // would OOM unless the ladder drives a grace period and lets the
        // callbacks hand objects back.
        let policy = SizingPolicy::for_object_size(512);
        let pages = Arc::new(
            PageAllocator::builder()
                .limit_bytes(4 * policy.slab_bytes)
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        let c = SlubCache::new("t", 512, 1, pages, rcu);
        let per_slab = c.policy().objects_per_slab;
        let total = per_slab * 3;
        for round in 0..3 {
            let objs: Vec<ObjPtr> = (0..total)
                .map(|_| {
                    c.allocate()
                        .unwrap_or_else(|e| panic!("round {round}: {e}"))
                })
                .collect();
            for o in objs {
                unsafe { c.free_deferred(o) };
            }
        }
        let s = c.stats();
        assert!(s.oom_waits > 0, "ladder never entered: {s:?}");
        assert!(
            s.oom_recoveries_total() >= 1,
            "no recovery attributed to a ladder stage: {s:?}"
        );
        c.quiesce();
    }

    #[test]
    fn telemetry_traces_deferred_lifecycle() {
        let (c, _p, _rcu) = cache(64);
        let a = c.allocate().unwrap();
        unsafe { c.free_deferred(a) };
        c.quiesce();
        let t = c.telemetry();
        assert_eq!(t.count_of(pbs_telemetry::EventKind::DeferredFree), 1);
        assert_eq!(t.count_of(pbs_telemetry::EventKind::DeferredReusable), 1);
        assert!(t.count_of(pbs_telemetry::EventKind::SlabGrow) >= 1);
        assert!(t.histogram("slot_wait_ns").is_some());
    }

    #[test]
    fn drop_returns_all_pages() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
        {
            let c = SlubCache::new("t", 128, 2, Arc::clone(&pages), rcu);
            let objs: Vec<ObjPtr> = (0..200).map(|_| c.allocate().unwrap()).collect();
            for o in objs {
                unsafe { c.free(o) };
            }
            c.quiesce();
        }
        assert_eq!(pages.used_bytes(), 0, "cache leaked pages on drop");
    }

    #[test]
    fn robust_backends_bound_garbage_under_a_stalled_reader() {
        use pbs_rcu::reclaim::{domain_for, ReclaimBackend, ReclaimConfig};
        for backend in [ReclaimBackend::Hp, ReclaimBackend::Hyaline] {
            let pages = Arc::new(PageAllocator::new());
            let rcu = Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager()));
            let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
            let c = SlubCache::with_domain(
                "t",
                64,
                2,
                SlubTuning::default(),
                Arc::clone(&pages),
                domain,
            );
            let reader = rcu.register();
            let guard = reader.read_lock();
            let objs: Vec<ObjPtr> = (0..512).map(|_| c.allocate().unwrap()).collect();
            for o in objs {
                unsafe { c.free_deferred(o) };
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.reclaim_domain().advance();
            let outstanding = c.deferred_outstanding();
            assert!(
                outstanding <= 128,
                "{backend}: stalled reader pinned {outstanding} objects"
            );
            // The epoch baseline in the same position wedges at 512; see
            // the chaos stalled-reader scenario for the gated contrast.
            c.quiesce();
            assert_eq!(c.deferred_outstanding(), 0, "{backend}: quiesce under pin");
            drop(guard);
            drop(c);
            assert_eq!(pages.used_bytes(), 0, "{backend}: pages leaked");
        }
    }
}
