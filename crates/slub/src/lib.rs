//! # pbs-slub — the baseline SLUB-style slab allocator
//!
//! A faithful userspace analog of the allocator the Prudence paper compares
//! against: per-CPU object caches over per-node full/partial/free slab
//! lists, refill/flush in halves, grow/shrink against the page allocator.
//!
//! **Deferred frees are not visible to this allocator.** `free_deferred`
//! registers an RCU callback (exactly like kernel code calling
//! `call_rcu(..., kfree_cb)`), so deferred objects are reclaimed later, in
//! bursts, by background reclaimer threads throttled per
//! [`RcuConfig`](pbs_rcu::RcuConfig). This reproduces the pathologies of
//! paper §3: bursty freeing, extended object lifetimes, high object-cache
//! and slab churn, and OOM under sustained deferred-free load.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbs_alloc_api::ObjectAllocator;
//! use pbs_mem::PageAllocator;
//! use pbs_rcu::Rcu;
//! use pbs_slub::SlubCache;
//!
//! let pages = Arc::new(PageAllocator::new());
//! let rcu = Arc::new(Rcu::new());
//! let cache = SlubCache::new("example", 256, 4, pages, rcu);
//!
//! let obj = cache.allocate()?;
//! unsafe { cache.free_deferred(obj) }; // reclaimed after a grace period
//! cache.quiesce();
//! assert_eq!(cache.stats().deferred_frees, 1);
//! # Ok::<(), pbs_alloc_api::AllocError>(())
//! ```

mod cache;
mod factory;
mod heap;

pub use cache::{SlubCache, SlubTuning};
pub use factory::SlubFactory;
pub use heap::SlubHeap;
