//! kmalloc-style front end over size-class caches.

use std::sync::Arc;

use pbs_alloc_api::{
    class_index_for, AllocError, CacheStatsSnapshot, ObjPtr, ObjectAllocator, SIZE_CLASSES,
};
use pbs_mem::PageAllocator;
use pbs_rcu::Rcu;

use crate::SlubCache;

/// A general-purpose allocator front end: one [`SlubCache`] per kmalloc
/// size class (`kmalloc-8` … `kmalloc-4096`), as in the Linux kernel.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_slub::SlubHeap;
///
/// let heap = SlubHeap::new(4, Arc::new(PageAllocator::new()), Arc::new(Rcu::new()));
/// let obj = heap.kmalloc(100)?; // served by kmalloc-128
/// unsafe { heap.kfree(obj, 100) };
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
#[derive(Debug)]
pub struct SlubHeap {
    caches: Vec<Arc<SlubCache>>,
}

impl SlubHeap {
    /// Creates the full set of size-class caches.
    pub fn new(ncpus: usize, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        let caches = SIZE_CLASSES
            .iter()
            .map(|&size| {
                SlubCache::new(
                    &format!("kmalloc-{size}"),
                    size,
                    ncpus,
                    Arc::clone(&pages),
                    Arc::clone(&rcu),
                )
            })
            .collect();
        Self { caches }
    }

    fn class_for(&self, size: usize) -> Result<&Arc<SlubCache>, AllocError> {
        class_index_for(size)
            .map(|i| &self.caches[i])
            .ok_or(AllocError::OutOfMemory)
    }

    /// Allocates `size` bytes from the smallest fitting size class.
    ///
    /// # Errors
    ///
    /// Fails if `size` exceeds the largest class or the page allocator is
    /// exhausted.
    pub fn kmalloc(&self, size: usize) -> Result<ObjPtr, AllocError> {
        self.class_for(size)?.allocate()
    }

    /// Frees an object previously allocated with `kmalloc(size)`.
    ///
    /// # Safety
    ///
    /// `obj` must come from [`kmalloc`](Self::kmalloc) on this heap with a
    /// size mapping to the same class, freed exactly once, not used after.
    pub unsafe fn kfree(&self, obj: ObjPtr, size: usize) {
        self.class_for(size)
            .expect("size was allocatable")
            .free(obj);
    }

    /// Defers freeing of an object until after an RCU grace period — the
    /// paper's `kfree_deferred()` API (§5).
    ///
    /// # Safety
    ///
    /// As [`kfree`](Self::kfree); additionally the object must already be
    /// unreachable for new readers.
    pub unsafe fn kfree_deferred(&self, obj: ObjPtr, size: usize) {
        self.class_for(size)
            .expect("size was allocatable")
            .free_deferred(obj);
    }

    /// The cache serving a given size.
    pub fn cache_for(&self, size: usize) -> Option<&Arc<SlubCache>> {
        class_index_for(size).map(|i| &self.caches[i])
    }

    /// All size-class caches.
    pub fn caches(&self) -> &[Arc<SlubCache>] {
        &self.caches
    }

    /// Statistics for every size class.
    pub fn stats(&self) -> Vec<CacheStatsSnapshot> {
        self.caches.iter().map(|c| c.stats()).collect()
    }

    /// Telemetry (histograms + trace events) for every size class.
    pub fn telemetry(&self) -> Vec<pbs_telemetry::ComponentTelemetry> {
        self.caches.iter().map(|c| c.telemetry()).collect()
    }

    /// Waits for all deferred frees to be reclaimed.
    pub fn quiesce(&self) {
        if let Some(c) = self.caches.first() {
            c.quiesce(); // one barrier covers the shared RCU domain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SlubHeap {
        SlubHeap::new(
            2,
            Arc::new(PageAllocator::new()),
            Arc::new(Rcu::with_config(pbs_rcu::RcuConfig::eager())),
        )
    }

    #[test]
    fn routes_to_correct_class() {
        let h = heap();
        let o = h.kmalloc(100).unwrap();
        assert_eq!(h.cache_for(100).unwrap().object_size(), 128);
        assert_eq!(h.cache_for(100).unwrap().stats().alloc_requests, 1);
        unsafe { h.kfree(o, 100) };
    }

    #[test]
    fn oversized_fails() {
        let h = heap();
        assert_eq!(h.kmalloc(1 << 20), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn deferred_free_via_heap() {
        let h = heap();
        let o = h.kmalloc(512).unwrap();
        unsafe { h.kfree_deferred(o, 512) };
        h.quiesce();
        let s = h.cache_for(512).unwrap().stats();
        assert_eq!(s.deferred_frees, 1);
        assert_eq!(s.live_objects, 0);
    }

    #[test]
    fn stats_cover_all_classes() {
        let h = heap();
        assert_eq!(h.stats().len(), SIZE_CLASSES.len());
    }
}
