//! Factory producing baseline caches.

use std::sync::Arc;

use pbs_alloc_api::{CacheFactory, ObjectAllocator};
use pbs_mem::PageAllocator;
use pbs_rcu::Rcu;

use crate::{SlubCache, SlubTuning};

/// Creates [`SlubCache`]s sharing one page allocator and RCU domain.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_alloc_api::CacheFactory;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_slub::SlubFactory;
///
/// let f = SlubFactory::new(4, Arc::new(PageAllocator::new()), Arc::new(Rcu::new()));
/// let cache = f.create_cache("dentry", 192);
/// assert_eq!(cache.object_size(), 192);
/// assert_eq!(f.label(), "slub");
/// ```
#[derive(Debug)]
pub struct SlubFactory {
    ncpus: usize,
    tuning: SlubTuning,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
}

impl SlubFactory {
    /// Creates a factory; every cache it mints shares `pages` and `rcu`.
    pub fn new(ncpus: usize, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        Self::with_tuning(ncpus, SlubTuning::default(), pages, rcu)
    }

    /// Like [`new`](Self::new) with explicit degradation knobs applied to
    /// every cache this factory mints.
    pub fn with_tuning(
        ncpus: usize,
        tuning: SlubTuning,
        pages: Arc<PageAllocator>,
        rcu: Arc<Rcu>,
    ) -> Self {
        Self {
            ncpus,
            tuning,
            pages,
            rcu,
        }
    }

    /// The shared page allocator.
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }
}

impl CacheFactory for SlubFactory {
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        SlubCache::with_tuning(
            name,
            object_size,
            self.ncpus,
            self.tuning.clone(),
            Arc::clone(&self.pages),
            Arc::clone(&self.rcu),
        )
    }

    fn label(&self) -> &str {
        "slub"
    }
}
