//! Factory producing baseline caches.

use std::sync::Arc;

use pbs_alloc_api::{CacheFactory, ObjectAllocator};
use pbs_mem::PageAllocator;
use pbs_rcu::Rcu;

use crate::SlubCache;

/// Creates [`SlubCache`]s sharing one page allocator and RCU domain.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_alloc_api::CacheFactory;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_slub::SlubFactory;
///
/// let f = SlubFactory::new(4, Arc::new(PageAllocator::new()), Arc::new(Rcu::new()));
/// let cache = f.create_cache("dentry", 192);
/// assert_eq!(cache.object_size(), 192);
/// assert_eq!(f.label(), "slub");
/// ```
#[derive(Debug)]
pub struct SlubFactory {
    ncpus: usize,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
}

impl SlubFactory {
    /// Creates a factory; every cache it mints shares `pages` and `rcu`.
    pub fn new(ncpus: usize, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        Self { ncpus, pages, rcu }
    }

    /// The shared page allocator.
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }
}

impl CacheFactory for SlubFactory {
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        SlubCache::new(
            name,
            object_size,
            self.ncpus,
            Arc::clone(&self.pages),
            Arc::clone(&self.rcu),
        )
    }

    fn label(&self) -> &str {
        "slub"
    }
}
