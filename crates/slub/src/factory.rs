//! Factory producing baseline caches.

use std::sync::Arc;

use pbs_alloc_api::{CacheFactory, ObjectAllocator};
use pbs_mem::PageAllocator;
use pbs_rcu::reclaim::ReclamationDomain;
use pbs_rcu::Rcu;

use crate::{SlubCache, SlubTuning};

/// Creates [`SlubCache`]s sharing one page allocator and RCU domain.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_alloc_api::CacheFactory;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_slub::SlubFactory;
///
/// let f = SlubFactory::new(4, Arc::new(PageAllocator::new()), Arc::new(Rcu::new()));
/// let cache = f.create_cache("dentry", 192);
/// assert_eq!(cache.object_size(), 192);
/// assert_eq!(f.label(), "slub");
/// ```
pub struct SlubFactory {
    ncpus: usize,
    tuning: SlubTuning,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
    /// Shared reclamation domain for every minted cache; `None` lets each
    /// cache attach its own default epoch backend.
    domain: Option<Arc<dyn ReclamationDomain>>,
}

impl std::fmt::Debug for SlubFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlubFactory")
            .field("ncpus", &self.ncpus)
            .field("backend", &self.domain.as_ref().map(|d| d.backend()))
            .finish()
    }
}

impl SlubFactory {
    /// Creates a factory; every cache it mints shares `pages` and `rcu`.
    pub fn new(ncpus: usize, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        Self::with_tuning(ncpus, SlubTuning::default(), pages, rcu)
    }

    /// Like [`new`](Self::new) with explicit degradation knobs applied to
    /// every cache this factory mints.
    pub fn with_tuning(
        ncpus: usize,
        tuning: SlubTuning,
        pages: Arc<PageAllocator>,
        rcu: Arc<Rcu>,
    ) -> Self {
        Self {
            ncpus,
            tuning,
            pages,
            rcu,
            domain: None,
        }
    }

    /// Like [`with_tuning`](Self::with_tuning), but every minted cache
    /// shares `domain` (one retire stream / batch stream across the whole
    /// subsystem, the way all caches already share one `rcu`).
    pub fn with_domain(
        ncpus: usize,
        tuning: SlubTuning,
        pages: Arc<PageAllocator>,
        domain: Arc<dyn ReclamationDomain>,
    ) -> Self {
        Self {
            ncpus,
            tuning,
            pages,
            rcu: Arc::clone(domain.rcu()),
            domain: Some(domain),
        }
    }

    /// The shared page allocator.
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }
}

impl CacheFactory for SlubFactory {
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        match &self.domain {
            Some(domain) => SlubCache::with_domain(
                name,
                object_size,
                self.ncpus,
                self.tuning.clone(),
                Arc::clone(&self.pages),
                Arc::clone(domain),
            ),
            None => SlubCache::with_tuning(
                name,
                object_size,
                self.ncpus,
                self.tuning.clone(),
                Arc::clone(&self.pages),
                Arc::clone(&self.rcu),
            ),
        }
    }

    fn label(&self) -> &str {
        "slub"
    }
}
