//! Node-level state: slabs with latent-slab tracking.

use std::collections::VecDeque;

use pbs_alloc_api::{ListKind, ObjPtr, RawSlab, SlabLists};
use pbs_rcu::GpState;

/// A slab plus its latent slab: the deferred objects belonging to it
/// (paper Figure 4, right side).
///
/// Deferred objects are counted as *allocated* by the underlying
/// [`RawSlab`] until their grace period completes and
/// [`reclaim_completed`](PrudentSlab::reclaim_completed) returns them to
/// the free list.
#[derive(Debug)]
pub(crate) struct PrudentSlab {
    pub(crate) raw: RawSlab,
    /// Deferred objects (slab-local index, stamp), oldest first.
    pub(crate) deferred: VecDeque<(u16, GpState)>,
}

impl PrudentSlab {
    pub(crate) fn new(raw: RawSlab) -> Self {
        Self {
            raw,
            deferred: VecDeque::new(),
        }
    }

    /// Returns deferred objects whose grace period completed at `epoch` to
    /// the slab free list. Returns how many were reclaimed.
    pub(crate) fn reclaim_completed(&mut self, epoch: u64) -> usize {
        let mut reclaimed = 0;
        while let Some(&(idx, gp)) = self.deferred.front() {
            if !gp.is_completed_at(epoch) {
                break;
            }
            self.deferred.pop_front();
            pbs_telemetry::site::note_reclaimed(self.raw.object_ptr(idx).addr());
            self.raw.give_back_index(idx);
            reclaimed += 1;
        }
        reclaimed
    }

    /// Whether every allocated object in the slab is deferred — the slab
    /// will be entirely free after the grace period (Algorithm line 56).
    pub(crate) fn all_allocated_deferred(&self) -> bool {
        self.raw.allocated_count() > 0 && self.raw.allocated_count() == self.deferred.len()
    }

    /// The list this slab should be on, *including* pre-movement driven by
    /// deferred-object hints (Algorithm lines 54-57):
    /// * a full slab with deferred objects is pre-moved to the partial
    ///   list (objects are about to come back),
    /// * a slab whose allocated objects are all deferred is pre-moved to
    ///   the free list (the whole slab is about to be free).
    pub(crate) fn classify(&self) -> ListKind {
        if self.raw.is_free() || self.all_allocated_deferred() {
            ListKind::Free
        } else if self.raw.is_full() && self.deferred.is_empty() {
            ListKind::Full
        } else {
            ListKind::Partial
        }
    }

    /// Whether the slab's pages can be returned to the page allocator
    /// right now.
    pub(crate) fn releasable(&self) -> bool {
        self.raw.is_free() && self.deferred.is_empty()
    }
}

/// Per-node slab table and full/partial/free lists, guarded by one lock.
#[derive(Debug, Default)]
pub(crate) struct Node {
    pub(crate) slabs: Vec<Option<PrudentSlab>>,
    pub(crate) free_slots: Vec<usize>,
    pub(crate) lists: SlabLists,
    pub(crate) next_color: usize,
    /// Slabs with pending latent-slab objects, in the order their oldest
    /// stamp was queued. Lets reclamation merge completed objects back
    /// ("objects in the latent slab are merged with the slab", §4.1)
    /// without scanning every slab. May contain stale entries; consumers
    /// re-validate.
    pub(crate) pending: std::collections::VecDeque<usize>,
    /// Grace-period stamp taken when the free list was first observed over
    /// the shrink threshold, or `None` while it is within bounds. Shrink
    /// hysteresis: excess free slabs are only released once this stamp's
    /// grace period completes, so slabs emptied by a reclamation burst get
    /// one grace period to be re-demanded before the page allocator sees
    /// them.
    pub(crate) shrink_excess_since: Option<GpState>,
}

impl Node {
    pub(crate) fn slab_mut(&mut self, index: usize) -> &mut PrudentSlab {
        self.slabs[index].as_mut().expect("live slab index")
    }

    pub(crate) fn slab(&self, index: usize) -> &PrudentSlab {
        self.slabs[index].as_ref().expect("live slab index")
    }

    /// Re-lists a slab according to [`PrudentSlab::classify`]; returns
    /// `true` if it moved.
    pub(crate) fn relist(&mut self, index: usize) -> bool {
        let kind = self.slab(index).classify();
        if self.lists.kind_of(index) == Some(kind) {
            false
        } else {
            self.lists.move_to(index, kind);
            true
        }
    }

    /// Inserts a new slab and returns its index.
    pub(crate) fn insert_slab(&mut self, slab: PrudentSlab) -> usize {
        let index = self.free_slots.pop().unwrap_or(self.slabs.len());
        if index == self.slabs.len() {
            self.slabs.push(Some(slab));
        } else {
            debug_assert!(self.slabs[index].is_none());
            self.slabs[index] = Some(slab);
        }
        self.lists.insert(index, self.slab(index).classify());
        index
    }

    /// Removes a slab from the table and lists, returning it.
    pub(crate) fn remove_slab(&mut self, index: usize) -> PrudentSlab {
        self.lists.remove(index);
        let slab = self.slabs[index].take().expect("live slab index");
        self.free_slots.push(index);
        slab
    }

    /// Merges grace-period-complete latent-slab objects back into their
    /// slabs' free lists, draining the pending queue front while stamps
    /// are complete. Returns the number of objects reclaimed and relists
    /// every touched slab.
    pub(crate) fn reclaim_pending(&mut self, epoch: u64) -> usize {
        let mut reclaimed = 0;
        while let Some(&index) = self.pending.front() {
            let Some(slab) = self.slabs.get_mut(index).and_then(|s| s.as_mut()) else {
                self.pending.pop_front();
                continue;
            };
            match slab.deferred.front() {
                None => {
                    self.pending.pop_front();
                }
                Some(&(_, gp)) if gp.is_completed_at(epoch) => {
                    reclaimed += slab.reclaim_completed(epoch);
                    self.pending.pop_front();
                    if !self.slab(index).deferred.is_empty() {
                        // Newer stamps remain; queue again behind peers.
                        self.pending.push_back(index);
                        self.relist(index);
                    } else {
                        self.relist(index);
                    }
                }
                Some(_) => break, // front stamp still inside its grace period
            }
        }
        reclaimed
    }

    /// Index of an object's slab; see
    /// [`resolve_slab_index`](pbs_alloc_api::slab_layout::resolve_slab_index).
    ///
    /// # Safety
    ///
    /// As `resolve_slab_index`; additionally the node lock must be held.
    pub(crate) unsafe fn resolve(&self, obj: ObjPtr, slab_bytes: usize) -> usize {
        pbs_alloc_api::slab_layout::resolve_slab_index(obj, slab_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_alloc_api::SizingPolicy;
    use pbs_mem::PageAllocator;
    use pbs_rcu::Rcu;

    fn mk_slab(policy: &SizingPolicy, pages: &PageAllocator, index: usize) -> PrudentSlab {
        let block = pages
            .allocate_aligned(policy.slab_bytes, policy.slab_bytes)
            .unwrap();
        PrudentSlab::new(RawSlab::new(block, policy, index, 0))
    }

    #[test]
    fn classify_transitions() {
        let policy = SizingPolicy::for_object_size(512);
        let pages = PageAllocator::new();
        let rcu = Rcu::new();
        let mut slab = mk_slab(&policy, &pages, 0);
        assert_eq!(slab.classify(), ListKind::Free);

        let mut objs = Vec::new();
        slab.raw.take(policy.objects_per_slab, &mut objs);
        assert_eq!(slab.classify(), ListKind::Full);

        // Defer one object: the hint pre-moves the slab to Partial.
        let idx = slab.raw.index_of(objs[0]);
        slab.deferred.push_back((idx, rcu.gp_state()));
        assert_eq!(slab.classify(), ListKind::Partial);

        // Defer the rest: everything allocated is deferred → Free.
        for &o in &objs[1..] {
            slab.deferred.push_back((slab.raw.index_of(o), rcu.gp_state()));
        }
        assert_eq!(slab.classify(), ListKind::Free);
        assert!(!slab.releasable(), "pages must wait for the grace period");

        rcu.synchronize();
        let n = slab.reclaim_completed(rcu.current_epoch());
        assert_eq!(n, policy.objects_per_slab);
        assert!(slab.releasable());
        pages.free_pages(slab.raw.into_block());
    }

    #[test]
    fn reclaim_stops_at_incomplete_stamp() {
        let policy = SizingPolicy::for_object_size(512);
        let pages = PageAllocator::new();
        let rcu = Rcu::new();
        let mut slab = mk_slab(&policy, &pages, 0);
        let mut objs = Vec::new();
        slab.raw.take(2, &mut objs);
        let early = rcu.gp_state();
        slab.deferred.push_back((slab.raw.index_of(objs[0]), early));
        rcu.synchronize();
        let late = rcu.gp_state();
        slab.deferred.push_back((slab.raw.index_of(objs[1]), late));
        // Only the first stamp is complete.
        assert_eq!(slab.reclaim_completed(early.raw_epoch() + 2), 1);
        assert_eq!(slab.deferred.len(), 1);
        rcu.synchronize();
        assert_eq!(slab.reclaim_completed(rcu.current_epoch()), 1);
        pages.free_pages(slab.raw.into_block());
    }

    #[test]
    fn node_insert_remove_reuses_slots() {
        let policy = SizingPolicy::for_object_size(64);
        let pages = PageAllocator::new();
        let mut node = Node::default();
        let a = node.insert_slab(mk_slab(&policy, &pages, 0));
        let b = node.insert_slab(mk_slab(&policy, &pages, 1));
        assert_eq!((a, b), (0, 1));
        let slab = node.remove_slab(a);
        pages.free_pages(slab.raw.into_block());
        let c = node.insert_slab(mk_slab(&policy, &pages, 0));
        assert_eq!(c, 0, "slot reused");
        for idx in [b, c] {
            let s = node.remove_slab(idx);
            pages.free_pages(s.raw.into_block());
        }
    }

    #[test]
    fn relist_reports_movement() {
        let policy = SizingPolicy::for_object_size(64);
        let pages = PageAllocator::new();
        let mut node = Node::default();
        let i = node.insert_slab(mk_slab(&policy, &pages, 0));
        assert!(!node.relist(i), "already on the right list");
        let mut objs = Vec::new();
        node.slab_mut(i).raw.take(1, &mut objs);
        assert!(node.relist(i), "free → partial after take");
        node.slab_mut(i).raw.give_back(objs[0]);
        assert!(node.relist(i));
        let s = node.remove_slab(i);
        pages.free_pages(s.raw.into_block());
    }
}
