//! Idle-time latent-cache pre-flush worker (§4.2).
//!
//! The paper schedules pre-flushing during CPU idle time (inspired by
//! "Idleness is not sloth") so it never interferes with the allocation and
//! free hot paths. The userspace analog is a low-priority background thread
//! per cache that drains pre-flush requests from a channel — it only runs
//! when the OS has spare cycles to schedule it, and the hot paths only pay
//! one `try_send` when they foresee a post-grace-period overflow.

use std::sync::Weak;

use crossbeam::channel::Receiver;

use crate::cache::Inner;

/// Worker loop: drains CPU indices whose latent caches need pre-flushing.
/// Exits when the cache is dropped (channel closed or upgrade fails).
pub(crate) fn preflush_worker(cache: Weak<Inner>, rx: Receiver<usize>) {
    while let Ok(cpu_idx) = rx.recv() {
        let Some(cache) = cache.upgrade() else {
            return;
        };
        cache.preflush(cpu_idx);
    }
}
