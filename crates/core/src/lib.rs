//! # prudence — the Prudence dynamic memory allocator (ASPLOS '16)
//!
//! Prudence is a slab allocator **tightly integrated with
//! procrastination-based synchronization** (RCU). Where the baseline
//! allocator (`pbs-slub`) reclaims deferred objects through opaque RCU
//! callbacks, Prudence makes deferred objects *visible to the allocator*:
//!
//! * [`free_deferred`](pbs_alloc_api::ObjectAllocator::free_deferred) is a
//!   turnkey replacement for
//!   `call_rcu(kfree)` (paper Listing 2). Deferred objects are stamped with
//!   the current [`GpState`](pbs_rcu::GpState) and parked in a per-CPU
//!   **latent cache** (bounded by the object-cache size) or, past that
//!   bound, in the per-slab **latent slab**.
//! * As soon as the grace period completes, latent objects are merged into
//!   the object cache / slab free lists and are immediately reusable —
//!   extended object lifetimes (paper §3.2) are eliminated.
//! * Hints about the future drive the §4.2 optimizations: **partial
//!   refill**, **proportional flush**, **idle-time pre-flush**, **slab
//!   pre-movement**, **deferred-aware slab selection** (Figure 5), and
//!   **OOM deferral**.
//!
//! Every optimization has an ablation switch in [`PrudenceConfig`] so its
//! contribution can be measured independently.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbs_alloc_api::ObjectAllocator;
//! use pbs_mem::PageAllocator;
//! use pbs_rcu::Rcu;
//! use prudence::{PrudenceCache, PrudenceConfig};
//!
//! let pages = Arc::new(PageAllocator::new());
//! let rcu = Arc::new(Rcu::new());
//! let cache = PrudenceCache::new("example", 256, PrudenceConfig::new(4), pages, rcu);
//!
//! let obj = cache.allocate()?;
//! unsafe { cache.free_deferred(obj) }; // visible to the allocator at once
//! cache.quiesce();
//! assert_eq!(cache.stats().deferred_frees, 1);
//! # Ok::<(), pbs_alloc_api::AllocError>(())
//! ```

mod cache;
mod config;
mod factory;
mod cpu_state;
mod heap;
mod node;
mod preflush;

pub use cache::PrudenceCache;
pub use config::PrudenceConfig;
pub use factory::PrudenceFactory;
pub use heap::PrudenceHeap;
