//! Configuration and ablation switches for the Prudence allocator.

/// Tuning knobs for a [`PrudenceCache`](crate::PrudenceCache).
///
/// Every §4.2 optimization can be toggled independently so the benchmark
/// harness can run ablations (see `DESIGN.md`). The defaults enable the
/// full design exactly as the paper describes it.
///
/// # Example
///
/// ```
/// use prudence::PrudenceConfig;
///
/// let full = PrudenceConfig::new(8);
/// assert!(full.preflush && full.partial_refill);
///
/// let no_hints = PrudenceConfig::new(8)
///     .with_deferred_aware_selection(false)
///     .with_partial_refill(false);
/// assert!(!no_hints.partial_refill);
/// ```
#[derive(Debug, Clone)]
pub struct PrudenceConfig {
    /// Number of CPU slots (per-CPU object/latent cache pairs).
    pub ncpus: usize,
    /// Keep deferred objects in per-CPU latent caches (§4.1). When
    /// disabled, deferred objects go straight to latent slabs.
    pub latent_cache: bool,
    /// Refill only `cache_size − latent_count` objects when deferred
    /// objects are pending (§4.2, *Object cache refill*).
    pub partial_refill: bool,
    /// Schedule idle-time latent-cache pre-flush when a post-grace-period
    /// overflow is foreseen (§4.2, *Latent cache pre-flush*).
    pub preflush: bool,
    /// Flush more objects when more deferred objects are pending (§4.2,
    /// *Object cache flush*).
    pub proportional_flush: bool,
    /// Consider deferred objects when selecting a slab for refill (§4.2,
    /// *Reduces total fragmentation*, Figure 5).
    pub deferred_aware_selection: bool,
    /// How many partial slabs to scan during selection (the paper uses 10
    /// as a latency/fragmentation trade-off, §5.4).
    pub slab_scan_window: usize,
    /// How many grace periods to wait for deferred objects before
    /// reporting out-of-memory (§4.2, *Handling memory pressure*).
    pub oom_retries: usize,
    /// Deferred-backlog soft watermark: when `deferred_outstanding`
    /// crosses it, freeing threads nudge the grace-period machinery with
    /// an expedited drive.
    pub soft_watermark: usize,
    /// Deferred-backlog hard watermark: above it every freeing thread
    /// also runs a caller-assisted reclaim pass, throttling producers to
    /// the reclaim rate.
    pub hard_watermark: usize,
    /// Route the allocate/free hit paths through the per-CPU fast path
    /// (`pbs-percpu`): zero atomics and zero locks per uncontended pair.
    /// When disabled the cache is built without fast-path slots at all
    /// (ablation; the runtime toggle is
    /// `ObjectAllocator::fastpath_set_enabled`).
    pub fastpath: bool,
}

impl PrudenceConfig {
    /// The full Prudence design for `ncpus` CPU slots.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(ncpus: usize) -> Self {
        assert!(ncpus > 0, "need at least one CPU slot");
        Self {
            ncpus,
            latent_cache: true,
            partial_refill: true,
            preflush: true,
            proportional_flush: true,
            deferred_aware_selection: true,
            slab_scan_window: 10,
            oom_retries: 4,
            soft_watermark: 4096,
            hard_watermark: 16384,
            fastpath: true,
        }
    }

    /// Toggles the latent cache (ablation).
    pub fn with_latent_cache(mut self, on: bool) -> Self {
        self.latent_cache = on;
        self
    }

    /// Toggles partial refill (ablation).
    pub fn with_partial_refill(mut self, on: bool) -> Self {
        self.partial_refill = on;
        self
    }

    /// Toggles idle pre-flush (ablation).
    pub fn with_preflush(mut self, on: bool) -> Self {
        self.preflush = on;
        self
    }

    /// Toggles proportional flush (ablation).
    pub fn with_proportional_flush(mut self, on: bool) -> Self {
        self.proportional_flush = on;
        self
    }

    /// Toggles deferred-aware slab selection (ablation).
    pub fn with_deferred_aware_selection(mut self, on: bool) -> Self {
        self.deferred_aware_selection = on;
        self
    }

    /// Sets the partial-list scan window.
    pub fn with_slab_scan_window(mut self, window: usize) -> Self {
        self.slab_scan_window = window.max(1);
        self
    }

    /// Sets the deferred-backlog pressure watermarks. `hard` is clamped to
    /// at least `soft` so the pressure levels stay ordered.
    pub fn with_watermarks(mut self, soft: usize, hard: usize) -> Self {
        self.soft_watermark = soft.max(1);
        self.hard_watermark = hard.max(self.soft_watermark);
        self
    }

    /// Toggles the per-CPU fast path (ablation).
    pub fn with_fastpath(mut self, on: bool) -> Self {
        self.fastpath = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = PrudenceConfig::new(2);
        assert!(c.latent_cache);
        assert!(c.partial_refill);
        assert!(c.preflush);
        assert!(c.proportional_flush);
        assert!(c.deferred_aware_selection);
        assert_eq!(c.slab_scan_window, 10);
        assert!(c.soft_watermark <= c.hard_watermark);
        assert!(c.fastpath);
    }

    #[test]
    fn watermarks_stay_ordered() {
        let c = PrudenceConfig::new(2).with_watermarks(100, 10);
        assert_eq!(c.soft_watermark, 100);
        assert_eq!(c.hard_watermark, 100, "hard clamped up to soft");
        let c = PrudenceConfig::new(2).with_watermarks(0, 0);
        assert_eq!(c.soft_watermark, 1, "soft clamped to at least 1");
    }

    #[test]
    fn builder_toggles() {
        let c = PrudenceConfig::new(2)
            .with_latent_cache(false)
            .with_preflush(false)
            .with_slab_scan_window(0);
        assert!(!c.latent_cache);
        assert!(!c.preflush);
        assert_eq!(c.slab_scan_window, 1, "window clamped to at least 1");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cpus_rejected() {
        PrudenceConfig::new(0);
    }
}
