//! Per-CPU allocator state: the object cache and its latent cache.

use std::collections::VecDeque;

use pbs_alloc_api::ObjPtr;
use pbs_rcu::GpState;

/// One latent-cache entry: the deferred object, the grace-period state at
/// defer time, and the defer-time wall clock (0 when tracing was disabled
/// at defer time — the telemetry convention for "untimed").
pub(crate) type LatentEntry = (ObjPtr, GpState, u64);

/// One CPU slot's caches (paper Figure 4, left side).
///
/// * `obj_cache` — free objects ready to serve allocations.
/// * `latent` — deferred objects stamped with the grace-period state at
///   defer time, oldest first. Hidden from allocation until their grace
///   period completes, then merged into `obj_cache`.
///
/// Rate counters feed the pre-flush aggressiveness decision (§4.2: be
/// aggressive when frees outpace allocations, lazy otherwise).
#[derive(Debug, Default)]
pub(crate) struct CpuState {
    pub(crate) obj_cache: Vec<ObjPtr>,
    pub(crate) latent: VecDeque<LatentEntry>,
    pub(crate) allocs_since: u64,
    pub(crate) frees_since: u64,
    pub(crate) defers_since: u64,
    pub(crate) preflush_pending: bool,
}

impl CpuState {
    /// Moves latent objects whose grace period has completed into the
    /// object cache, up to `capacity` (Algorithm 1, MERGE_CACHES,
    /// lines 60-65). Stamps are non-decreasing front-to-back, so a failed
    /// front check ends the merge. Returns the number merged; `on_merge`
    /// receives each merged object and its defer-time clock so the caller
    /// can record the defer→reusable delay and credit site attribution.
    pub(crate) fn merge_caches(
        &mut self,
        epoch: u64,
        capacity: usize,
        mut on_merge: impl FnMut(ObjPtr, u64),
    ) -> usize {
        let mut merged = 0;
        while self.obj_cache.len() < capacity {
            match self.latent.front() {
                Some(&(_, gp, _)) if gp.is_completed_at(epoch) => {
                    let (obj, _, queued_ns) = self.latent.pop_front().expect("front exists");
                    self.obj_cache.push(obj);
                    on_merge(obj, queued_ns);
                    merged += 1;
                }
                _ => break,
            }
        }
        merged
    }

    /// Objects held in both caches together (the pre-flush trigger
    /// compares this against the object-cache size, lines 41-42).
    pub(crate) fn total_cached(&self) -> usize {
        self.obj_cache.len() + self.latent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ptr::NonNull;

    fn obj(addr: usize) -> ObjPtr {
        ObjPtr::new(NonNull::new(addr as *mut u8).unwrap())
    }

    fn gp(epoch: u64) -> GpState {
        // GpState is opaque; fabricate via transmute-free path: epoch 0
        // states come from a fresh Rcu. For unit tests we use the fact that
        // is_completed_at(e) == e >= raw + 2 and construct via Rcu.
        let rcu = pbs_rcu::Rcu::new();
        let mut state = rcu.gp_state();
        while state.raw_epoch() < epoch {
            rcu.synchronize();
            state = rcu.gp_state();
        }
        state
    }

    #[test]
    fn merge_respects_grace_period() {
        let mut cpu = CpuState::default();
        let early = gp(0);
        cpu.latent.push_back((obj(0x1000), early, 0));
        cpu.latent.push_back((obj(0x2000), early, 0));
        let raw = early.raw_epoch();
        assert_eq!(
            cpu.merge_caches(raw + 1, 10, |_, _| {}),
            0,
            "grace period incomplete"
        );
        assert_eq!(cpu.merge_caches(raw + 2, 10, |_, _| {}), 2);
        assert_eq!(cpu.obj_cache.len(), 2);
        assert!(cpu.latent.is_empty());
    }

    #[test]
    fn merge_respects_capacity() {
        let mut cpu = CpuState::default();
        let early = gp(0);
        for i in 0..5 {
            cpu.latent.push_back((obj(0x1000 + i * 8), early, 0));
        }
        assert_eq!(cpu.merge_caches(early.raw_epoch() + 2, 3, |_, _| {}), 3);
        assert_eq!(cpu.obj_cache.len(), 3);
        assert_eq!(cpu.latent.len(), 2);
    }

    #[test]
    fn merge_stops_at_incomplete_front() {
        let mut cpu = CpuState::default();
        let early = gp(0);
        let later = gp(early.raw_epoch() + 4);
        cpu.latent.push_back((obj(0x1000), later, 0)); // newer stamp in front
        cpu.latent.push_back((obj(0x2000), early, 0));
        // Front not complete at early+2 even though the one behind is;
        // merge is conservative and stops.
        assert_eq!(cpu.merge_caches(early.raw_epoch() + 2, 10, |_, _| {}), 0);
    }

    #[test]
    fn merge_reports_defer_stamps() {
        let mut cpu = CpuState::default();
        let early = gp(0);
        cpu.latent.push_back((obj(0x1000), early, 7));
        cpu.latent.push_back((obj(0x2000), early, 0)); // untimed entry
        let mut stamps = Vec::new();
        cpu.merge_caches(early.raw_epoch() + 2, 10, |_, ns| stamps.push(ns));
        assert_eq!(stamps, vec![7, 0]);
    }

    #[test]
    fn total_cached_counts_both() {
        let mut cpu = CpuState::default();
        cpu.obj_cache.push(obj(0x10));
        cpu.latent.push_back((obj(0x20), gp(0), 0));
        assert_eq!(cpu.total_cached(), 2);
    }
}
