//! kmalloc-style front end over Prudence size-class caches.

use std::sync::Arc;

use pbs_alloc_api::{
    class_index_for, AllocError, CacheStatsSnapshot, ObjPtr, ObjectAllocator, SIZE_CLASSES,
};
use pbs_mem::PageAllocator;
use pbs_rcu::Rcu;

use crate::{PrudenceCache, PrudenceConfig};

/// A general-purpose Prudence front end: one [`PrudenceCache`] per kmalloc
/// size class. This is the allocator behind the paper's
/// `kfree_deferred()` evaluation API (§5).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use prudence::{PrudenceConfig, PrudenceHeap};
///
/// let heap = PrudenceHeap::new(
///     PrudenceConfig::new(4),
///     Arc::new(PageAllocator::new()),
///     Arc::new(Rcu::new()),
/// );
/// let obj = heap.kmalloc(100)?;
/// unsafe { heap.kfree_deferred(obj, 100) }; // paper Listing 2
/// heap.quiesce();
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
#[derive(Debug)]
pub struct PrudenceHeap {
    caches: Vec<Arc<PrudenceCache>>,
}

impl PrudenceHeap {
    /// Creates the full set of size-class caches sharing one configuration.
    pub fn new(config: PrudenceConfig, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        let caches = SIZE_CLASSES
            .iter()
            .map(|&size| {
                Arc::new(PrudenceCache::new(
                    &format!("kmalloc-{size}"),
                    size,
                    config.clone(),
                    Arc::clone(&pages),
                    Arc::clone(&rcu),
                ))
            })
            .collect();
        Self { caches }
    }

    fn class_for(&self, size: usize) -> Result<&Arc<PrudenceCache>, AllocError> {
        class_index_for(size)
            .map(|i| &self.caches[i])
            .ok_or(AllocError::OutOfMemory)
    }

    /// Allocates `size` bytes from the smallest fitting size class.
    ///
    /// # Errors
    ///
    /// Fails if `size` exceeds the largest class or memory is exhausted
    /// even after waiting for deferred objects.
    pub fn kmalloc(&self, size: usize) -> Result<ObjPtr, AllocError> {
        self.class_for(size)?.allocate()
    }

    /// Frees an object previously allocated with `kmalloc(size)`.
    ///
    /// # Safety
    ///
    /// `obj` must come from [`kmalloc`](Self::kmalloc) on this heap with a
    /// size mapping to the same class, freed exactly once, not used after.
    pub unsafe fn kfree(&self, obj: ObjPtr, size: usize) {
        self.class_for(size).expect("size was allocatable").free(obj);
    }

    /// The paper's `kfree_deferred()`: defers the free until after a grace
    /// period, keeping the object visible to the allocator meanwhile.
    ///
    /// # Safety
    ///
    /// As [`kfree`](Self::kfree); additionally the object must already be
    /// unreachable for new readers.
    pub unsafe fn kfree_deferred(&self, obj: ObjPtr, size: usize) {
        self.class_for(size)
            .expect("size was allocatable")
            .free_deferred(obj);
    }

    /// The cache serving a given size.
    pub fn cache_for(&self, size: usize) -> Option<&Arc<PrudenceCache>> {
        class_index_for(size).map(|i| &self.caches[i])
    }

    /// All size-class caches.
    pub fn caches(&self) -> &[Arc<PrudenceCache>] {
        &self.caches
    }

    /// Statistics for every size class.
    pub fn stats(&self) -> Vec<CacheStatsSnapshot> {
        self.caches.iter().map(|c| c.stats()).collect()
    }

    /// Telemetry (histograms + trace events) for every size class.
    pub fn telemetry(&self) -> Vec<pbs_telemetry::ComponentTelemetry> {
        self.caches.iter().map(|c| c.telemetry()).collect()
    }

    /// Waits until every deferred object in every class is reclaimed.
    pub fn quiesce(&self) {
        for c in &self.caches {
            c.quiesce();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_rcu::RcuConfig;

    fn heap() -> PrudenceHeap {
        PrudenceHeap::new(
            PrudenceConfig::new(2),
            Arc::new(PageAllocator::new()),
            Arc::new(Rcu::with_config(RcuConfig::eager())),
        )
    }

    #[test]
    fn routes_to_correct_class() {
        let h = heap();
        let o = h.kmalloc(100).unwrap();
        assert_eq!(h.cache_for(100).unwrap().object_size(), 128);
        unsafe { h.kfree(o, 100) };
        assert_eq!(h.cache_for(100).unwrap().stats().frees, 1);
    }

    #[test]
    fn oversized_fails() {
        let h = heap();
        assert_eq!(h.kmalloc(1 << 20), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn deferred_free_roundtrip() {
        let h = heap();
        let o = h.kmalloc(512).unwrap();
        unsafe { h.kfree_deferred(o, 512) };
        h.quiesce();
        let s = h.cache_for(512).unwrap().stats();
        assert_eq!(s.deferred_frees, 1);
        assert_eq!(s.live_objects, 0);
    }

    #[test]
    fn covers_all_classes() {
        let h = heap();
        assert_eq!(h.stats().len(), SIZE_CLASSES.len());
        assert_eq!(h.caches().len(), SIZE_CLASSES.len());
    }
}
