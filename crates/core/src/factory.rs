//! Factory producing Prudence caches.

use std::sync::Arc;

use pbs_alloc_api::{CacheFactory, ObjectAllocator};
use pbs_mem::PageAllocator;
use pbs_rcu::reclaim::ReclamationDomain;
use pbs_rcu::Rcu;

use crate::{PrudenceCache, PrudenceConfig};

/// Creates [`PrudenceCache`]s sharing one page allocator, RCU domain and
/// configuration.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_alloc_api::CacheFactory;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use prudence::{PrudenceConfig, PrudenceFactory};
///
/// let f = PrudenceFactory::new(
///     PrudenceConfig::new(4),
///     Arc::new(PageAllocator::new()),
///     Arc::new(Rcu::new()),
/// );
/// let cache = f.create_cache("dentry", 192);
/// assert_eq!(cache.object_size(), 192);
/// assert_eq!(f.label(), "prudence");
/// ```
pub struct PrudenceFactory {
    config: PrudenceConfig,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
    /// Shared reclamation domain for every minted cache; `None` lets each
    /// cache attach its own default epoch backend.
    domain: Option<Arc<dyn ReclamationDomain>>,
}

impl std::fmt::Debug for PrudenceFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrudenceFactory")
            .field("config", &self.config)
            .field("backend", &self.domain.as_ref().map(|d| d.backend()))
            .finish()
    }
}

impl PrudenceFactory {
    /// Creates a factory; every cache it mints shares `pages`, `rcu` and
    /// `config`.
    pub fn new(config: PrudenceConfig, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        Self {
            config,
            pages,
            rcu,
            domain: None,
        }
    }

    /// Like [`new`](Self::new), but every minted cache shares `domain`
    /// (one retire stream / batch stream across the whole subsystem, the
    /// way all caches already share one `rcu`).
    pub fn with_domain(
        config: PrudenceConfig,
        pages: Arc<PageAllocator>,
        domain: Arc<dyn ReclamationDomain>,
    ) -> Self {
        Self {
            config,
            pages,
            rcu: Arc::clone(domain.rcu()),
            domain: Some(domain),
        }
    }

    /// The shared page allocator.
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    /// The shared configuration.
    pub fn config(&self) -> &PrudenceConfig {
        &self.config
    }
}

impl CacheFactory for PrudenceFactory {
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        match &self.domain {
            Some(domain) => Arc::new(PrudenceCache::with_domain(
                name,
                object_size,
                self.config.clone(),
                Arc::clone(&self.pages),
                Arc::clone(domain),
            )),
            None => Arc::new(PrudenceCache::new(
                name,
                object_size,
                self.config.clone(),
                Arc::clone(&self.pages),
                Arc::clone(&self.rcu),
            )),
        }
    }

    fn label(&self) -> &str {
        "prudence"
    }
}
