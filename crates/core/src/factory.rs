//! Factory producing Prudence caches.

use std::sync::Arc;

use pbs_alloc_api::{CacheFactory, ObjectAllocator};
use pbs_mem::PageAllocator;
use pbs_rcu::Rcu;

use crate::{PrudenceCache, PrudenceConfig};

/// Creates [`PrudenceCache`]s sharing one page allocator, RCU domain and
/// configuration.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_alloc_api::CacheFactory;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use prudence::{PrudenceConfig, PrudenceFactory};
///
/// let f = PrudenceFactory::new(
///     PrudenceConfig::new(4),
///     Arc::new(PageAllocator::new()),
///     Arc::new(Rcu::new()),
/// );
/// let cache = f.create_cache("dentry", 192);
/// assert_eq!(cache.object_size(), 192);
/// assert_eq!(f.label(), "prudence");
/// ```
#[derive(Debug)]
pub struct PrudenceFactory {
    config: PrudenceConfig,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
}

impl PrudenceFactory {
    /// Creates a factory; every cache it mints shares `pages`, `rcu` and
    /// `config`.
    pub fn new(config: PrudenceConfig, pages: Arc<PageAllocator>, rcu: Arc<Rcu>) -> Self {
        Self { config, pages, rcu }
    }

    /// The shared page allocator.
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    /// The shared configuration.
    pub fn config(&self) -> &PrudenceConfig {
        &self.config
    }
}

impl CacheFactory for PrudenceFactory {
    fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        Arc::new(PrudenceCache::new(
            name,
            object_size,
            self.config.clone(),
            Arc::clone(&self.pages),
            Arc::clone(&self.rcu),
        ))
    }

    fn label(&self) -> &str {
        "prudence"
    }
}
