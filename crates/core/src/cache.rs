//! The Prudence slab cache: Algorithm 1 of the paper plus the §4.2
//! optimizations.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};

use pbs_alloc_api::{
    AllocError, CacheStats, CacheStatsSnapshot, CpuRegistry, ListKind, ObjPtr, ObjectAllocator,
    RawSlab, SizingPolicy,
};
use pbs_mem::PageAllocator;
use pbs_percpu::{FastCache, FastPop, FastPush};
use pbs_rcu::reclaim::{DomainHandle, EpochDomain, ReclaimClient, ReclamationDomain};
use pbs_rcu::{GpState, Rcu};
use pbs_telemetry::EventKind;

use crate::config::PrudenceConfig;
use crate::cpu_state::{CpuState, LatentEntry};
use crate::node::{Node, PrudentSlab};
use crate::preflush::preflush_worker;

/// A Prudence slab cache for fixed-size objects.
///
/// See the [crate-level documentation](crate) for the design overview and
/// an example. The cache owns a background pre-flush worker; dropping the
/// cache joins the worker and returns every slab to the page allocator
/// deterministically.
pub struct PrudenceCache {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

/// Shared state; the pre-flush worker holds a `Weak` to it.
pub(crate) struct Inner {
    name: String,
    policy: SizingPolicy,
    config: PrudenceConfig,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
    cpus: CpuRegistry,
    /// Per-CPU slot state, cache-padded so neighbouring slots (and their
    /// lock words) never share a line.
    cpu_states: Vec<CachePadded<Mutex<CpuState>>>,
    /// Per-CPU zero-atomic hit path in front of the slot-locked object
    /// caches. Only immediately-reusable objects park here; the defer
    /// pipeline never touches it.
    fast: FastCache,
    node: Mutex<Node>,
    stats: CacheStats,
    /// Deferred objects anywhere in the allocator (latent caches + latent
    /// slabs) not yet reclaimed. Drives OOM deferral.
    deferred_outstanding: AtomicUsize,
    /// Pre-flush request channel; taken (closed) when the cache drops.
    preflush_tx: Mutex<Option<Sender<usize>>>,
    /// The attached reclamation domain. Set once right after construction
    /// (the handle needs a `Weak` to this `Inner`); the epoch backend
    /// leaves the latent machinery in charge, robust backends divert
    /// deferred objects into the domain.
    reclaim: std::sync::OnceLock<DomainHandle>,
}

impl std::fmt::Debug for PrudenceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrudenceCache")
            .field("name", &self.inner.name)
            .field("object_size", &self.inner.policy.object_size)
            .field(
                "deferred_outstanding",
                &self.inner.deferred_outstanding.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl PrudenceCache {
    /// Creates a cache for `object_size`-byte objects.
    ///
    /// The sizing heuristics are identical to the baseline allocator's
    /// (paper §4.3); only reclamation differs.
    ///
    /// # Panics
    ///
    /// Panics if `object_size` is zero or too large for the maximum slab
    /// order.
    pub fn new(
        name: &str,
        object_size: usize,
        config: PrudenceConfig,
        pages: Arc<PageAllocator>,
        rcu: Arc<Rcu>,
    ) -> Self {
        let domain: Arc<dyn ReclamationDomain> = Arc::new(EpochDomain::new(Arc::clone(&rcu)));
        Self::with_domain(name, object_size, config, pages, domain)
    }

    /// Like [`new`](Self::new), but integrated with an explicit
    /// [`ReclamationDomain`] instead of the default epoch backend. With a
    /// *robust* backend (`hp`/`hyaline`) deferred frees bypass the latent
    /// caches and route through the domain, which bounds the garbage one
    /// stalled reader can pin; with the epoch backend the cache behaves
    /// exactly like [`new`](Self::new) (the paper's scheme).
    pub fn with_domain(
        name: &str,
        object_size: usize,
        config: PrudenceConfig,
        pages: Arc<PageAllocator>,
        domain: Arc<dyn ReclamationDomain>,
    ) -> Self {
        let rcu = Arc::clone(domain.rcu());
        let policy = SizingPolicy::for_object_size(object_size);
        let (tx, rx) = unbounded();
        let preflush_enabled = config.preflush;
        let fast_cap = if config.fastpath && !pbs_percpu::env_disabled() {
            policy.object_cache_size
        } else {
            0
        };
        let inner = Arc::new(Inner {
            name: name.to_owned(),
            policy,
            cpus: CpuRegistry::new(config.ncpus),
            cpu_states: (0..config.ncpus)
                .map(|_| CachePadded::new(Mutex::new(CpuState::default())))
                .collect(),
            fast: FastCache::with_slots(fast_cap, config.ncpus),
            stats: CacheStats::new(config.ncpus),
            config,
            pages,
            rcu,
            node: Mutex::new(Node::default()),
            deferred_outstanding: AtomicUsize::new(0),
            preflush_tx: Mutex::new(preflush_enabled.then_some(tx)),
            reclaim: std::sync::OnceLock::new(),
        });
        let weak = Arc::downgrade(&inner) as std::sync::Weak<dyn ReclaimClient>;
        let _ = inner.reclaim.set(DomainHandle::attach(domain, weak));
        inner.record_fastpath_engine(fast_cap);
        let worker = preflush_enabled.then(|| {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name(format!("prudence-preflush-{name}"))
                .spawn(move || preflush_worker(weak, rx))
                .expect("spawn preflush worker")
        });
        Self { inner, worker }
    }

    /// The sizing policy in effect.
    pub fn policy(&self) -> &SizingPolicy {
        &self.inner.policy
    }

    /// Deferred objects currently waiting anywhere in the allocator.
    pub fn deferred_outstanding(&self) -> usize {
        self.inner.deferred_outstanding.load(Ordering::Relaxed)
    }

    /// The RCU domain this cache is integrated with.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.inner.rcu
    }

    /// The reclamation domain this cache is attached to.
    pub fn reclaim_domain(&self) -> &Arc<dyn ReclamationDomain> {
        &self.inner.hook().domain
    }
}

impl Drop for PrudenceCache {
    fn drop(&mut self) {
        // Closing the channel wakes the worker; it holds only a Weak, so it
        // can never be the thread running this Drop.
        self.inner.preflush_tx.lock().take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        // With the worker joined, this is the last Arc: Inner::drop runs
        // here, returning all slabs deterministically.
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Return every slab's pages (no readers can remain at drop time).
        let mut node = self.node.lock();
        for slab in node.slabs.drain(..).flatten() {
            self.pages.free_pages(slab.raw.into_block());
        }
    }
}

/// Spin budget on a busy home slot before trying neighbours: slot
/// critical sections are a few dozen instructions, so a handful of
/// `spin_loop` hints usually outlasts the holder without burning a
/// timeslice.
const SLOT_SPIN: usize = 24;

impl Inner {
    /// The domain attachment (set once during construction; the accessor
    /// keeps the hot-path call sites to one Acquire load + unwrap).
    fn hook(&self) -> &DomainHandle {
        self.reclaim.get().expect("domain attached at construction")
    }

    /// Backend-generic blocking drain: every defer issued before this
    /// call is reusable when it returns.
    fn domain_synchronize(&self, expedited: bool) {
        let hook = self.hook();
        if expedited {
            hook.domain.synchronize_expedited();
        } else {
            hook.domain.synchronize();
        }
    }

    fn lock_node(&self) -> MutexGuard<'_, Node> {
        if let Some(guard) = self.node.try_lock() {
            return guard;
        }
        // Acquire first, count after: recording between the failed
        // try_lock and the blocking acquire would let a relock race
        // double-count one contention event, and the counter bump below is
        // single-writer precisely because the node lock is already held.
        let guard = self.node.lock();
        self.stats.shard(0).node_lock_contended.bump();
        guard
    }

    /// Acquires a per-CPU slot for the hot paths. Fast path: an
    /// uncontended `try_lock` of the home slot. On contention: note the
    /// miss, spin briefly (the holder's critical section is short), then
    /// steal any other free slot, and only then block on the home slot.
    /// Returns the index actually locked so callers attribute stats (and
    /// pre-flush scheduling) to the right shard.
    fn lock_cpu(&self) -> (usize, MutexGuard<'_, CpuState>) {
        let home = self.cpus.current_cpu().0;
        if let Some(guard) = self.cpu_states[home].try_lock() {
            return (home, guard);
        }
        self.stats.shard(home).cpu_slot_misses.add_contended(1);
        // Time the slow path only: the fast path above stays clock-free.
        let t0 = if pbs_telemetry::enabled() {
            pbs_telemetry::now_nanos()
        } else {
            0
        };
        let acquired = self.lock_cpu_slow(home);
        if t0 != 0 {
            self.stats
                .slot_wait_ns
                .record(pbs_telemetry::now_nanos().saturating_sub(t0));
        }
        acquired
    }

    /// Contended continuation of [`lock_cpu`](Self::lock_cpu): spin on the
    /// home slot, steal any free neighbour, then block on home.
    fn lock_cpu_slow(&self, home: usize) -> (usize, MutexGuard<'_, CpuState>) {
        for _ in 0..SLOT_SPIN {
            std::hint::spin_loop();
            if let Some(guard) = self.cpu_states[home].try_lock() {
                return (home, guard);
            }
        }
        let n = self.cpu_states.len();
        for offset in 1..n {
            let idx = (home + offset) % n;
            if let Some(guard) = self.cpu_states[idx].try_lock() {
                return (idx, guard);
            }
        }
        (home, self.cpu_states[home].lock())
    }

    fn note_reclaimed(&self, n: usize) {
        if n > 0 {
            let prev = self.deferred_outstanding.fetch_sub(n, Ordering::Relaxed);
            // Downward pressure transitions happen here, as the backlog
            // drains. Gauge/counter only — no ring event, because reclaim
            // runs under varying lock contexts and lanes are single-writer.
            self.update_pressure(prev.saturating_sub(n));
        }
    }

    /// Folds the current backlog into the pressure gauge. Returns the
    /// transition if this caller won it (see `CacheStats::update_pressure`).
    fn update_pressure(&self, outstanding: usize) -> Option<(usize, usize)> {
        self.stats.update_pressure(
            outstanding,
            self.config.soft_watermark,
            self.config.hard_watermark,
        )
    }

    /// Post-defer governor actions, run with no locks held.
    ///
    /// An *upward* transition nudges the grace-period machinery once with
    /// an expedited drive (soft response: the backlog is usually waiting on
    /// epoch advances, not on CPU time). While the gauge sits at the hard
    /// level, every freeing thread additionally helps reclaim — the defer
    /// producers are throttled to the reclaim rate instead of growing the
    /// backlog without bound.
    fn apply_backpressure(&self, transition: Option<(usize, usize)>) {
        if let Some((from, to)) = transition {
            if to > from {
                self.hook().domain.expedite();
            }
        }
        if self.stats.pressure_level.load(Ordering::Relaxed) >= 2 {
            self.assist_reclaim();
        }
    }

    /// Caller-assisted reclaim (hard pressure level): merge this slot's
    /// grace-period-complete latent objects and sweep the node's pending
    /// list. Deliberately does *not* block on a grace period — assists must
    /// stay short since they run on the free path.
    fn assist_reclaim(&self) {
        self.stats.assisted_merges.fetch_add(1, Ordering::Relaxed);
        let hook = self.hook();
        if hook.robust {
            // Robust backends hold the backlog themselves: one bounded
            // progress step (scan / seal + release) is the assist.
            hook.domain.advance();
            return;
        }
        let (cpu_idx, mut cpu) = self.lock_cpu();
        self.merge_caches(cpu_idx, &mut cpu, 0);
        drop(cpu);
        let epoch = self.rcu.current_epoch();
        let mut node = self.lock_node();
        self.note_reclaimed(node.reclaim_pending(epoch));
    }

    /// Wire code of the fast path's current engine for trace payloads:
    /// 1 = rseq, 2 = slot-lock emulation.
    fn fastpath_engine_code(&self) -> u64 {
        match self.fast.engine() {
            pbs_percpu::Engine::Rseq => 1,
            pbs_percpu::Engine::Locks => 2,
        }
    }

    /// Traces the engine the fast path selected at construction (`a` =
    /// engine code, 0 when built without a fast path; `b` = per-CPU slot
    /// capacity). Runs before the cache is shared, so the node lane has
    /// no other writer yet.
    fn record_fastpath_engine(&self, cap: usize) {
        let code = if cap == 0 {
            0
        } else {
            self.fastpath_engine_code()
        };
        self.stats
            .record_node_event(EventKind::FastpathEngine, code, cap as u64);
    }

    /// Returns fast-drained object addresses to their slabs under the
    /// node lock and traces the drain. `disabling` distinguishes a
    /// toggle-off drain from a quiesce/OOM flush in the event payload.
    fn give_back_fast(&self, objs: &[usize], disabling: bool) {
        if objs.is_empty() {
            return;
        }
        let mut node = self.lock_node();
        for &addr in objs {
            // SAFETY: only pointers minted by this cache's `allocate` are
            // pushed onto the fast path, and `addr` was drained exactly
            // once; the node lock is held.
            let obj = ObjPtr::new(unsafe { NonNull::new_unchecked(addr as *mut u8) });
            let index = unsafe { node.resolve(obj, self.policy.slab_bytes) };
            node.slab_mut(index).raw.give_back(obj);
            node.relist(index);
        }
        self.stats.record_node_event(
            EventKind::FastpathDrain,
            objs.len() as u64,
            disabling as u64,
        );
        self.shrink(&mut node);
    }

    /// Drains fast-parked objects to their slabs (quiesce/OOM paths).
    /// The fast path stays enabled and refills organically afterwards.
    fn flush_fastpath(&self) {
        let drained = self.fast.drain();
        self.give_back_fast(&drained, false);
    }

    /// Runtime fast-path toggle: disabling drains parked objects back to
    /// their slabs so the switchover is leak-free.
    fn set_fastpath_enabled(&self, enabled: bool) {
        let drained = self.fast.set_enabled(enabled);
        self.give_back_fast(&drained, true);
        let _node = self.lock_node();
        self.stats.record_node_event(
            EventKind::FastpathToggle,
            self.fast.is_enabled() as u64,
            self.fastpath_engine_code(),
        );
    }

    /// Live engine switch; parked objects are preserved by the slot
    /// mode-word protocol, so nothing drains here.
    fn set_fastpath_engine(&self, engine: pbs_percpu::Engine) {
        self.fast.set_engine(engine);
        let _node = self.lock_node();
        self.stats.record_node_event(
            EventKind::FastpathToggle,
            self.fast.is_enabled() as u64,
            self.fastpath_engine_code(),
        );
    }

    /// MERGE_CACHES wrapper that maintains the outstanding-deferred count,
    /// records the defer→reusable delay of each merged object, and traces
    /// the merge. `cpu_idx` is the slot whose lock the caller holds — it
    /// picks the stats shard's trace lane (single-writer under that lock).
    /// `now_hint` forwards a clock value the caller already read (0 =
    /// none), so tracing costs at most one clock read per operation.
    fn merge_caches(&self, cpu_idx: usize, cpu: &mut CpuState, now_hint: u64) -> usize {
        let now = if now_hint != 0 {
            now_hint
        } else if pbs_telemetry::enabled() {
            pbs_telemetry::now_nanos()
        } else {
            0
        };
        let merged = cpu.merge_caches(
            self.rcu.current_epoch(),
            self.policy.object_cache_size,
            |obj, queued_ns| {
                pbs_telemetry::site::note_reclaimed(obj.addr());
                if now != 0 && queued_ns != 0 {
                    self.stats
                        .defer_delay_ns
                        .record(now.saturating_sub(queued_ns));
                }
            },
        );
        self.note_reclaimed(merged);
        if merged > 0 {
            // Reuse the clock read from the delay samples above.
            self.stats.ring.record_at(
                cpu_idx,
                now,
                EventKind::LatentMerge,
                self.stats.id(),
                merged as u64,
                cpu.latent.len() as u64,
            );
        }
        merged
    }

    /// MALLOC (Algorithm lines 1-12 and 29-33), fronted by the zero-atomic
    /// per-CPU fast path: an uncontended hit takes no lock and performs no
    /// atomic RMW (its stats fold into the snapshot from thread-local
    /// counters).
    fn allocate(&self) -> Result<ObjPtr, AllocError> {
        if let FastPop::Hit(addr) = self.fast.pop() {
            // SAFETY: fast-parked addresses originate from `free` on this
            // cache, each handed out exactly once by the commit protocol.
            return Ok(ObjPtr::new(unsafe { NonNull::new_unchecked(addr as *mut u8) }));
        }
        let mut attempts = 0;
        let mut counted_request = false;
        loop {
            let (cpu_idx, mut cpu) = self.lock_cpu();
            // All shard bumps below are single-writer: this thread holds
            // the slot lock matching the shard.
            let shard = self.stats.shard(cpu_idx);
            if !counted_request {
                shard.alloc_requests.bump();
                counted_request = true;
            }
            cpu.allocs_since += 1;
            if let Some(obj) = cpu.obj_cache.pop() {
                shard.cache_hits.bump();
                shard.live_delta.bump_add();
                self.record_oom_recovery(cpu_idx, attempts);
                return Ok(obj);
            }
            // Lines 7-11: merge grace-period-complete latent objects and
            // retry before touching the node lists.
            if self.merge_caches(cpu_idx, &mut cpu, 0) > 0 {
                if let Some(obj) = cpu.obj_cache.pop() {
                    shard.latent_hits.bump();
                    shard.live_delta.bump_add();
                    self.record_oom_recovery(cpu_idx, attempts);
                    return Ok(obj);
                }
            }
            match self.refill(cpu_idx, &mut cpu) {
                Ok(obj) => {
                    shard.live_delta.bump_add();
                    self.record_oom_recovery(cpu_idx, attempts);
                    return Ok(obj);
                }
                Err(e) => {
                    // Lines 31-33: recover via the ladder instead of
                    // failing, while deferred objects remain. Release the
                    // CPU lock first so writers on this slot can progress.
                    drop(cpu);
                    if attempts >= self.config.oom_retries
                        || self.deferred_outstanding.load(Ordering::Relaxed) == 0
                    {
                        return Err(e);
                    }
                    attempts += 1;
                    self.run_recovery_stage(attempts);
                }
            }
        }
    }

    /// Attributes a successful allocation that needed the OOM ladder to the
    /// rung that unblocked it (`attempts` = ladder entries so far; 0 = the
    /// fast path, nothing to record). Caller holds the `cpu_idx` slot lock,
    /// which owns that trace lane.
    fn record_oom_recovery(&self, cpu_idx: usize, attempts: usize) {
        if attempts == 0 {
            return;
        }
        let stage = attempts.min(3);
        self.stats.record_oom_recovery(stage);
        self.stats.ring.record(
            cpu_idx,
            EventKind::OomRecovery,
            self.stats.id(),
            stage as u64,
            1,
        );
    }

    /// One rung of the staged OOM recovery ladder (§4.2, *Handling memory
    /// pressure*, hardened): escalate from cheap-and-local to
    /// grace-period-blocking to backoff-and-retry. Every entry counts as an
    /// `oom_wait` — the ladder only runs when allocation actually failed.
    fn run_recovery_stage(&self, attempt: usize) {
        self.stats.oom_waits.fetch_add(1, Ordering::Relaxed);
        match attempt {
            // Stage 1: flush this thread's slot without waiting for any
            // grace period. Often enough when the backlog is merely parked
            // in the latent cache past its grace period.
            1 => self.oom_flush_local(),
            // Stage 2: drive the grace period (expedited) and reclaim
            // everything reclaimable across all slots.
            2 => self.emergency_reclaim(true),
            // Stage 3+: the backlog is waiting on something slower (a
            // pinned reader, a wedged epoch); back off so it can make
            // progress, then sweep again.
            n => {
                let shift = (n - 3).min(4) as u32;
                std::thread::sleep(std::time::Duration::from_micros(50 << shift));
                self.emergency_reclaim(false);
            }
        }
    }

    /// Ladder stage 1: merge and flush this thread's slot and sweep the
    /// node's pending list at the current epoch — no grace-period wait.
    fn oom_flush_local(&self) {
        self.flush_fastpath();
        let (cpu_idx, mut cpu) = self.lock_cpu();
        self.merge_caches(cpu_idx, &mut cpu, 0);
        let moved: Vec<LatentEntry> = cpu.latent.drain(..).collect();
        drop(cpu);
        self.defer_to_slabs(&moved);
        let epoch = self.rcu.current_epoch();
        let mut node = self.lock_node();
        self.note_reclaimed(node.reclaim_pending(epoch));
        self.shrink(&mut node);
    }

    /// REFILL_OBJECT_CACHE (Algorithm lines 13-30): partial refill sized by
    /// pending deferred objects, deferred-aware slab selection, growing the
    /// cache as a last resort.
    ///
    /// Returns the object the caller asked for; `Ok` *proves* the cache
    /// produced one rather than leaving the caller to pop-and-hope. Every
    /// failure — including injected page-allocator faults — comes back as
    /// `Err`, never an unwind: the locks held here (`parking_lot`) do not
    /// poison, and nothing on this path panics on OOM.
    fn refill(&self, cpu_idx: usize, cpu: &mut CpuState) -> Result<ObjPtr, AllocError> {
        // Fault hook: an injected `fastpath.disable` flips the per-CPU
        // fast path live (drain-on-disable), so chaos runs exercise the
        // switchover under load. Consulted before any node lock: the
        // toggle takes it internally.
        if let Some(faults) = self.pages.faults() {
            if faults.should_fail(pbs_fault::site::FASTPATH_DISABLE) {
                self.set_fastpath_enabled(!self.fast.is_enabled());
            }
        }
        self.stats.shard(cpu_idx).refills.bump();
        let latent_count = if self.config.partial_refill {
            cpu.latent.len()
        } else {
            0
        };
        // Partial refill (line 14): refill o − d objects. Floor the batch
        // at a quarter cache so a latent cache full of objects still
        // inside their grace period cannot degrade refills to single
        // objects; any overflow when those objects later merge is absorbed
        // by the proportional flush.
        let want_total = self
            .policy
            .object_cache_size
            .saturating_sub(latent_count)
            .max(self.policy.object_cache_size / 4)
            .max(1);
        if want_total < self.policy.object_cache_size {
            self.stats.shard(cpu_idx).partial_refills.bump();
        }
        let mut node = self.lock_node();
        let epoch = self.rcu.current_epoch();
        // Merge grace-period-complete latent-slab objects back into their
        // slabs first (§4.1), so refill reuses them instead of growing.
        self.note_reclaimed(node.reclaim_pending(epoch));
        let mut want = want_total;
        while want > 0 {
            let index = match self.select_slab(&mut node, epoch, false) {
                Some(i) => i,
                // Growing is for satisfying the demanded object, not for
                // topping up the batch: once the cache holds anything,
                // stop rather than grow (otherwise an exactly-full heap
                // gains a slab on every boundary refill).
                None if !cpu.obj_cache.is_empty() => break,
                None => match self.grow(&mut node) {
                    Ok(i) => i,
                    Err(e) => {
                        // Last resort before failing: slabs we skipped
                        // because most of their objects are deferred
                        // ("unless it needs to grow the slab cache").
                        match self.select_slab(&mut node, epoch, true) {
                            Some(i) => i,
                            None => return Err(e.into()),
                        }
                    }
                },
            };
            let slab = node.slab_mut(index);
            let taken = slab.raw.take(want, &mut cpu.obj_cache);
            want -= taken;
            node.relist(index);
            if taken == 0 {
                // Defensive: a selected slab must yield objects; avoid
                // spinning if it did not.
                break;
            }
        }
        match cpu.obj_cache.pop() {
            Some(obj) => Ok(obj),
            None => Err(AllocError::OutOfMemory),
        }
    }

    /// Slab selection for refill (Algorithm lines 17-21 plus the Figure 5
    /// fragmentation optimization). Scans at most `slab_scan_window` slabs
    /// of the partial list; lazily reclaims completed deferred objects of
    /// every slab it inspects.
    fn select_slab(&self, node: &mut Node, epoch: u64, allow_deferred_heavy: bool) -> Option<usize> {
        let window = self.config.slab_scan_window;
        // Partial list first.
        let partial: Vec<usize> = node
            .lists
            .list(ListKind::Partial)
            .iter()
            .take(window)
            .copied()
            .collect();
        let mut best: Option<(usize, (usize, usize))> = None;
        for index in partial {
            let slab = node.slab_mut(index);
            self.note_reclaimed(slab.reclaim_completed(epoch));
            let free = slab.raw.free_count();
            let allocated = slab.raw.allocated_count();
            let deferred = slab.deferred.len();
            if free == 0 {
                node.relist(index);
                continue;
            }
            if !self.config.deferred_aware_selection {
                // Baseline behaviour: first usable partial slab.
                return Some(index);
            }
            // Skip slabs whose allocated objects are mostly deferred: the
            // whole slab is likely to become free (returnable) soon.
            if !allow_deferred_heavy && allocated > 0 && deferred * 4 >= allocated * 3 {
                continue;
            }
            // Minimize total fragmentation: prefer slabs with no deferred
            // objects, then the fullest candidate (best-fit keeps sparse
            // slabs draining toward free).
            let key = (deferred, free);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((index, key));
            }
        }
        if let Some((index, _)) = best {
            return Some(index);
        }
        // Free list next (lines 20-21); prefer slabs without pending
        // deferred objects — slabs that are entirely "about to be free"
        // should be left alone so their pages can be returned.
        let free_list: Vec<usize> = node.lists.list(ListKind::Free).to_vec();
        let mut fallback = None;
        for index in free_list {
            let slab = node.slab_mut(index);
            self.note_reclaimed(slab.reclaim_completed(epoch));
            if slab.raw.free_count() == 0 {
                node.relist(index);
                continue;
            }
            if slab.deferred.is_empty() {
                return Some(index);
            }
            if allow_deferred_heavy && fallback.is_none() {
                fallback = Some(index);
            }
        }
        fallback
    }

    /// GROW (line 29): allocates one slab from the page allocator.
    fn grow(&self, node: &mut Node) -> Result<usize, pbs_mem::OutOfMemory> {
        let block = self.pages.allocate_aligned_at(
            self.policy.slab_bytes,
            self.policy.slab_bytes,
            pbs_fault::site::PRUDENCE_GROW,
        )?;
        let color = node.next_color;
        node.next_color = node.next_color.wrapping_add(1);
        // The slab table index must be stamped into the header; reserve the
        // slot first.
        let index = node.free_slots.last().copied().unwrap_or(node.slabs.len());
        let slab = PrudentSlab::new(RawSlab::new(block, &self.policy, index, color));
        let actual = node.insert_slab(slab);
        debug_assert_eq!(actual, index);
        self.stats.record_grow();
        Ok(index)
    }

    /// Object-cache flush with the proportional-flush optimization (§4.2):
    /// the more deferred objects pending in the latent cache, the more
    /// objects are flushed, so the post-grace-period merge will fit.
    fn flush_obj_cache(&self, cpu_idx: usize, cpu: &mut CpuState) {
        if cpu.obj_cache.is_empty() {
            return;
        }
        self.stats.shard(cpu_idx).flushes.bump();
        let base_keep = self.policy.object_cache_size / 2;
        let keep = if self.config.proportional_flush {
            base_keep.saturating_sub(cpu.latent.len())
        } else {
            base_keep
        };
        let n = cpu.obj_cache.len().saturating_sub(keep);
        let excess: Vec<ObjPtr> = cpu.obj_cache.drain(..n).collect();
        self.return_objects_to_slabs(&excess);
    }

    /// Returns freed objects to their slabs and shrinks if warranted.
    fn return_objects_to_slabs(&self, objs: &[ObjPtr]) {
        let mut node = self.lock_node();
        for &obj in objs {
            // SAFETY: flush only sees pointers previously allocated from
            // this cache; the node lock is held.
            let index = unsafe { node.resolve(obj, self.policy.slab_bytes) };
            node.slab_mut(index).raw.give_back(obj);
            node.relist(index);
        }
        self.shrink(&mut node);
    }

    /// Moves deferred objects into their latent slabs, with slab
    /// pre-movement (Algorithm lines 49-59). Entries' defer-time clocks
    /// are dropped here: latent-slab objects rejoin circulation through
    /// whole-slab reclamation, which has no single defer to attribute.
    fn defer_to_slabs(&self, objs: &[LatentEntry]) {
        if objs.is_empty() {
            return;
        }
        let mut node = self.lock_node();
        for &(obj, gp, _) in objs {
            // SAFETY: deferred objects come from this cache; node lock held.
            let index = unsafe { node.resolve(obj, self.policy.slab_bytes) };
            let slab = node.slab_mut(index);
            let obj_index = slab.raw.index_of(obj);
            let first_pending = slab.deferred.is_empty();
            slab.deferred.push_back((obj_index, gp));
            if first_pending {
                node.pending.push_back(index);
            }
            if node.relist(index) {
                // Single-writer: the node lock is held on every path here
                // (and it also owns the node trace lane).
                self.stats.shard(0).pre_movements.bump();
                self.stats
                    .record_node_event(EventKind::SlabPremove, index as u64, gp.raw_epoch());
            }
        }
        self.shrink(&mut node);
    }

    /// SHRINK (line 59): returns fully-free slabs beyond the threshold to
    /// the page allocator. Slabs pre-moved to the free list whose deferred
    /// objects are still inside a grace period are *not* releasable yet.
    ///
    /// The threshold "acts with caution by considering the number of
    /// deferred objects waiting for reclamation" (§3.1): objects that will
    /// be reusable after the grace period are about to be demanded again,
    /// so their slabs are kept rather than churned through the page
    /// allocator. When the deferred backlog drains, the threshold falls
    /// back to the baseline heuristic and memory is returned.
    fn shrink(&self, node: &mut Node) {
        let pending_slabs = self
            .deferred_outstanding
            .load(Ordering::Relaxed)
            .div_ceil(self.policy.objects_per_slab);
        // Proportional slack (an emptiness threshold in the Hoard spirit):
        // under a sustained defer/alloc cycle the free list legitimately
        // oscillates by a grace period's worth of slabs, so keep a
        // fraction of the cache as slack instead of churning those slabs
        // through the page allocator. Repeated shrinks still converge to
        // `free_slabs_limit` once the cache goes idle.
        let total_slabs = node.slabs.len() - node.free_slots.len();
        let limit = self
            .policy
            .free_slabs_limit
            .max(total_slabs / 2)
            + pending_slabs;
        if node.lists.len(ListKind::Free) <= limit {
            node.shrink_excess_since = None;
            return;
        }
        // Temporal hysteresis: a reclamation burst can briefly push the
        // free list over the limit even though the very next grace window
        // of allocations will re-demand those slabs. Only release slabs
        // once the excess has persisted for a full grace period — the same
        // prudence argument (§3.1) applied to pages instead of objects. An
        // idle cache still converges: quiesce advances epochs until the
        // stamp completes.
        match node.shrink_excess_since {
            None => {
                node.shrink_excess_since = Some(self.rcu.gp_state());
                return;
            }
            Some(since) if !since.is_completed_at(self.rcu.current_epoch()) => return,
            Some(_) => node.shrink_excess_since = None,
        }
        let epoch = self.rcu.current_epoch();
        let candidates: Vec<usize> = node.lists.list(ListKind::Free).to_vec();
        for index in candidates {
            if node.lists.len(ListKind::Free) <= limit {
                break;
            }
            let slab = node.slab_mut(index);
            self.note_reclaimed(slab.reclaim_completed(epoch));
            if slab.releasable() {
                let slab = node.remove_slab(index);
                self.pages.free_pages(slab.raw.into_block());
                self.stats.record_shrink();
            }
        }
    }

    /// Schedules an idle-time pre-flush for a CPU slot (lines 41-43).
    fn schedule_preflush(&self, cpu_idx: usize, cpu: &mut CpuState) {
        if !self.config.preflush || cpu.preflush_pending {
            return;
        }
        if let Some(tx) = self.preflush_tx.lock().as_ref() {
            cpu.preflush_pending = true;
            let _ = tx.send(cpu_idx);
        }
    }

    /// Latent-cache pre-flush, run by the idle worker (§4.2).
    ///
    /// Merges any grace-period-complete objects first (the paper notes this
    /// is done opportunistically during pre-flush), then moves excess
    /// deferred objects to their latent slabs. When the recent allocation
    /// rate exceeds the free/defer rate the pre-flush is lazier (allocation
    /// will drain the object cache anyway).
    pub(crate) fn preflush(&self, cpu_idx: usize) {
        let mut cpu = self.cpu_states[cpu_idx].lock();
        cpu.preflush_pending = false;
        // Single-writer: only the pre-flush worker bumps this, and only
        // while holding the matching slot lock.
        self.stats.shard(cpu_idx).preflushes.bump();
        self.merge_caches(cpu_idx, &mut cpu, 0);
        let size = self.policy.object_cache_size;
        if cpu.total_cached() <= size {
            return;
        }
        let mut excess = cpu.total_cached() - size;
        if cpu.allocs_since > cpu.frees_since + cpu.defers_since {
            excess = excess.div_ceil(2);
        }
        cpu.allocs_since = 0;
        cpu.frees_since = 0;
        cpu.defers_since = 0;
        let n = excess.min(cpu.latent.len());
        let moved: Vec<LatentEntry> = cpu.latent.drain(..n).collect();
        self.stats.ring.record(
            cpu_idx,
            EventKind::LatentPreflush,
            self.stats.id(),
            moved.len() as u64,
            cpu.latent.len() as u64,
        );
        self.defer_to_slabs(&moved);
    }

    /// OOM deferral (lines 31-32): flush latent caches toward slabs, wait
    /// for a grace period (`expedited` drives it eagerly), reclaim
    /// everything reclaimable.
    fn emergency_reclaim(&self, expedited: bool) {
        self.flush_fastpath();
        self.domain_synchronize(expedited);
        // Push all per-CPU latent objects to their slabs so the sweep below
        // can free whole slabs.
        for (cpu_idx, state) in self.cpu_states.iter().enumerate() {
            let mut cpu = state.lock();
            self.merge_caches(cpu_idx, &mut cpu, 0);
            let moved: Vec<LatentEntry> = cpu.latent.drain(..).collect();
            drop(cpu);
            self.defer_to_slabs(&moved);
        }
        let epoch = self.rcu.current_epoch();
        let mut node = self.lock_node();
        let reclaimed = node.reclaim_pending(epoch);
        self.note_reclaimed(reclaimed);
        // Node lock held: the node lane is ours to write.
        self.stats
            .record_node_event(EventKind::OomDefer, reclaimed as u64, epoch);
        self.shrink(&mut node);
    }

    /// FREE_DEFERRED (Algorithm lines 34-51) plus backlog backpressure.
    fn free_deferred_inner(&self, obj: ObjPtr) {
        let hook = self.hook();
        if hook.robust {
            return self.free_deferred_robust(hook, obj);
        }
        let outstanding = self.deferred_outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        let transition = self.update_pressure(outstanding);
        let gp = self.rcu.gp_state(); // line 35
        // 0 = tracing disabled: merge skips the delay sample (same
        // convention as the baseline's callback stamp).
        let queued_ns = if pbs_telemetry::enabled() {
            pbs_telemetry::now_nanos()
        } else {
            0
        };
        let (cpu_idx, mut cpu) = self.lock_cpu();
        let shard = self.stats.shard(cpu_idx);
        shard.deferred_frees.bump();
        shard.live_delta.bump_sub();
        cpu.defers_since += 1;
        // Slot lock held: lane `cpu_idx` is ours to write. Disabled
        // tracing turns this into one Relaxed load and a branch. The
        // record reuses the defer stamp's clock read.
        self.stats.ring.record_at(
            cpu_idx,
            queued_ns,
            EventKind::LatentStamp,
            self.stats.id(),
            gp.raw_epoch(),
            cpu.latent.len() as u64,
        );
        if let Some((_, to)) = transition {
            self.stats.ring.record(
                cpu_idx,
                EventKind::PressureChange,
                self.stats.id(),
                to as u64,
                outstanding as u64,
            );
        }
        self.stamp_latent(cpu_idx, cpu, obj, gp, queued_ns);
        // Locks dropped: safe to expedite / assist without convoying the
        // slot behind a grace-period drive.
        self.apply_backpressure(transition);
    }

    /// Deferred free under a robust backend: the object skips the latent
    /// machinery entirely and enters the domain, which returns it through
    /// [`ReclaimClient::reclaim_addrs`] once no captured reader can hold
    /// it. Outstanding-count, pressure, and per-shard accounting stay
    /// identical to the epoch path so the watchdog/OOM governors and the
    /// comparison harnesses read the same gauges for every backend.
    fn free_deferred_robust(&self, hook: &DomainHandle, obj: ObjPtr) {
        let outstanding = self.deferred_outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        let transition = self.update_pressure(outstanding);
        let (cpu_idx, mut cpu) = self.lock_cpu();
        let shard = self.stats.shard(cpu_idx);
        shard.deferred_frees.bump();
        shard.live_delta.bump_sub();
        cpu.defers_since += 1;
        if let Some((_, to)) = transition {
            self.stats.ring.record(
                cpu_idx,
                EventKind::PressureChange,
                self.stats.id(),
                to as u64,
                outstanding as u64,
            );
        }
        // Drop the slot lock before entering the domain: a defer can
        // trigger a scan or batch seal whose delivery calls back into
        // `reclaim_addrs` (node lock) on this thread.
        drop(cpu);
        hook.domain.defer(hook.client, obj.addr());
        self.apply_backpressure(transition);
    }

    /// The slot-locked tail of [`free_deferred_inner`]: admit `obj` into
    /// the latent cache or move it (and any overflow) to its latent slab.
    /// Consumes the guard so every early return drops the slot lock.
    fn stamp_latent(
        &self,
        cpu_idx: usize,
        mut cpu: MutexGuard<'_, CpuState>,
        obj: ObjPtr,
        gp: GpState,
        queued_ns: u64,
    ) {
        if !self.config.latent_cache {
            drop(cpu);
            self.defer_to_slabs(&[(obj, gp, queued_ns)]);
            return;
        }
        let threshold = self.policy.object_cache_size;
        if cpu.latent.len() < threshold {
            // Fast path (lines 39-44).
            cpu.latent.push_back((obj, gp, queued_ns));
            if cpu.total_cached() > self.policy.object_cache_size {
                self.schedule_preflush(cpu_idx, &mut cpu);
            }
            return;
        }
        // Slow path (lines 45-51): make room, retry, else latent slab.
        // Flushing the object cache only helps by making room for the
        // merge below, so skip both when the oldest latent stamp is still
        // inside its grace period — nothing could merge, and the flush
        // would just ping-pong freshly refilled objects back through the
        // node lock (and on to slab grow/shrink churn).
        let mergeable = cpu
            .latent
            .front()
            .is_some_and(|&(_, gp, _)| gp.is_completed_at(self.rcu.current_epoch()));
        if mergeable {
            self.flush_obj_cache(cpu_idx, &mut cpu);
            self.merge_caches(cpu_idx, &mut cpu, queued_ns);
        }
        if cpu.latent.len() < threshold {
            cpu.latent.push_back((obj, gp, queued_ns));
        } else {
            // Move the older half of the latent cache to its latent slabs
            // in one node-lock acquisition, then admit the new object.
            // Per-object eviction would serialize sustained defer streams
            // on the node lock; batching keeps the amortized cost O(1)
            // while preserving the lines 49-51 semantics.
            let n = (threshold / 2 + 1).min(threshold);
            // Draining from the front keeps stamps non-decreasing, the
            // order latent slabs rely on.
            let moved: Vec<LatentEntry> = cpu.latent.drain(..n).collect();
            cpu.latent.push_back((obj, gp, queued_ns));
            self.stats.ring.record(
                cpu_idx,
                EventKind::LatentFlush,
                self.stats.id(),
                moved.len() as u64,
                cpu.latent.len() as u64,
            );
            drop(cpu);
            self.defer_to_slabs(&moved);
        }
    }

    fn quiesce(&self) {
        // Park nothing across a quiesce: fast-cached objects go back to
        // their slabs so peak/fragmentation measurements stay comparable.
        self.flush_fastpath();
        for _ in 0..64 {
            if self.deferred_outstanding.load(Ordering::Relaxed) == 0 {
                return;
            }
            self.domain_synchronize(false);
            for (cpu_idx, state) in self.cpu_states.iter().enumerate() {
                let mut cpu = state.lock();
                self.merge_caches(cpu_idx, &mut cpu, 0);
                let moved: Vec<LatentEntry> = cpu.latent.drain(..).collect();
                drop(cpu);
                self.defer_to_slabs(&moved);
            }
            let epoch = self.rcu.current_epoch();
            let mut node = self.lock_node();
            self.note_reclaimed(node.reclaim_pending(epoch));
        }
        debug_assert_eq!(
            self.deferred_outstanding.load(Ordering::Relaxed),
            0,
            "quiesce failed to drain deferred objects"
        );
    }
}

impl ReclaimClient for Inner {
    /// Domain delivery: the backend proved no captured reader can still
    /// hold these objects, so they go straight back to their slabs (the
    /// same motion as an object-cache flush). Runs with no domain locks
    /// held and never re-enters the domain.
    fn reclaim_addrs(&self, addrs: &[usize]) {
        if addrs.is_empty() {
            return;
        }
        {
            let mut node = self.lock_node();
            for &addr in addrs {
                // SAFETY: the domain only returns addresses this cache
                // deferred into it, each exactly once; the node lock is
                // held.
                let obj = ObjPtr::new(unsafe { NonNull::new_unchecked(addr as *mut u8) });
                let index = unsafe { node.resolve(obj, self.policy.slab_bytes) };
                node.slab_mut(index).raw.give_back(obj);
                node.relist(index);
            }
            self.shrink(&mut node);
        }
        self.note_reclaimed(addrs.len());
    }
}

impl ObjectAllocator for PrudenceCache {
    fn allocate(&self) -> Result<ObjPtr, AllocError> {
        self.inner.allocate()
    }

    unsafe fn free(&self, obj: ObjPtr) {
        let inner = &self.inner;
        // Zero-atomic fast path: park the object in this CPU's slot. Full
        // or disabled slots fall through to the slot-locked cache.
        if let FastPush::Pushed = inner.fast.push(obj.addr()) {
            return;
        }
        let (cpu_idx, mut cpu) = inner.lock_cpu();
        let shard = inner.stats.shard(cpu_idx);
        shard.frees.bump();
        shard.live_delta.bump_sub();
        cpu.frees_since += 1;
        cpu.obj_cache.push(obj);
        if cpu.obj_cache.len() > inner.policy.object_cache_size {
            inner.flush_obj_cache(cpu_idx, &mut cpu);
        }
    }

    unsafe fn free_deferred(&self, obj: ObjPtr) {
        if pbs_telemetry::enabled() {
            // Stamp before entering the allocator: a robust defer can scan
            // and reclaim on this same stack, and the domain-layer fallback
            // stamp (`note_deferred_if_untracked`) must lose to this one so
            // the report names the freeing call site, not the adapter.
            let hook = self.inner.hook();
            pbs_telemetry::site::note_deferred(
                obj.addr(),
                pbs_telemetry::site::intern(std::panic::Location::caller()),
                self.inner.policy.object_size,
                pbs_telemetry::site::backend_index(hook.domain.backend().label()),
            );
        }
        self.inner.free_deferred_inner(obj);
    }

    fn object_size(&self) -> usize {
        self.inner.policy.object_size
    }

    fn name(&self) -> &str {
        &self.inner.name
    }

    fn rcu(&self) -> &Arc<Rcu> {
        &self.inner.rcu
    }

    fn reclaim_domain(&self) -> Option<&Arc<dyn ReclamationDomain>> {
        Some(PrudenceCache::reclaim_domain(self))
    }

    fn stats(&self) -> CacheStatsSnapshot {
        self.inner.stats.snapshot_with_fastpath(
            self.inner.policy.object_size,
            self.inner.policy.slab_bytes,
            &self.inner.fast.snapshot(),
        )
    }

    fn telemetry(&self) -> pbs_telemetry::ComponentTelemetry {
        self.inner.stats.telemetry()
    }

    fn quiesce(&self) {
        self.inner.quiesce();
    }

    fn deferred_outstanding(&self) -> usize {
        PrudenceCache::deferred_outstanding(self)
    }

    fn fastpath_set_enabled(&self, enabled: bool) {
        self.inner.set_fastpath_enabled(enabled);
    }

    fn fastpath_enabled(&self) -> bool {
        self.inner.fast.is_enabled()
    }

    fn fastpath_set_engine(&self, engine: pbs_percpu::Engine) {
        self.inner.set_fastpath_engine(engine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_rcu::RcuConfig;

    fn cache(size: usize) -> (Arc<PrudenceCache>, Arc<PageAllocator>, Arc<Rcu>) {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let c = Arc::new(PrudenceCache::new(
            "t",
            size,
            PrudenceConfig::new(2),
            Arc::clone(&pages),
            Arc::clone(&rcu),
        ));
        (c, pages, rcu)
    }

    #[test]
    fn allocate_free_roundtrip() {
        let (c, _p, _r) = cache(64);
        let a = c.allocate().unwrap();
        let b = c.allocate().unwrap();
        assert_ne!(a, b);
        unsafe {
            c.free(a);
            c.free(b);
        }
        let s = c.stats();
        assert_eq!(s.alloc_requests, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.live_objects, 0);
    }

    #[test]
    fn deferred_objects_invisible_until_grace_period() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let c = PrudenceCache::new("t", 64, PrudenceConfig::new(1), pages, Arc::clone(&rcu));
        let reader = rcu.register();

        let a = c.allocate().unwrap();
        let guard = reader.read_lock();
        unsafe { c.free_deferred(a) };
        assert_eq!(c.deferred_outstanding(), 1);
        // With the reader pinned, `a` must never be handed out again.
        let objs: Vec<ObjPtr> = (0..c.policy().object_cache_size * 2)
            .map(|_| c.allocate().unwrap())
            .collect();
        assert!(objs.iter().all(|&o| o != a), "deferred object reused early");
        drop(guard);
        rcu.synchronize();
        // Now it becomes available via merge.
        let mut found = false;
        let mut more = Vec::new();
        for _ in 0..c.policy().object_cache_size * 2 {
            let o = c.allocate().unwrap();
            if o == a {
                found = true;
            }
            more.push(o);
        }
        assert!(found, "deferred object should be reusable after GP");
        for o in objs.into_iter().chain(more) {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn deferred_object_reused_after_grace_period_without_refill() {
        let (c, _p, rcu) = cache(512);
        let a = c.allocate().unwrap();
        unsafe { c.free_deferred(a) };
        rcu.synchronize();
        // Drain the object cache; once it is empty the latent merge (not a
        // refill) must hand `a` back.
        let mut held = Vec::new();
        let mut found = false;
        for _ in 0..2 * c.policy().object_cache_size {
            let o = c.allocate().unwrap();
            held.push(o);
            if o == a {
                found = true;
                break;
            }
        }
        assert!(found, "deferred object should come back via the latent merge");
        assert!(c.stats().latent_hits >= 1, "stats: {:?}", c.stats());
        for o in held {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn latent_cache_overflows_to_latent_slab() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        // Disable preflush so overflow must take the slow path.
        let cfg = PrudenceConfig::new(1).with_preflush(false);
        let c = PrudenceCache::new("t", 64, cfg, pages, Arc::clone(&rcu));
        let reader = rcu.register();
        let guard = reader.read_lock(); // hold the grace period open
        let n = c.policy().object_cache_size * 3;
        let objs: Vec<ObjPtr> = (0..n).map(|_| c.allocate().unwrap()).collect();
        for o in objs {
            unsafe { c.free_deferred(o) };
        }
        assert_eq!(c.deferred_outstanding(), n);
        drop(guard);
        c.quiesce();
        assert_eq!(c.deferred_outstanding(), 0);
        assert_eq!(c.stats().live_objects, 0);
    }

    #[test]
    fn quiesce_makes_everything_reusable() {
        let (c, pages, _r) = cache(256);
        let objs: Vec<ObjPtr> = (0..500).map(|_| c.allocate().unwrap()).collect();
        for o in objs {
            unsafe { c.free_deferred(o) };
        }
        c.quiesce();
        let before = c.stats();
        let again: Vec<ObjPtr> = (0..500).map(|_| c.allocate().unwrap()).collect();
        let after = c.stats();
        // Reclaimed objects are reusable: regrowth is allowed only for
        // slabs that quiesce's shrink legitimately returned to the page
        // allocator, plus the slack of objects parked in *other* CPU
        // slots' object caches — at exact heap capacity a slot whose own
        // cache ran dry cannot steal them and must grow instead.
        let parked_slack =
            (2 * c.policy().object_cache_size).div_ceil(c.policy().objects_per_slab) as u64;
        assert!(
            after.grows - before.grows <= after.shrinks + parked_slack,
            "grew more than it shrank: before={before:?} after={after:?}"
        );
        for o in again {
            unsafe { c.free(o) };
        }
        drop(c);
        assert_eq!(pages.used_bytes(), 0);
    }

    #[test]
    fn oom_deferral_reclaims_deferred_objects() {
        // Page budget fits ~6 slabs; with everything deferred, allocation
        // would OOM unless Prudence waits for the grace period (line 31).
        // The driver is parked out of reach so the background GP cannot
        // race the allocation loop and reclaim early — the *only* way
        // the deferred objects come back is the OOM ladder's expedited
        // grace period, which is exactly what this test pins.
        let policy = SizingPolicy::for_object_size(512);
        let pages = Arc::new(
            PageAllocator::builder()
                .limit_bytes(6 * policy.slab_bytes)
                .build(),
        );
        let rcu = Arc::new(Rcu::with_config(RcuConfig {
            driver_interval: std::time::Duration::from_secs(3600),
            ..RcuConfig::eager()
        }));
        let cfg = PrudenceConfig::new(1).with_preflush(false);
        let c = PrudenceCache::new("t", 512, cfg, pages, rcu);
        let per_slab = c.policy().objects_per_slab;
        let total = per_slab * 5;
        for round in 0..4 {
            let objs: Vec<ObjPtr> = (0..total)
                .map(|_| {
                    c.allocate()
                        .unwrap_or_else(|e| panic!("round {round}: {e}"))
                })
                .collect();
            for o in objs {
                unsafe { c.free_deferred(o) };
            }
        }
        let s = c.stats();
        assert!(s.oom_waits > 0, "expected OOM deferral to trigger: {s:?}");
        assert!(
            s.oom_recoveries_total() >= 1,
            "recovered allocations should be attributed to a ladder stage: {s:?}"
        );
        c.quiesce();
    }

    #[test]
    fn pressure_governor_tracks_backlog() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let cfg = PrudenceConfig::new(1)
            .with_preflush(false)
            .with_watermarks(4, 8);
        let c = PrudenceCache::new("t", 64, cfg, pages, Arc::clone(&rcu));
        let reader = rcu.register();
        let objs: Vec<ObjPtr> = (0..16).map(|_| c.allocate().unwrap()).collect();
        // Pin a reader so nothing can drain while the backlog builds.
        let guard = reader.read_lock();
        for &o in &objs {
            unsafe { c.free_deferred(o) };
        }
        let s = c.stats();
        assert_eq!(s.pressure_level, 2, "hard watermark crossed: {s:?}");
        assert!(s.pressure_transitions >= 2, "0→1→2 expected: {s:?}");
        assert!(
            s.assisted_merges >= 1,
            "hard-level frees must assist reclaim: {s:?}"
        );
        assert!(
            c.telemetry().count_of(EventKind::PressureChange) >= 2,
            "transitions should be traced"
        );
        drop(guard);
        c.quiesce();
        let s = c.stats();
        assert_eq!(s.pressure_level, 0, "gauge returns to nominal: {s:?}");
        assert_eq!(c.deferred_outstanding(), 0);
    }

    #[test]
    fn immediate_free_oom_propagates() {
        let pages = Arc::new(PageAllocator::builder().limit_bytes(4096 * 4).build());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let c = PrudenceCache::new("t", 2048, PrudenceConfig::new(1), pages, rcu);
        let mut objs = Vec::new();
        let err = loop {
            match c.allocate() {
                Ok(o) => objs.push(o),
                Err(e) => break e,
            }
        };
        assert_eq!(err, AllocError::OutOfMemory);
        for o in objs {
            unsafe { c.free(o) };
        }
    }

    #[test]
    fn concurrent_defer_and_alloc_stress() {
        let (c, _p, _r) = cache(64);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..3_000 {
                        let o = c.allocate().unwrap();
                        unsafe { o.as_ptr().write(0xAB) };
                        unsafe { c.free_deferred(o) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.quiesce();
        assert_eq!(c.stats().live_objects, 0);
        assert_eq!(c.deferred_outstanding(), 0);
    }

    #[test]
    fn stats_track_partial_refills() {
        let (c, _p, rcu) = cache(64);
        let size = c.policy().object_cache_size;
        // Put some deferred objects in the latent cache, then force a
        // refill: it should be partial.
        let objs: Vec<ObjPtr> = (0..size * 2).map(|_| c.allocate().unwrap()).collect();
        let reader = rcu.register();
        let guard = reader.read_lock();
        for &o in objs.iter().take(size / 2) {
            unsafe { c.free_deferred(o) };
        }
        // Exhaust the object cache to force a refill while latent is
        // non-empty and unmergeable (reader pinned).
        let mut extra = Vec::new();
        for _ in 0..size * 2 {
            extra.push(c.allocate().unwrap());
        }
        assert!(c.stats().partial_refills > 0, "stats: {:?}", c.stats());
        drop(guard);
        for o in objs.into_iter().skip(size / 2).chain(extra) {
            unsafe { c.free(o) };
        }
        c.quiesce();
    }

    #[test]
    fn preflush_moves_latent_to_slabs() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let c = PrudenceCache::new("t", 64, PrudenceConfig::new(1), pages, Arc::clone(&rcu));
        let reader = rcu.register();
        let guard = reader.read_lock();
        let size = c.policy().object_cache_size;
        // Fill the object cache AND the latent cache so total > size:
        // allocate 2×size, return half immediately (fills the object
        // cache), defer the other half (fills latent and trips line 41).
        let objs: Vec<ObjPtr> = (0..2 * size).map(|_| c.allocate().unwrap()).collect();
        for &o in &objs[..size] {
            unsafe { c.free(o) };
        }
        for &o in &objs[size..] {
            unsafe { c.free_deferred(o) };
        }
        // Give the worker a moment.
        for _ in 0..100 {
            if c.stats().preflushes > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(c.stats().preflushes > 0, "preflush never ran");
        drop(guard);
        c.quiesce();
    }

    #[test]
    fn telemetry_traces_latent_lifecycle() {
        let (c, _p, rcu) = cache(64);
        let a = c.allocate().unwrap();
        unsafe { c.free_deferred(a) };
        rcu.synchronize();
        // Drain until the latent merge returns `a`.
        let mut held = Vec::new();
        for _ in 0..2 * c.policy().object_cache_size {
            held.push(c.allocate().unwrap());
        }
        let t = c.telemetry();
        assert!(
            t.count_of(pbs_telemetry::EventKind::LatentStamp) >= 1,
            "missing stamp event: {:?}",
            t.event_counts
        );
        assert!(
            t.count_of(pbs_telemetry::EventKind::LatentMerge) >= 1,
            "missing merge event: {:?}",
            t.event_counts
        );
        assert!(
            t.count_of(pbs_telemetry::EventKind::SlabGrow) >= 1,
            "missing grow event: {:?}",
            t.event_counts
        );
        let delay = t.histogram("defer_delay_ns").expect("defer_delay_ns");
        assert!(delay.count >= 1, "defer delay not recorded: {delay:?}");
        for o in held {
            unsafe { c.free(o) };
        }
        c.quiesce();
    }

    #[test]
    fn drop_joins_worker_and_returns_pages() {
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        {
            let c = PrudenceCache::new(
                "t",
                128,
                PrudenceConfig::new(2),
                Arc::clone(&pages),
                rcu,
            );
            let objs: Vec<ObjPtr> = (0..100).map(|_| c.allocate().unwrap()).collect();
            for o in objs {
                unsafe { c.free_deferred(o) };
            }
            c.quiesce();
        }
        assert_eq!(pages.used_bytes(), 0);
    }

    fn robust_cache(
        backend: pbs_rcu::reclaim::ReclaimBackend,
    ) -> (Arc<PrudenceCache>, Arc<PageAllocator>, Arc<Rcu>) {
        use pbs_rcu::reclaim::{domain_for, ReclaimConfig};
        let pages = Arc::new(PageAllocator::new());
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = domain_for(Arc::clone(&rcu), backend, ReclaimConfig::aggressive());
        let c = Arc::new(PrudenceCache::with_domain(
            "t",
            64,
            PrudenceConfig::new(2),
            Arc::clone(&pages),
            domain,
        ));
        (c, pages, rcu)
    }

    #[test]
    fn robust_backends_bound_garbage_under_a_stalled_reader() {
        use pbs_rcu::reclaim::ReclaimBackend;
        for backend in [ReclaimBackend::Hp, ReclaimBackend::Hyaline] {
            let (c, pages, rcu) = robust_cache(backend);
            let reader = rcu.register();
            let guard = reader.read_lock();
            let objs: Vec<ObjPtr> = (0..512).map(|_| c.allocate().unwrap()).collect();
            for o in objs {
                unsafe { c.free_deferred(o) };
            }
            // Give the hyaline ejector its window (aggressive: 2ms), then
            // one progress step. The reader is STILL pinned.
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.reclaim_domain().advance();
            let outstanding = c.deferred_outstanding();
            assert!(
                outstanding <= 128,
                "{backend}: stalled reader pinned {outstanding} objects"
            );
            // Epoch in the same position wedges at 512 (see
            // `deferred_objects_invisible_until_grace_period`).
            c.quiesce();
            assert_eq!(c.deferred_outstanding(), 0, "{backend}: quiesce under pin");
            drop(guard);
            drop(c);
            assert_eq!(pages.used_bytes(), 0, "{backend}: pages leaked");
        }
    }

    #[test]
    fn epoch_domain_cache_matches_plain_construction() {
        // `new` and `with_domain(EpochDomain)` are the same cache: the
        // latent machinery stays in charge and quiesce drains through it.
        let (c, _p, rcu) = cache(64);
        assert_eq!(
            c.reclaim_domain().backend(),
            pbs_rcu::reclaim::ReclaimBackend::Epoch
        );
        let a = c.allocate().unwrap();
        unsafe { c.free_deferred(a) };
        assert_eq!(c.deferred_outstanding(), 1);
        rcu.synchronize();
        c.quiesce();
        assert_eq!(c.deferred_outstanding(), 0);
    }
}
