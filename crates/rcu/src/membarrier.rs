//! Asymmetric memory barrier for the read-side pin protocol.
//!
//! The read-side fast path publishes its pin with a plain `Release` store;
//! something must still provide the StoreLoad ordering between that store
//! and the critical-section loads that follow it, or the grace-period
//! advancer can scan past a pin still sitting in the reader's store buffer
//! while the reader's (reordered) loads dereference memory the advancer
//! then reclaims. Two sound ways to get that ordering:
//!
//! * **Asymmetric** (the urcu "memb" flavour): readers issue only a
//!   compiler fence; the advancer calls
//!   `membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)` before trusting its
//!   scan, which IPIs every CPU running this process and imposes a full
//!   barrier at a serialization point in each thread's instruction
//!   stream. Either a reader's pin store retired before that point (the
//!   scan sees it and the advance is refused) or it did not — in which
//!   case the reader's critical-section loads also re-execute after the
//!   barrier and therefore observe every unlink that preceded the
//!   reclamation decision, so they cannot find the reclaimed object.
//! * **Fallback**: readers issue a full `SeqCst` fence after every
//!   outermost pin, pairing with the advancer's pre-scan `SeqCst` fence —
//!   the classic symmetric SMR protocol.
//!
//! Which mode is in force is decided once per process, at the first query:
//! registration via `MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED` either
//! succeeds (kernel ≥ 4.14 on a supported arch) and every domain runs
//! asymmetric, or it fails and every reader pays the fence. The decision
//! never changes afterwards, so readers and advancers can never disagree
//! about who carries the ordering burden.
//!
//! The build environment has no crates registry (so no `libc`); the
//! syscall is issued directly via inline asm on the architectures we
//! support and reported unavailable elsewhere. Miri cannot execute
//! syscalls, so it always exercises the fallback protocol — which is the
//! one whose weak-memory behaviours Miri can actually explore.

use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const ASYMMETRIC: u8 = 1;
const FALLBACK: u8 = 2;

static STRATEGY: AtomicU8 = AtomicU8::new(UNDECIDED);

/// Whether readers may elide the hardware fence after pinning. Decided on
/// first call (by whichever side asks first) and constant thereafter.
#[inline]
pub(crate) fn readers_elide_fence() -> bool {
    match STRATEGY.load(Ordering::Relaxed) {
        ASYMMETRIC => true,
        FALLBACK => false,
        _ => decide(),
    }
}

#[cold]
fn decide() -> bool {
    let asymmetric = sys::register();
    // compare_exchange so concurrent first callers agree even if the
    // syscall raced (register is idempotent; both would get the same
    // answer, but take no chances).
    let decided = if asymmetric { ASYMMETRIC } else { FALLBACK };
    match STRATEGY.compare_exchange(UNDECIDED, decided, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => asymmetric,
        Err(prev) => prev == ASYMMETRIC,
    }
}

/// Forces the fallback (symmetric-fence) protocol for the whole process,
/// for fault-injection and portability testing. Returns `true` if the
/// process is now in fallback mode; `false` means the asymmetric protocol
/// was already decided (readers are eliding fences, so flipping would be
/// unsound — the decision is immutable once made).
pub(crate) fn force_fallback() -> bool {
    match STRATEGY.compare_exchange(UNDECIDED, FALLBACK, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => true,
        Err(prev) => prev == FALLBACK,
    }
}

/// The advancer's side of the asymmetric bargain: a process-wide expedited
/// barrier, issued after its own `SeqCst` fence and before the registry
/// scan. A no-op in fallback mode (readers already fence themselves).
///
/// # Panics
///
/// Panics if the expedited barrier fails after registration succeeded:
/// readers have already been told to skip their fences, so continuing
/// without the barrier would be unsound — and the kernel contract is that
/// `PRIVATE_EXPEDITED` cannot fail once registered.
pub(crate) fn heavy_barrier() {
    if readers_elide_fence() && !sys::barrier() {
        panic!("membarrier(PRIVATE_EXPEDITED) failed after successful registration");
    }
}

#[cfg(all(target_os = "linux", not(miri), any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    #[cfg(target_arch = "x86_64")]
    const SYS_MEMBARRIER: i64 = 324;
    #[cfg(target_arch = "aarch64")]
    const SYS_MEMBARRIER: i64 = 283;

    const CMD_PRIVATE_EXPEDITED: i64 = 1 << 3;
    const CMD_REGISTER_PRIVATE_EXPEDITED: i64 = 1 << 4;

    #[cfg(target_arch = "x86_64")]
    fn membarrier(cmd: i64) -> i64 {
        let ret: i64;
        // SAFETY: membarrier(2) takes (cmd, flags, cpu_id) and touches no
        // user memory; rcx/r11 are the registers the syscall instruction
        // clobbers.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MEMBARRIER => ret,
                in("rdi") cmd,
                in("rsi") 0i64, // flags
                in("rdx") 0i64, // cpu_id (unused without the CPU flag)
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn membarrier(cmd: i64) -> i64 {
        let ret: i64;
        // SAFETY: as above; aarch64 passes the syscall number in x8 and
        // returns in x0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") SYS_MEMBARRIER,
                inlateout("x0") cmd => ret,
                in("x1") 0i64,
                in("x2") 0i64,
                options(nostack),
            );
        }
        ret
    }

    /// Registers the process for private expedited barriers. Failure (old
    /// kernel, seccomp, nommu) selects the fallback protocol.
    pub(super) fn register() -> bool {
        membarrier(CMD_REGISTER_PRIVATE_EXPEDITED) == 0
    }

    /// Issues a private expedited barrier; `true` on success.
    pub(super) fn barrier() -> bool {
        membarrier(CMD_PRIVATE_EXPEDITED) == 0
    }
}

#[cfg(not(all(target_os = "linux", not(miri), any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    pub(super) fn register() -> bool {
        false
    }

    pub(super) fn barrier() -> bool {
        // Unreachable: `heavy_barrier` only calls this when registration
        // succeeded, which it never does here.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_is_stable_and_barrier_matches() {
        let first = readers_elide_fence();
        for _ in 0..4 {
            assert_eq!(readers_elide_fence(), first, "strategy changed");
            // Must not panic in either mode: asymmetric issues a real
            // barrier, fallback is a no-op.
            heavy_barrier();
        }
    }

    #[cfg(all(target_os = "linux", not(miri), target_arch = "x86_64"))]
    #[test]
    fn linux_x86_64_supports_expedited_membarrier() {
        // The CI and dev kernels are all ≥ 4.14; if this starts failing
        // the read side silently loses its fast path, so surface it.
        assert!(
            readers_elide_fence(),
            "expected membarrier(PRIVATE_EXPEDITED) support on this kernel"
        );
    }
}
