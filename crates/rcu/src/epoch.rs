//! Epoch algebra: global epoch, per-thread pin records, grace-period states.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of epoch advances that must elapse after a retire before the
/// retired object is safe to reuse (the classic three-epoch rule of
/// epoch-based reclamation).
pub(crate) const GRACE_EPOCHS: u64 = 2;

/// Opaque snapshot of the grace-period state at the moment an object was
/// deferred for freeing.
///
/// This is the integration interface between the synchronization mechanism
/// and the Prudence allocator (paper §4): the allocator stamps each deferred
/// object with a `GpState` and later asks [`Rcu::poll`] whether the grace
/// period for that state has completed.
///
/// `GpState` is ordered: a smaller state becomes safe no later than a larger
/// one, so a container of deferred objects only needs to track its maximum.
///
/// [`Rcu::poll`]: crate::Rcu::poll
///
/// # Example
///
/// ```
/// use pbs_rcu::Rcu;
///
/// let rcu = Rcu::new();
/// let early = rcu.gp_state();
/// rcu.synchronize();
/// let late = rcu.gp_state();
/// assert!(early <= late);
/// assert!(rcu.poll(early));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpState(pub(crate) u64);

impl GpState {
    /// The raw epoch the state was captured at. Exposed for diagnostics and
    /// tests; treat as opaque otherwise.
    pub fn raw_epoch(&self) -> u64 {
        self.0
    }

    /// Whether this state's grace period has completed given a global epoch
    /// obtained from [`Rcu::current_epoch`].
    ///
    /// This is the batch-friendly form of [`Rcu::poll`]: the Prudence
    /// allocator reads the epoch once and checks many stamped objects
    /// against it (merging a latent cache touches hundreds of stamps).
    ///
    /// [`Rcu::current_epoch`]: crate::Rcu::current_epoch
    /// [`Rcu::poll`]: crate::Rcu::poll
    pub fn is_completed_at(&self, global_epoch: u64) -> bool {
        global_epoch >= self.0 + GRACE_EPOCHS
    }

    /// Whether this state's grace period has completed given the current
    /// global epoch.
    pub(crate) fn completed_at(&self, global: u64) -> bool {
        self.is_completed_at(global)
    }
}

const PINNED: u64 = 1 << 63;
const EPOCH_MASK: u64 = PINNED - 1;

/// Per-thread epoch record shared between the owning reader thread and the
/// grace-period machinery.
///
/// A single atomic word packs a "pinned" flag (thread is inside a read-side
/// critical section) with the epoch the thread observed when it pinned.
#[derive(Debug)]
pub(crate) struct ThreadRecord {
    state: AtomicU64,
    active: AtomicBool,
    /// Process-unique id, stable for the record's lifetime. Lets the stall
    /// watchdog attribute warnings to a specific reader without keying on
    /// (reusable) heap addresses.
    id: u64,
}

impl ThreadRecord {
    pub(crate) fn new() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Self {
            state: AtomicU64::new(0),
            active: AtomicBool::new(true),
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique record id (watchdog attribution).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Marks the thread as inside a critical section at `epoch`.
    ///
    /// Deliberately *not* SeqCst: this store is the read-side fast path.
    /// The required StoreLoad ordering against the critical-section loads
    /// that follow comes from the caller ([`RcuThread::read_lock`]): a
    /// compiler fence when the grace-period advancer issues a
    /// process-wide `membarrier` before trusting its scan, or a full
    /// `SeqCst` fence otherwise (see the `membarrier` module for why both
    /// pairings are sound and nothing weaker is).
    ///
    /// [`RcuThread::read_lock`]: crate::RcuThread::read_lock
    pub(crate) fn pin(&self, epoch: u64) {
        debug_assert_eq!(epoch & PINNED, 0, "epoch overflow");
        self.state.store(PINNED | epoch, Ordering::Release);
    }

    /// Marks the thread as outside any critical section. Release orders
    /// every critical-section access before the unpin becomes visible,
    /// which is the only direction unpin needs.
    pub(crate) fn unpin(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Returns `Some(epoch)` if the thread is pinned, `None` otherwise —
    /// read via an atomic RMW: an RMW must return the *latest* value in
    /// the word's modification order. The RMW alone does **not** make the
    /// advancer's scan trustworthy (a pin can be buffered behind the
    /// reader's reordered critical-section loads); the caller must first
    /// establish the barrier pairing described in the `membarrier`
    /// module, after which the RMW is belt-and-braces against stale
    /// plain-load replies.
    pub(crate) fn observe_pinned_epoch(&self) -> Option<u64> {
        Self::decode(self.state.fetch_add(0, Ordering::AcqRel))
    }

    /// Advisory pinned-epoch read (plain `Relaxed` load, may be stale).
    /// Only good for *refusing* an epoch advance early — never for
    /// deciding one; see [`observe_pinned_epoch`].
    ///
    /// [`observe_pinned_epoch`]: Self::observe_pinned_epoch
    pub(crate) fn peek_pinned_epoch(&self) -> Option<u64> {
        Self::decode(self.state.load(Ordering::Relaxed))
    }

    fn decode(s: u64) -> Option<u64> {
        if s & PINNED != 0 {
            Some(s & EPOCH_MASK)
        } else {
            None
        }
    }

    /// Whether the record still belongs to a live [`RcuThread`].
    ///
    /// [`RcuThread`]: crate::RcuThread
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Detaches the record from its thread (called on `RcuThread` drop).
    pub(crate) fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_state_completion_rule() {
        let s = GpState(5);
        assert!(!s.completed_at(5));
        assert!(!s.completed_at(6));
        assert!(s.completed_at(7));
        assert!(s.completed_at(100));
    }

    #[test]
    fn gp_state_ordering() {
        assert!(GpState(1) < GpState(2));
        assert_eq!(GpState(3), GpState(3));
        assert_eq!(GpState(9).raw_epoch(), 9);
    }

    #[test]
    fn record_pin_unpin() {
        let r = ThreadRecord::new();
        assert_eq!(r.observe_pinned_epoch(), None);
        r.pin(7);
        assert_eq!(r.observe_pinned_epoch(), Some(7));
        r.unpin();
        assert_eq!(r.observe_pinned_epoch(), None);
    }

    #[test]
    fn record_activity() {
        let r = ThreadRecord::new();
        assert!(r.is_active());
        r.deactivate();
        assert!(!r.is_active());
    }

    #[test]
    fn large_epochs_roundtrip() {
        let r = ThreadRecord::new();
        let e = EPOCH_MASK - 1;
        r.pin(e);
        assert_eq!(r.observe_pinned_epoch(), Some(e));
    }
}
