//! Epoch algebra: global epoch, per-thread pin records, grace-period states.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of epoch advances that must elapse after a retire before the
/// retired object is safe to reuse (the classic three-epoch rule of
/// epoch-based reclamation).
pub(crate) const GRACE_EPOCHS: u64 = 2;

/// Opaque snapshot of the grace-period state at the moment an object was
/// deferred for freeing.
///
/// This is the integration interface between the synchronization mechanism
/// and the Prudence allocator (paper §4): the allocator stamps each deferred
/// object with a `GpState` and later asks [`Rcu::poll`] whether the grace
/// period for that state has completed.
///
/// `GpState` is ordered: a smaller state becomes safe no later than a larger
/// one, so a container of deferred objects only needs to track its maximum.
///
/// [`Rcu::poll`]: crate::Rcu::poll
///
/// # Example
///
/// ```
/// use pbs_rcu::Rcu;
///
/// let rcu = Rcu::new();
/// let early = rcu.gp_state();
/// rcu.synchronize();
/// let late = rcu.gp_state();
/// assert!(early <= late);
/// assert!(rcu.poll(early));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpState(pub(crate) u64);

impl GpState {
    /// The raw epoch the state was captured at. Exposed for diagnostics and
    /// tests; treat as opaque otherwise.
    pub fn raw_epoch(&self) -> u64 {
        self.0
    }

    /// Whether this state's grace period has completed given a global epoch
    /// obtained from [`Rcu::current_epoch`].
    ///
    /// This is the batch-friendly form of [`Rcu::poll`]: the Prudence
    /// allocator reads the epoch once and checks many stamped objects
    /// against it (merging a latent cache touches hundreds of stamps).
    ///
    /// [`Rcu::current_epoch`]: crate::Rcu::current_epoch
    /// [`Rcu::poll`]: crate::Rcu::poll
    pub fn is_completed_at(&self, global_epoch: u64) -> bool {
        global_epoch >= self.0 + GRACE_EPOCHS
    }

    /// Whether this state's grace period has completed given the current
    /// global epoch.
    pub(crate) fn completed_at(&self, global: u64) -> bool {
        self.is_completed_at(global)
    }
}

const PINNED: u64 = 1 << 63;
const EPOCH_MASK: u64 = PINNED - 1;

/// Hazard-pointer slots per thread record. Sized so the whole record
/// still fits one `CachePadded` cell; the hazard-pointer backend's
/// garbage bound is proportional to `threads × HP_SLOTS`, so small is
/// also the honest choice.
pub const HP_SLOTS: usize = 8;

/// Per-thread epoch record shared between the owning reader thread and the
/// grace-period machinery.
///
/// A single atomic word packs a "pinned" flag (thread is inside a read-side
/// critical section) with the epoch the thread observed when it pinned.
/// The record also carries the per-thread state of the robust reclamation
/// backends (`crate::reclaim`): a monotone outermost-pin sequence and an
/// ejection mark for the Hyaline-style domain, and hazard-pointer slots
/// for the HP domain. Epoch-only deployments pay one extra `Relaxed`
/// store per outermost pin for these fields and nothing else.
#[derive(Debug)]
pub(crate) struct ThreadRecord {
    state: AtomicU64,
    /// Monotone count of outermost pins. Bumped by the owning thread
    /// only, program-ordered *before* the pin store, so any scanner that
    /// observes a pin (Acquire) also observes the sequence number that
    /// pin belongs to. A batch domain records `(id, pin_seq)` pairs; a
    /// later sequence proves the captured critical section has exited.
    pin_seq: AtomicU64,
    /// Cooperative-neutralization mark: the pin sequence whose capture an
    /// ejector revoked (0 = none). Meaningful only while `pin_seq` still
    /// equals the stored value — a new pin gets a new sequence, which
    /// un-ejects the record without any clearing store.
    ejected_seq: AtomicU64,
    /// Hazard-pointer slots (0 = empty). Written by the owning thread,
    /// read by retire-list scanners under the membarrier protocol.
    hazards: [AtomicUsize; HP_SLOTS],
    active: AtomicBool,
    /// Process-unique id, stable for the record's lifetime. Lets the stall
    /// watchdog attribute warnings to a specific reader without keying on
    /// (reusable) heap addresses.
    id: u64,
    /// OS-level thread name captured at registration (records are built on
    /// the reader's own thread), so stall blame can *name* the culprit.
    /// Immutable after construction; empty when the thread is unnamed.
    name: String,
}

impl ThreadRecord {
    pub(crate) fn new() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Self {
            state: AtomicU64::new(0),
            pin_seq: AtomicU64::new(0),
            ejected_seq: AtomicU64::new(0),
            hazards: std::array::from_fn(|_| AtomicUsize::new(0)),
            active: AtomicBool::new(true),
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current().name().unwrap_or_default().to_string(),
        }
    }

    /// Process-unique record id (watchdog attribution).
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Name of the owning thread at registration time ("" when unnamed).
    pub(crate) fn thread_name(&self) -> &str {
        &self.name
    }

    /// Marks the thread as inside a critical section at `epoch`.
    ///
    /// Deliberately *not* SeqCst: this store is the read-side fast path.
    /// The required StoreLoad ordering against the critical-section loads
    /// that follow comes from the caller ([`RcuThread::read_lock`]): a
    /// compiler fence when the grace-period advancer issues a
    /// process-wide `membarrier` before trusting its scan, or a full
    /// `SeqCst` fence otherwise (see the `membarrier` module for why both
    /// pairings are sound and nothing weaker is).
    ///
    /// [`RcuThread::read_lock`]: crate::RcuThread::read_lock
    pub(crate) fn pin(&self, epoch: u64) {
        debug_assert_eq!(epoch & PINNED, 0, "epoch overflow");
        self.state.store(PINNED | epoch, Ordering::Release);
    }

    /// Marks the thread as outside any critical section. Release orders
    /// every critical-section access before the unpin becomes visible,
    /// which is the only direction unpin needs.
    pub(crate) fn unpin(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Returns `Some(epoch)` if the thread is pinned, `None` otherwise —
    /// read via an atomic RMW: an RMW must return the *latest* value in
    /// the word's modification order. The RMW alone does **not** make the
    /// advancer's scan trustworthy (a pin can be buffered behind the
    /// reader's reordered critical-section loads); the caller must first
    /// establish the barrier pairing described in the `membarrier`
    /// module, after which the RMW is belt-and-braces against stale
    /// plain-load replies.
    pub(crate) fn observe_pinned_epoch(&self) -> Option<u64> {
        Self::decode(self.state.fetch_add(0, Ordering::AcqRel))
    }

    /// Advisory pinned-epoch read (plain `Relaxed` load, may be stale).
    /// Only good for *refusing* an epoch advance early — never for
    /// deciding one; see [`observe_pinned_epoch`].
    ///
    /// [`observe_pinned_epoch`]: Self::observe_pinned_epoch
    pub(crate) fn peek_pinned_epoch(&self) -> Option<u64> {
        Self::decode(self.state.load(Ordering::Relaxed))
    }

    fn decode(s: u64) -> Option<u64> {
        if s & PINNED != 0 {
            Some(s & EPOCH_MASK)
        } else {
            None
        }
    }

    /// Whether the record still belongs to a live [`RcuThread`].
    ///
    /// [`RcuThread`]: crate::RcuThread
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Detaches the record from its thread (called on `RcuThread` drop).
    /// Hazard slots are cleared first: a dead thread protects nothing.
    pub(crate) fn deactivate(&self) {
        self.clear_hazards();
        self.active.store(false, Ordering::Release);
    }

    /// Bumps and returns the outermost-pin sequence. Single-writer (only
    /// the owning thread calls this), so the load+store pair is exact;
    /// the caller must issue the pin store *after* this in program order
    /// so a scanner's Acquire on the pin word also covers the bump.
    pub(crate) fn begin_pin_seq(&self) -> u64 {
        let next = self.pin_seq.load(Ordering::Relaxed) + 1;
        self.pin_seq.store(next, Ordering::Relaxed);
        next
    }

    /// The current outermost-pin sequence. Scanners must only read this
    /// *after* observing the pin word with Acquire ordering (see
    /// [`begin_pin_seq`](Self::begin_pin_seq)); reading a value newer
    /// than the observed pin's is possible and conservative (it delays a
    /// release, never permits one early).
    pub(crate) fn pin_seq(&self) -> u64 {
        self.pin_seq.load(Ordering::Acquire)
    }

    /// Owner-side advisory read of the pin sequence.
    pub(crate) fn own_pin_seq(&self) -> u64 {
        self.pin_seq.load(Ordering::Relaxed)
    }

    /// Marks pin sequence `seq` as ejected (cooperative neutralization).
    pub(crate) fn eject(&self, seq: u64) {
        self.ejected_seq.store(seq, Ordering::Release);
    }

    /// Whether pin sequence `seq` has been ejected.
    pub(crate) fn ejected_at(&self, seq: u64) -> bool {
        self.ejected_seq.load(Ordering::Acquire) == seq
    }

    /// Publishes a hazard pointer in `slot`. The caller carries the
    /// StoreLoad fence discipline (see [`RcuThread::protect`]).
    ///
    /// [`RcuThread::protect`]: crate::RcuThread::protect
    pub(crate) fn set_hazard(&self, slot: usize, addr: usize) {
        self.hazards[slot].store(addr, Ordering::Release);
    }

    /// Clears the hazard pointer in `slot`.
    pub(crate) fn clear_hazard(&self, slot: usize) {
        self.hazards[slot].store(0, Ordering::Release);
    }

    /// Clears every hazard slot.
    pub(crate) fn clear_hazards(&self) {
        for h in &self.hazards {
            h.store(0, Ordering::Release);
        }
    }

    /// Reads the hazard pointer in `slot` (0 = empty). Only trustworthy
    /// after the scanner has run the fence + membarrier protocol; see
    /// the `reclaim::hp` module for the pairing argument.
    pub(crate) fn hazard(&self, slot: usize) -> usize {
        self.hazards[slot].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_state_completion_rule() {
        let s = GpState(5);
        assert!(!s.completed_at(5));
        assert!(!s.completed_at(6));
        assert!(s.completed_at(7));
        assert!(s.completed_at(100));
    }

    #[test]
    fn gp_state_ordering() {
        assert!(GpState(1) < GpState(2));
        assert_eq!(GpState(3), GpState(3));
        assert_eq!(GpState(9).raw_epoch(), 9);
    }

    #[test]
    fn record_pin_unpin() {
        let r = ThreadRecord::new();
        assert_eq!(r.observe_pinned_epoch(), None);
        r.pin(7);
        assert_eq!(r.observe_pinned_epoch(), Some(7));
        r.unpin();
        assert_eq!(r.observe_pinned_epoch(), None);
    }

    #[test]
    fn record_activity() {
        let r = ThreadRecord::new();
        assert!(r.is_active());
        r.deactivate();
        assert!(!r.is_active());
    }

    #[test]
    fn large_epochs_roundtrip() {
        let r = ThreadRecord::new();
        let e = EPOCH_MASK - 1;
        r.pin(e);
        assert_eq!(r.observe_pinned_epoch(), Some(e));
    }

    #[test]
    fn pin_seq_is_monotone_and_ejection_is_per_sequence() {
        let r = ThreadRecord::new();
        let s1 = r.begin_pin_seq();
        assert_eq!(s1, 1);
        assert_eq!(r.pin_seq(), 1);
        assert!(!r.ejected_at(s1));
        r.eject(s1);
        assert!(r.ejected_at(s1));
        // A fresh pin gets a fresh sequence, which un-ejects the record
        // without any clearing store.
        let s2 = r.begin_pin_seq();
        assert_eq!(s2, 2);
        assert!(!r.ejected_at(s2));
        assert!(r.ejected_at(s1));
    }

    #[test]
    fn hazard_slots_roundtrip_and_clear_on_deactivate() {
        let r = ThreadRecord::new();
        for slot in 0..HP_SLOTS {
            assert_eq!(r.hazard(slot), 0);
        }
        r.set_hazard(0, 0x1000);
        r.set_hazard(HP_SLOTS - 1, 0x2000);
        assert_eq!(r.hazard(0), 0x1000);
        assert_eq!(r.hazard(HP_SLOTS - 1), 0x2000);
        r.clear_hazard(0);
        assert_eq!(r.hazard(0), 0);
        r.deactivate();
        for slot in 0..HP_SLOTS {
            assert_eq!(r.hazard(slot), 0, "deactivate must clear hazards");
        }
    }
}
