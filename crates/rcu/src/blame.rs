//! Stall blame: who is blocking the grace period, and for how long.
//!
//! The PR 5 watchdog already detects that *some* reader is pinned past the
//! stall threshold; this module records *which one*. When an episode first
//! crosses the threshold the advancer — which is already holding the
//! registry lock and looking at the offending record — captures a
//! [`BlameReport`]: the record id, the thread's registration-time name,
//! the pinned epoch and pin sequence, the stall duration so far, and any
//! hazard pointers the thread is publishing (the culprit's identity for
//! the robust backends: a hazard address for `hp`, the pin sequence a
//! sealed batch captured for `hyaline`).
//!
//! Exactly one report is created per stall episode — capture piggybacks
//! the watchdog's per-episode `warned` latch, so duplicate warnings are
//! structurally impossible. Subsequent scans only refresh the live
//! report's duration; when the episode ends the report is marked cleared
//! and retired to a bounded history.
//!
//! Everything here runs on the advancer/driver side. Readers never touch
//! clocks, never write blame state, and keep their zero-overhead pin path.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

/// Retired (cleared) episodes kept for the doctor; oldest are dropped.
const HISTORY_CAP: usize = 16;

/// One attributed stall episode: the culprit and what it was doing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Process-unique reader-record id of the culprit.
    pub record_id: u64,
    /// The culprit thread's name at registration ("" when unnamed).
    pub thread_name: String,
    /// Epoch the culprit has been pinned at for the whole episode.
    pub pinned_epoch: u64,
    /// The culprit's outermost-pin sequence at blame time — the identity a
    /// Hyaline-style batch captures, so the doctor can tie the stall to
    /// the batches it blocks.
    pub pin_seq: u64,
    /// How long the culprit had been pinned when last observed, in
    /// nanoseconds. Refreshed every watchdog scan while the episode
    /// lasts; frozen at clear time.
    pub stalled_for_ns: u64,
    /// Watchdog-clock timestamp (process-relative nanoseconds) the
    /// episode started at.
    pub since_ns: u64,
    /// Non-empty hazard-pointer slots the culprit was publishing at blame
    /// time — the addresses it pins against hazard scans.
    pub hazards: Vec<usize>,
    /// Whether the episode has ended (the reader unpinned or made
    /// progress). Live culprits report `false`.
    pub cleared: bool,
}

/// Driver-written, snapshot-read blame store. Guarded by a mutex in
/// `Inner`; all writers run on the grace-period driver thread (or the
/// watchdog caller), so the lock is uncontended in practice.
#[derive(Default)]
pub(crate) struct BlameState {
    /// Live episodes by record id (several readers can stall at once).
    active: HashMap<u64, BlameReport>,
    /// Cleared episodes, oldest first, bounded by [`HISTORY_CAP`].
    history: VecDeque<BlameReport>,
    /// Total episodes ever attributed (not bounded by the history cap).
    total: u64,
}

impl BlameState {
    /// Opens a new episode for `report.record_id`. Called exactly once per
    /// episode, at the same point the warn latch is set.
    pub(crate) fn open(&mut self, report: BlameReport) {
        self.total += 1;
        // A stale live entry for the same record (episode ended while the
        // watchdog was not looking — e.g. registry pruning races) retires
        // to history rather than being overwritten silently.
        if let Some(mut old) = self.active.remove(&report.record_id) {
            old.cleared = true;
            self.push_history(old);
        }
        self.active.insert(report.record_id, report);
    }

    /// Refreshes the live episode's observed duration.
    pub(crate) fn refresh(&mut self, record_id: u64, stalled_for_ns: u64) {
        if let Some(report) = self.active.get_mut(&record_id) {
            report.stalled_for_ns = report.stalled_for_ns.max(stalled_for_ns);
        }
    }

    /// Ends the episode for `record_id`, freezing its final duration.
    pub(crate) fn clear(&mut self, record_id: u64, stalled_for_ns: u64) {
        if let Some(mut report) = self.active.remove(&record_id) {
            report.stalled_for_ns = report.stalled_for_ns.max(stalled_for_ns);
            report.cleared = true;
            self.push_history(report);
        }
    }

    fn push_history(&mut self, report: BlameReport) {
        if self.history.len() == HISTORY_CAP {
            self.history.pop_front();
        }
        self.history.push_back(report);
    }

    /// Cleared history followed by live episodes (live last, so the most
    /// actionable entry renders at the bottom of a transcript).
    pub(crate) fn reports(&self) -> Vec<BlameReport> {
        let mut out: Vec<BlameReport> = self.history.iter().cloned().collect();
        let mut live: Vec<BlameReport> = self.active.values().cloned().collect();
        live.sort_by_key(|r| r.since_ns);
        out.extend(live);
        out
    }

    /// Live (uncleared) episodes only.
    pub(crate) fn active(&self) -> Vec<BlameReport> {
        let mut live: Vec<BlameReport> = self.active.values().cloned().collect();
        live.sort_by_key(|r| r.since_ns);
        live
    }

    /// Total episodes ever attributed.
    pub(crate) fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u64, since: u64) -> BlameReport {
        BlameReport {
            record_id: id,
            thread_name: format!("reader-{id}"),
            since_ns: since,
            stalled_for_ns: 100,
            ..Default::default()
        }
    }

    #[test]
    fn open_refresh_clear_lifecycle() {
        let mut state = BlameState::default();
        state.open(report(7, 10));
        assert_eq!(state.active().len(), 1);
        state.refresh(7, 500);
        assert_eq!(state.active()[0].stalled_for_ns, 500);
        state.refresh(7, 300);
        assert_eq!(state.active()[0].stalled_for_ns, 500, "duration only grows");
        state.clear(7, 900);
        assert!(state.active().is_empty());
        let all = state.reports();
        assert_eq!(all.len(), 1);
        assert!(all[0].cleared);
        assert_eq!(all[0].stalled_for_ns, 900);
        assert_eq!(state.total(), 1);
    }

    #[test]
    fn concurrent_culprits_coexist() {
        let mut state = BlameState::default();
        state.open(report(1, 5));
        state.open(report(2, 3));
        let live = state.active();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].record_id, 2, "sorted by episode start");
        state.clear(1, 0);
        assert_eq!(state.active().len(), 1);
        assert_eq!(state.reports().len(), 2);
    }

    #[test]
    fn history_is_bounded() {
        let mut state = BlameState::default();
        for i in 0..(HISTORY_CAP as u64 + 5) {
            state.open(report(i, i));
            state.clear(i, i);
        }
        assert_eq!(state.reports().len(), HISTORY_CAP);
        assert_eq!(state.total(), HISTORY_CAP as u64 + 5);
    }

    #[test]
    fn reopen_retires_stale_entry() {
        let mut state = BlameState::default();
        state.open(report(4, 1));
        state.open(report(4, 2));
        assert_eq!(state.active().len(), 1);
        let all = state.reports();
        assert_eq!(all.len(), 2);
        assert!(all[0].cleared, "stale entry retired to history");
        assert!(!all[1].cleared);
    }
}
