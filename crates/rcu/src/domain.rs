//! RCU domains, thread registration, and read-side critical sections.

use std::cell::Cell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{
    compiler_fence, fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pbs_telemetry::{ComponentTelemetry, EventKind, EventRing, NamedHistogram};

use crate::blame::{BlameReport, BlameState};
use crate::callback::{reclaimer_loop, Callback, CallbackShard, RcuConfig};
use crate::epoch::{GpState, ThreadRecord, HP_SLOTS};
use crate::membarrier;
use crate::reclaim::ReclaimBackend;
use crate::stats::{RcuStats, StatsInner};

/// Lanes in the domain trace ring. Grace-period events are emitted by
/// whichever thread wins the epoch CAS or calls `synchronize`, so lanes are
/// assigned per thread (collisions tear records, which the ring's checksum
/// discards) rather than per CPU slot.
const TRACE_LANES: usize = 8;

/// Records per domain trace lane (grace-period events are rare; this keeps
/// minutes of history for typical driver intervals).
const TRACE_LANE_CAPACITY: usize = 512;

/// Shared state of an RCU domain; `Rcu` and every `RcuThread` hold an `Arc`
/// to it so registration can outlive the `Rcu` front object if needed.
pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) epoch: AtomicU64,
    pub(crate) registry: Mutex<Vec<Arc<CachePadded<ThreadRecord>>>>,
    pub(crate) config: RcuConfig,
    pub(crate) shards: Vec<CallbackShard>,
    pub(crate) shard_cursor: AtomicUsize,
    pub(crate) backlog: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    /// Pairs with `park_cv`: worker threads sleep on this between passes so
    /// `Drop` can cut a pending interval short instead of waiting it out
    /// (tests park the driver with hour-long intervals).
    pub(crate) park_lock: std::sync::Mutex<()>,
    pub(crate) park_cv: std::sync::Condvar,
    pub(crate) stats: StatsInner,
    pub(crate) ring: EventRing,
    /// Stall-blame store: written by the watchdog (driver thread), read by
    /// snapshots. See [`crate::blame`].
    pub(crate) blame: Mutex<BlameState>,
    /// Bitmask of [`ReclaimBackend`]s whose reclamation domains watch this
    /// registry (set at domain construction, never cleared). A guard taken
    /// on this `Rcu` genuinely participates in a backend's protocol — its
    /// hazard slots are scanned, its pins are batch-captured — only when
    /// the corresponding bit is set; see [`ReadGuard::protects_backend`].
    pub(crate) attached_backends: AtomicU32,
}

/// Bit assigned to `backend` in [`Inner::attached_backends`].
fn backend_bit(backend: ReclaimBackend) -> u32 {
    match backend {
        ReclaimBackend::Epoch => 1 << 0,
        ReclaimBackend::Hp => 1 << 1,
        ReclaimBackend::Hyaline => 1 << 2,
    }
}

impl Inner {
    /// Attempts to advance the global epoch by one. Succeeds only when every
    /// active, pinned reader has observed the current epoch. Returns the
    /// epoch observed after the attempt.
    pub(crate) fn try_advance(&self) -> u64 {
        // Injected grace-period stall: refuse this attempt outright, as if
        // a pinned reader were lagging. Refusing an advance is always safe
        // (it only procrastinates harder), which is what makes this fault
        // injectable at will without a soundness question. Both the
        // epoch-specific site and its backend-generic generalization are
        // consulted (each counts its call either way, so harnesses can
        // compare injected totals against the stall stat).
        if let Some(faults) = &self.config.fault_injector {
            let stall = faults.should_fail(pbs_fault::site::RCU_ADVANCE);
            let stall = faults.should_fail(pbs_fault::site::RECLAIM_ADVANCE) || stall;
            if stall {
                self.stats.injected_gp_stalls.fetch_add(1, Ordering::Relaxed);
                return self.epoch.load(Ordering::Acquire);
            }
        }
        let global = self.epoch.load(Ordering::Acquire);
        let registry = self.registry.lock();
        // Cheap refusal first: if any pin is already *visibly* behind the
        // global epoch the advance will fail regardless, so skip the heavy
        // barrier below. Refusing to advance is always safe; only the
        // decision to advance needs the barrier-then-scan protocol.
        for rec in registry.iter() {
            if rec.is_active() {
                if let Some(e) = rec.peek_pinned_epoch() {
                    if e != global {
                        return global;
                    }
                }
            }
        }
        // The read side pins with a plain Release store, so the advancer
        // carries the StoreLoad ordering burden before it may trust a
        // scan: a full fence, then — when readers run fence-free — a
        // process-wide membarrier that imposes a barrier on every reader's
        // instruction stream (see `membarrier` module for the soundness
        // argument; in fallback mode readers fence themselves and this is
        // a no-op). The scan itself uses an RMW, which must return the
        // latest value in each record's modification order. Grace periods
        // are orders of magnitude rarer than pins; this is the cheap side
        // to tax.
        fence(Ordering::SeqCst);
        membarrier::heavy_barrier();
        for rec in registry.iter() {
            if !rec.is_active() {
                continue;
            }
            if let Some(e) = rec.observe_pinned_epoch() {
                if e != global {
                    return global;
                }
            }
        }
        drop(registry);
        if self
            .epoch
            .compare_exchange(global, global + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.stats.gp_advances.fetch_add(1, Ordering::Relaxed);
            // Which barrier protocol justified this advance (decided once
            // per process, but counted per advance so the runtime path is
            // observable from the stats snapshot).
            if membarrier::readers_elide_fence() {
                self.stats.membarrier_advances.fetch_add(1, Ordering::Relaxed);
                self.ring
                    .record_thread(EventKind::GpAdvanceMembarrier, 0, global + 1, 0);
            } else {
                self.stats
                    .fallback_fence_advances
                    .fetch_add(1, Ordering::Relaxed);
                self.ring
                    .record_thread(EventKind::GpAdvanceFence, 0, global + 1, 0);
            }
            global + 1
        } else {
            self.epoch.load(Ordering::Acquire)
        }
    }

    pub(crate) fn poll(&self, state: GpState) -> bool {
        if state.completed_at(self.epoch.load(Ordering::Acquire)) {
            return true;
        }
        let now = self.try_advance();
        state.completed_at(now)
    }

    /// Eagerly drives epoch advances until the grace period for `state`
    /// completes or the bounded retry budget runs out. Returns whether the
    /// grace period completed during the drive.
    ///
    /// Each round runs the full advancer-side barrier protocol of
    /// [`try_advance`](Self::try_advance) (fence + membarrier before the
    /// scan) — expediting changes only *how often* advances are attempted,
    /// never the ordering argument that justifies them. Between rounds the
    /// drive spins with exponential backoff for the first few attempts,
    /// then yields the CPU: an expedited caller must not starve the pinned
    /// readers it is waiting on.
    pub(crate) fn expedite(&self, state: GpState) -> bool {
        self.stats.expedited_gps.fetch_add(1, Ordering::Relaxed);
        if pbs_telemetry::enabled() {
            self.ring
                .record_thread(EventKind::GpExpedite, 0, state.raw_epoch(), 0);
        }
        let retries = self.config.expedite_retries.max(1);
        let mut backoff = 1u32;
        for round in 0..retries {
            if state.completed_at(self.try_advance()) {
                return true;
            }
            if round < 8 {
                for _ in 0..backoff {
                    std::hint::spin_loop();
                }
                backoff = backoff.saturating_mul(2).min(64);
            } else {
                std::thread::yield_now();
            }
        }
        state.completed_at(self.epoch.load(Ordering::Acquire))
    }

    /// Blocks until a full grace period has elapsed from the moment of call.
    pub(crate) fn synchronize(&self) {
        self.synchronize_impl(false);
    }

    /// Like [`synchronize`](Self::synchronize), but front-loads a bounded
    /// expedited drive before falling back to passive polling.
    pub(crate) fn synchronize_expedited(&self) {
        self.synchronize_impl(true);
    }

    fn synchronize_impl(&self, expedited: bool) {
        let state = GpState(self.epoch.load(Ordering::Acquire));
        // Timing/tracing sits entirely behind the enabled gate; the
        // disabled cost of a synchronize is one Relaxed load + branch.
        let begin_ns = if pbs_telemetry::enabled() {
            self.ring
                .record_thread(EventKind::GpBegin, 0, state.raw_epoch(), 0);
            Some(pbs_telemetry::now_nanos())
        } else {
            None
        };
        if expedited {
            self.expedite(state);
        }
        let mut spins = 0u32;
        while !self.poll(state) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.stats.synchronize_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(begin) = begin_ns {
            let waited = pbs_telemetry::now_nanos().saturating_sub(begin);
            self.stats.gp_latency.record(waited);
            self.ring.record_thread(
                EventKind::GpComplete,
                0,
                waited,
                self.epoch.load(Ordering::Relaxed),
            );
        }
    }

    /// One stall-watchdog pass over the reader registry; runs on the
    /// grace-period driver thread, which owns `watch` exclusively.
    ///
    /// Detection is entirely advancer-side: readers never read a clock or
    /// write a timestamp, so the read fast path is untouched. The watchdog
    /// instead remembers the first scan at which it saw a record pinned at
    /// a given state word and measures the stall from that scan. A changed
    /// word (unpin, or a re-pin at a newer epoch — i.e. reader progress)
    /// ends the episode. A reader that keeps re-pinning at the *same*
    /// epoch while the epoch is wedged by something else is
    /// indistinguishable from a stalled one and may be warned about;
    /// warnings are advisory, so the false positive is benign.
    ///
    /// Exactly one warning fires per episode: `warned` latches until the
    /// episode ends, at which point the warning clears
    /// (`active_stalls` gauge decrements, `StallClear` traces).
    /// Detection latency is bounded below by the driver interval.
    pub(crate) fn watchdog_scan(&self, watch: &mut StallWatch) {
        let threshold = self.config.stall_threshold.as_nanos() as u64;
        let now = pbs_telemetry::now_nanos();
        for entry in watch.entries.values_mut() {
            entry.seen = false;
        }
        let registry = self.registry.lock();
        for rec in registry.iter() {
            // Advisory Relaxed read is all a watchdog needs: a stale view
            // only shifts detection by one scan interval either way.
            let pinned = if rec.is_active() {
                rec.peek_pinned_epoch()
            } else {
                None
            };
            let entry = watch.entries.entry(rec.id()).or_insert(WatchEntry {
                pinned: None,
                since_ns: now,
                warned: false,
                seen: true,
            });
            entry.seen = true;
            if pinned.is_none() || pinned != entry.pinned {
                // Episode over (unpin) or a new one starting (fresh pin /
                // re-pin at a later epoch).
                if entry.warned {
                    self.clear_stall(rec.id(), now.saturating_sub(entry.since_ns));
                }
                entry.pinned = pinned;
                entry.since_ns = now;
                entry.warned = false;
            } else {
                // Still pinned at the same epoch: the episode continues.
                let stalled_for = now.saturating_sub(entry.since_ns);
                if !entry.warned && stalled_for >= threshold {
                    entry.warned = true;
                    self.warn_stall(rec.id(), stalled_for);
                    // Blame capture rides the same per-episode latch as
                    // the warning, so there is exactly one report per
                    // episode. The record is in hand (registry locked),
                    // so the culprit's identity — name, pin sequence,
                    // published hazards — costs no extra synchronization
                    // and no reader-side work.
                    self.open_blame(rec, entry.pinned, stalled_for, entry.since_ns);
                } else if entry.warned {
                    self.blame.lock().refresh(rec.id(), stalled_for);
                }
                if entry.warned {
                    self.stats
                        .longest_stall_ns
                        .fetch_max(stalled_for, Ordering::Relaxed);
                }
            }
        }
        drop(registry);
        // Records pruned from the registry take their episodes with them.
        let mut orphaned_warned: Vec<(u64, u64)> = Vec::new();
        watch.entries.retain(|id, entry| {
            if !entry.seen && entry.warned {
                orphaned_warned.push((*id, now.saturating_sub(entry.since_ns)));
            }
            entry.seen
        });
        for (id, stalled_for) in orphaned_warned {
            self.clear_stall(id, stalled_for);
        }
    }

    /// Shutdown-aware sleep for worker threads: waits up to `timeout` or
    /// until `Drop` signals `park_cv`. The shutdown flag is re-checked
    /// under the lock, so a signal sent before the wait begins is never
    /// missed — without this, `Drop` blocks for a full `driver_interval`
    /// (an hour, in tests that park the driver).
    pub(crate) fn park(&self, timeout: Duration) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = self
            .park_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = self
            .park_cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }

    /// Opens the blame episode for a newly-warned stalled reader. Runs on
    /// the watchdog caller with the registry lock held; the reader itself
    /// does nothing (and in particular never touches a clock).
    fn open_blame(
        &self,
        rec: &ThreadRecord,
        pinned_epoch: Option<u64>,
        stalled_for_ns: u64,
        since_ns: u64,
    ) {
        let hazards: Vec<usize> = (0..HP_SLOTS).map(|s| rec.hazard(s)).filter(|&a| a != 0).collect();
        let report = BlameReport {
            record_id: rec.id(),
            thread_name: rec.thread_name().to_string(),
            pinned_epoch: pinned_epoch.unwrap_or_default(),
            pin_seq: rec.pin_seq(),
            stalled_for_ns,
            since_ns,
            hazards,
            cleared: false,
        };
        self.stats.stall_blames.fetch_add(1, Ordering::Relaxed);
        if pbs_telemetry::enabled() {
            self.ring
                .record_thread(EventKind::StallBlame, 0, rec.id(), report.pin_seq);
        }
        self.blame.lock().open(report);
    }

    fn warn_stall(&self, record_id: u64, stalled_for_ns: u64) {
        self.stats.stall_warnings.fetch_add(1, Ordering::Relaxed);
        self.stats.active_stalls.fetch_add(1, Ordering::Relaxed);
        self.stats
            .longest_stall_ns
            .fetch_max(stalled_for_ns, Ordering::Relaxed);
        if pbs_telemetry::enabled() {
            self.ring
                .record_thread(EventKind::StallWarn, 0, stalled_for_ns, record_id);
        }
    }

    fn clear_stall(&self, record_id: u64, stalled_for_ns: u64) {
        self.stats.active_stalls.fetch_sub(1, Ordering::Relaxed);
        self.blame.lock().clear(record_id, stalled_for_ns);
        if pbs_telemetry::enabled() {
            self.ring
                .record_thread(EventKind::StallClear, 0, stalled_for_ns, record_id);
        }
    }

    /// Shared `call_rcu` body for `Rcu` and `RcuThread`.
    pub(crate) fn enqueue_callback(&self, callback: Box<dyn FnOnce() + Send>) {
        let stamp = self.epoch.load(Ordering::Acquire);
        let queued_ns = if pbs_telemetry::enabled() {
            pbs_telemetry::now_nanos()
        } else {
            0 // sentinel: delay not measurable for this callback
        };
        let idx = self.shard_cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[idx].push(Callback {
            stamp,
            queued_ns,
            callback,
        });
        self.backlog.fetch_add(1, Ordering::Relaxed);
        let backlog = self.backlog.load(Ordering::Relaxed);
        self.stats.record_enqueue(backlog);
    }
}

/// Driver-thread-local state of the stall watchdog: one entry per reader
/// record, keyed by record id. Never shared — only the grace-period driver
/// reads or writes it, so no entry needs atomics.
#[derive(Default)]
pub(crate) struct StallWatch {
    entries: HashMap<u64, WatchEntry>,
}

struct WatchEntry {
    /// The pinned epoch the current episode was first observed at
    /// (`None` = record was unpinned at the last scan).
    pinned: Option<u64>,
    /// Scan timestamp the episode started at.
    since_ns: u64,
    /// Whether this episode already fired its (single) warning.
    warned: bool,
    /// Scratch: seen during the current scan (prunes dead records).
    seen: bool,
}

/// A Read-Copy-Update synchronization domain.
///
/// Owns the global epoch, the reader registry, the callback queues and the
/// background grace-period driver / reclaimer threads. Dropping the `Rcu`
/// shuts the background threads down and makes a best-effort drain of
/// pending callbacks.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Rcu {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Rcu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rcu")
            .field("epoch", &self.current_epoch())
            .field("backlog", &self.callback_backlog())
            .finish()
    }
}

impl Default for Rcu {
    fn default() -> Self {
        Self::new()
    }
}

impl Rcu {
    /// Creates a domain with [`RcuConfig::default`] (Linux-like throttling).
    pub fn new() -> Self {
        Self::with_config(RcuConfig::default())
    }

    /// Creates a domain with explicit throttling/driver parameters.
    pub fn with_config(config: RcuConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| CallbackShard::new())
            .collect();
        static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(0);
        let inner = Arc::new(Inner {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
            config,
            shards,
            shard_cursor: AtomicUsize::new(0),
            backlog: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            park_lock: std::sync::Mutex::new(()),
            park_cv: std::sync::Condvar::new(),
            stats: StatsInner::default(),
            ring: EventRing::new(TRACE_LANES, TRACE_LANE_CAPACITY),
            blame: Mutex::new(BlameState::default()),
            attached_backends: AtomicU32::new(0),
        });
        let mut workers = Vec::new();
        // Grace-period driver: periodically attempts epoch advance so grace
        // periods complete even when no one is polling.
        {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("rcu-gp-driver".into())
                    .spawn(move || {
                        // The driver doubles as the stall watchdog: it
                        // already visits the registry every interval, so
                        // the scan adds no new wakeups and no reader-side
                        // cost.
                        let mut watch = StallWatch::default();
                        while !inner.shutdown.load(Ordering::SeqCst) {
                            inner.try_advance();
                            inner.watchdog_scan(&mut watch);
                            inner.park(inner.config.driver_interval);
                        }
                    })
                    .expect("spawn rcu gp driver"),
            );
        }
        // Callback reclaimers: process deferred callbacks after their grace
        // period, throttled by blimit — this is the Linux-RCU behaviour the
        // paper's baseline exhibits.
        for worker_idx in 0..inner.config.reclaimer_threads.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rcu-reclaim-{worker_idx}"))
                    .spawn(move || reclaimer_loop(&inner, worker_idx))
                    .expect("spawn rcu reclaimer"),
            );
        }
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Registers the calling thread as an RCU reader.
    ///
    /// The returned [`RcuThread`] must stay on this thread (it is `!Send`).
    /// Dropping it deregisters the thread.
    pub fn register(&self) -> RcuThread {
        // Padded to a full cache line: records are tiny heap cells that
        // would otherwise share lines, putting every reader's pin word on
        // the same line as a stranger's and defeating the per-thread
        // layout.
        let record = Arc::new(CachePadded::new(ThreadRecord::new()));
        let mut registry = self.inner.registry.lock();
        registry.retain(|r| r.is_active());
        registry.push(Arc::clone(&record));
        drop(registry);
        RcuThread {
            inner: Arc::clone(&self.inner),
            record,
            nesting: Cell::new(0),
            tainted: Cell::new(false),
            walk_depth: Cell::new(0),
            _not_send: PhantomData,
        }
    }

    /// Captures the current grace-period state for stamping a deferred
    /// object (paper §4, the Prudence integration interface).
    pub fn gp_state(&self) -> GpState {
        GpState(self.inner.epoch.load(Ordering::Acquire))
    }

    /// Returns whether the grace period for `state` has completed,
    /// opportunistically helping the epoch advance.
    pub fn poll(&self, state: GpState) -> bool {
        self.inner.poll(state)
    }

    /// Current global epoch (diagnostics only).
    pub fn current_epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// A process-unique identifier for this domain. Data structures use it
    /// to check that a [`ReadGuard`] protecting a traversal belongs to the
    /// same domain as the allocator reclaiming the nodes.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Blocks until a full grace period elapses.
    ///
    /// # Panics
    ///
    /// Never call this from inside a read-side critical section of this
    /// domain: it would deadlock (the calling thread's pin blocks the epoch
    /// it is waiting for). [`RcuThread::synchronize`] checks this and
    /// panics; the domain-level call cannot check unregistered callers.
    pub fn synchronize(&self) {
        self.inner.synchronize();
    }

    /// Blocks until a full grace period elapses, eagerly driving epoch
    /// advances (bounded spin-then-yield with backoff) instead of waiting
    /// for the opportunistic driver cadence.
    ///
    /// Use under memory pressure, where grace-period latency is the
    /// bottleneck between deferred objects and reusable memory. The drive
    /// runs the same advancer-side barrier protocol as every other
    /// advance; if the bounded drive does not finish (e.g. a reader stays
    /// pinned), the call degrades to passive polling like
    /// [`synchronize`](Self::synchronize). Counted in
    /// [`RcuStats::expedited_gps`](crate::RcuStats::expedited_gps).
    ///
    /// # Panics
    ///
    /// Same rule as [`synchronize`](Self::synchronize): never call from
    /// inside a read-side critical section of this domain.
    pub fn synchronize_expedited(&self) {
        self.inner.synchronize_expedited();
    }

    /// Non-blocking(ish) grace-period nudge: drives a bounded number of
    /// epoch-advance attempts toward completing a grace period for the
    /// *current* state, then returns whether it completed. Unlike
    /// [`synchronize_expedited`](Self::synchronize_expedited) this never
    /// waits indefinitely, so allocator slow paths can call it while a
    /// stalled reader keeps the epoch wedged.
    pub fn expedite(&self) -> bool {
        let state = GpState(self.inner.epoch.load(Ordering::Acquire));
        self.inner.expedite(state)
    }

    /// Defers `callback` until after a grace period, mimicking the kernel's
    /// `call_rcu`. Callbacks run on background reclaimer threads, batched
    /// and throttled per [`RcuConfig`] — deliberately reproducing the
    /// extended object lifetimes and bursty freeing of the baseline system.
    pub fn call_rcu(&self, callback: Box<dyn FnOnce() + Send>) {
        self.inner.enqueue_callback(callback);
    }

    /// Number of callbacks queued and not yet run.
    pub fn callback_backlog(&self) -> usize {
        self.inner.backlog.load(Ordering::Relaxed)
    }

    /// Blocks until every callback queued *before* this call has run
    /// (the analog of `rcu_barrier`).
    ///
    /// # Panics
    ///
    /// Like [`synchronize`](Self::synchronize), must not be called from
    /// inside a read-side critical section.
    pub fn barrier(&self) {
        let target = self.inner.stats.callbacks_enqueued();
        while self.inner.stats.callbacks_processed() < target {
            self.inner.try_advance();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Snapshot of domain statistics.
    pub fn stats(&self) -> RcuStats {
        self.inner.stats.snapshot(self.callback_backlog())
    }

    /// Every stall-blame report the watchdog has captured: cleared
    /// episodes first (bounded history), live culprits last. Empty until
    /// a reader stalls past
    /// [`stall_threshold`](crate::RcuConfig::stall_threshold).
    pub fn blame_reports(&self) -> Vec<BlameReport> {
        self.inner.blame.lock().reports()
    }

    /// Live (uncleared) blame reports only: the readers blocking the
    /// grace period *right now*, ordered by episode start.
    pub fn blame_active(&self) -> Vec<BlameReport> {
        self.inner.blame.lock().active()
    }

    /// Total stall episodes ever attributed (not bounded by the report
    /// history).
    pub fn blame_total(&self) -> u64 {
        self.inner.blame.lock().total()
    }

    /// Grace-period trace events and latency histograms for this domain:
    /// `gp_latency_ns` (blocking `synchronize` wait) and
    /// `callback_delay_ns` (`call_rcu` enqueue → execution).
    pub fn telemetry(&self) -> ComponentTelemetry {
        ComponentTelemetry::new(
            self.inner.ring.snapshot(),
            vec![
                NamedHistogram {
                    name: "gp_latency_ns".to_owned(),
                    hist: self.inner.stats.gp_latency.snapshot(),
                },
                NamedHistogram {
                    name: "callback_delay_ns".to_owned(),
                    hist: self.inner.stats.callback_delay.snapshot(),
                },
            ],
        )
    }

    /// The configuration this domain runs with.
    pub fn config(&self) -> &RcuConfig {
        &self.inner.config
    }

    /// Crate-internal handle to the shared domain state; the `reclaim`
    /// backends walk the reader registry and reuse the trace ring and
    /// fault configuration through this.
    pub(crate) fn inner(&self) -> &Arc<Inner> {
        &self.inner
    }

    /// Crate-internal: records that a reclamation domain of `backend` now
    /// watches this registry. Called once per domain construction; the
    /// bit is never cleared (a domain that existed may have handed out
    /// retired objects whose protection discipline outlives it).
    pub(crate) fn attach_backend(&self, backend: ReclaimBackend) {
        self.inner
            .attached_backends
            .fetch_or(backend_bit(backend), Ordering::Relaxed);
    }
}

impl Drop for Rcu {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Taking the park lock orders the store above before any waiter's
        // under-lock re-check, so no worker can sleep through the signal.
        drop(
            self.inner
                .park_lock
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        self.inner.park_cv.notify_all();
        let current = std::thread::current().id();
        for h in self.workers.lock().drain(..) {
            // A callback that owns the last strong reference to the domain
            // makes this Drop run on a worker thread itself; joining would
            // self-deadlock, so detach instead (the worker observes the
            // shutdown flag and exits).
            if h.thread().id() == current {
                continue;
            }
            let _ = h.join();
        }
        // Best-effort drain: run remaining callbacks whose grace period can
        // still complete. If a registered reader is still pinned we give up
        // rather than hang (the callbacks leak, which is memory-safe).
        for _ in 0..1024 {
            if self.inner.backlog.load(Ordering::Relaxed) == 0 {
                break;
            }
            let epoch = self.inner.try_advance();
            let mut progressed = false;
            for shard in &self.inner.shards {
                let ready = shard.pop_ready(epoch, usize::MAX);
                let now_ns = pbs_telemetry::now_nanos();
                for cb in ready {
                    self.inner.stats.record_callback_delay(cb.queued_ns, now_ns);
                    (cb.callback)();
                    self.inner.backlog.fetch_sub(1, Ordering::Relaxed);
                    self.inner.stats.record_processed(1);
                    progressed = true;
                }
            }
            if !progressed && epoch == self.inner.try_advance() {
                // No forward progress possible (a reader is still pinned).
                break;
            }
        }
    }
}

/// Per-thread handle to an RCU domain; entry point for read-side critical
/// sections.
///
/// Obtained from [`Rcu::register`]. Intentionally `!Send`: the epoch record
/// it pins is owned by the registering thread.
pub struct RcuThread {
    inner: Arc<Inner>,
    record: Arc<CachePadded<ThreadRecord>>,
    nesting: Cell<u32>,
    /// Set when a traversal re-pinned this thread after an ejection
    /// ([`ReadGuard::repin`]): raw pointers read earlier in the critical
    /// section are no longer protected, so [`ReadGuard::validate`] stays
    /// `false` until a fresh outermost `read_lock`. Values *returned* by
    /// a completed [`ReadGuard::walk`] were checkpointed before the
    /// re-pin and remain trustworthy.
    pub(crate) tainted: Cell<bool>,
    /// Nesting depth of hazard-publishing traversals currently live on
    /// this thread; each depth owns a disjoint block of hazard slots
    /// (see `crate::traverse`).
    pub(crate) walk_depth: Cell<usize>,
    _not_send: PhantomData<*const ()>,
}

impl std::fmt::Debug for RcuThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuThread")
            .field("nesting", &self.nesting.get())
            .finish()
    }
}

impl RcuThread {
    /// Enters a read-side critical section. Critical sections nest; the
    /// thread is unpinned when the outermost guard drops.
    ///
    /// While any guard is live, objects reachable when the guard was taken
    /// will not be reclaimed by deferred frees in this domain.
    pub fn read_lock(&self) -> ReadGuard<'_> {
        let n = self.nesting.get();
        if n == 0 {
            // A fresh outermost critical section starts untainted: no
            // pointer read under a *previous* pin can leak into it.
            self.tainted.set(false);
            let epoch = self.inner.epoch.load(Ordering::Acquire);
            // The sequence bump must precede the pin store in program
            // order: a batch-domain scanner that observes the pin
            // (Acquire) then reads the sequence is guaranteed at least
            // the value this pin belongs to (newer is conservative).
            // One Relaxed store on the fast path; see `reclaim::hyaline`.
            self.record.begin_pin_seq();
            self.record.pin(epoch);
            // The pin store must be ordered before every critical-section
            // load (StoreLoad). When the advancer issues a process-wide
            // membarrier before each scan, a compiler fence suffices here
            // — no hardware barrier on the fast path (the urcu "memb"
            // idiom; soundness argument in the `membarrier` module).
            // Otherwise this thread pays the classic publication fence on
            // every outermost pin; eliding it (e.g. for same-epoch
            // re-pins) is unsound, because neither the advancer's fence
            // nor its RMW scan can observe a pin still buffered behind
            // reordered critical-section loads.
            if membarrier::readers_elide_fence() {
                compiler_fence(Ordering::SeqCst);
            } else {
                fence(Ordering::SeqCst);
            }
        }
        self.nesting.set(n + 1);
        ReadGuard { thread: self }
    }

    /// Whether the thread is currently inside a read-side critical section.
    pub fn in_critical_section(&self) -> bool {
        self.nesting.get() > 0
    }

    /// Blocks until a full grace period elapses.
    ///
    /// # Panics
    ///
    /// Panics if called from inside a read-side critical section (which
    /// would self-deadlock).
    pub fn synchronize(&self) {
        assert_eq!(
            self.nesting.get(),
            0,
            "synchronize() called inside a read-side critical section"
        );
        self.inner.synchronize();
    }

    /// See [`Rcu::synchronize_expedited`].
    ///
    /// # Panics
    ///
    /// Panics if called from inside a read-side critical section (which
    /// would self-deadlock).
    pub fn synchronize_expedited(&self) {
        assert_eq!(
            self.nesting.get(),
            0,
            "synchronize_expedited() called inside a read-side critical section"
        );
        self.inner.synchronize_expedited();
    }

    /// See [`Rcu::call_rcu`].
    pub fn call_rcu(&self, callback: Box<dyn FnOnce() + Send>) {
        self.inner.enqueue_callback(callback);
    }

    /// See [`Rcu::gp_state`].
    pub fn gp_state(&self) -> GpState {
        GpState(self.inner.epoch.load(Ordering::Acquire))
    }

    /// See [`Rcu::poll`].
    pub fn poll(&self, state: GpState) -> bool {
        self.inner.poll(state)
    }

    /// See [`Rcu::id`].
    pub fn domain_id(&self) -> u64 {
        self.inner.id
    }

    /// Publishes a hazard pointer for `addr` in `slot`
    /// (`slot < `[`HP_SLOTS`][crate::HP_SLOTS]).
    ///
    /// Required by the hazard-pointer reclamation backend: unlike epoch
    /// pinning, holding a [`ReadGuard`] alone does *not* keep an object
    /// alive under that backend — only a published (and then
    /// re-validated) hazard does. The protocol is acquire-validate:
    ///
    /// 1. read the shared pointer,
    /// 2. `protect(slot, addr)`,
    /// 3. re-read the shared pointer; if it changed, go to 1.
    ///
    /// Once validation succeeds the object cannot be reclaimed until the
    /// hazard is cleared: a retire-list scan that missed this hazard must
    /// have run its membarrier before step 2, in which case step 3 runs
    /// after the object's unlink was globally visible and validation
    /// fails. The publication carries the same StoreLoad discipline as
    /// the pin in [`read_lock`](Self::read_lock) — a compiler fence when
    /// scanners membarrier, a full fence otherwise.
    pub fn protect(&self, slot: usize, addr: usize) {
        assert!(slot < HP_SLOTS, "hazard slot {slot} out of range");
        self.record.set_hazard(slot, addr);
        if membarrier::readers_elide_fence() {
            compiler_fence(Ordering::SeqCst);
        } else {
            fence(Ordering::SeqCst);
        }
    }

    /// Clears the hazard pointer in `slot`; the object it protected may
    /// be reclaimed by the next scan.
    pub fn clear_protection(&self, slot: usize) {
        self.record.clear_hazard(slot);
    }

    /// Clears every hazard slot of this thread.
    pub fn clear_all_protections(&self) {
        self.record.clear_hazards();
    }

    /// Crate-internal: the registry record backing this thread.
    pub(crate) fn record(&self) -> &Arc<CachePadded<ThreadRecord>> {
        &self.record
    }
}

impl Drop for RcuThread {
    fn drop(&mut self) {
        debug_assert_eq!(
            self.nesting.get(),
            0,
            "RcuThread dropped while inside a read-side critical section"
        );
        self.record.unpin();
        self.record.deactivate();
    }
}

/// RAII guard for a read-side critical section; see [`RcuThread::read_lock`].
#[derive(Debug)]
pub struct ReadGuard<'a> {
    thread: &'a RcuThread,
}

impl<'a> ReadGuard<'a> {
    /// The domain this critical section belongs to; see [`Rcu::id`].
    pub fn domain_id(&self) -> u64 {
        self.thread.inner.id
    }

    /// Crate-internal: the thread this guard pins (traversal machinery).
    pub(crate) fn thread(&self) -> &'a RcuThread {
        self.thread
    }

    /// Whether this critical section is still honored by every
    /// reclamation backend.
    ///
    /// Under the epoch and hazard-pointer backends this is always
    /// `true`. Under the Hyaline-style backend a reader pinned for
    /// longer than the configured ejection threshold *while blocking
    /// sealed batches* may be ejected — its capture is revoked so the
    /// garbage it blocks stays bounded. An ejected reader must not
    /// dereference pointers read earlier in the critical section; the
    /// cooperative contract is to call `validate()` after any
    /// potentially long stall (or before trusting a traversal that
    /// resumed after one) and restart from safe roots when it returns
    /// `false`. This mirrors DEBRA+'s neutralization recovery path with
    /// a poll in place of a signal.
    ///
    /// A guard whose thread was re-pinned by a traversal recovering from
    /// an ejection ([`walk`](Self::walk)) also reports `false` — sticky
    /// until the next outermost `read_lock` — because raw pointers read
    /// before the recovery are just as unprotected as under the ejection
    /// itself. Values *returned* by a completed `walk` are exempt: they
    /// were checkpointed before being handed out.
    pub fn validate(&self) -> bool {
        let record = self.thread.record();
        !self.thread.tainted.get() && !record.ejected_at(record.own_pin_seq())
    }

    /// Whether this guard actually participates in `backend`'s reader
    /// protocol: the [`Rcu`] it pins is watched by a reclamation domain
    /// of that backend (its hazard slots are scanned, its pins are
    /// batch-captured).
    ///
    /// Epoch protection needs no domain cooperation — any pin on the
    /// right registry blocks the epoch — so `Epoch` is always `true`.
    /// Data structures whose allocator defers into a robust backend call
    /// this from their guard checks: a guard from a matching `Rcu` that
    /// no hp/hyaline domain watches would pass a plain domain-id check
    /// while protecting nothing.
    pub fn protects_backend(&self, backend: ReclaimBackend) -> bool {
        backend == ReclaimBackend::Epoch
            || self
                .thread
                .inner
                .attached_backends
                .load(Ordering::Relaxed)
                & backend_bit(backend)
                != 0
    }

    /// Crate-internal ejection recovery: drop the current pin and take a
    /// fresh one (new pin sequence, current epoch), so a traversal can
    /// retry from its root with live protection. Marks the thread
    /// [`tainted`](RcuThread::tainted) — everything read under the old
    /// pin is now suspect — and uses the same publication-fence
    /// discipline as [`RcuThread::read_lock`].
    ///
    /// Between the unpin and the re-pin the thread is momentarily
    /// outside any critical section, which is exactly what lets the
    /// backend release the batches the ejected pin was blocking.
    /// Hazard slots are untouched: hp protection is per-address and
    /// survives the re-pin.
    pub(crate) fn repin(&self) {
        self.thread.tainted.set(true);
        self.thread.record.unpin();
        let epoch = self.thread.inner.epoch.load(Ordering::Acquire);
        self.thread.record.begin_pin_seq();
        self.thread.record.pin(epoch);
        if membarrier::readers_elide_fence() {
            compiler_fence(Ordering::SeqCst);
        } else {
            fence(Ordering::SeqCst);
        }
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        let n = self.thread.nesting.get();
        debug_assert!(n > 0);
        if n == 1 {
            // The Release store inside unpin orders prior reads of shared
            // data before the unpin; no fence needed on this side.
            self.thread.record.unpin();
        }
        self.thread.nesting.set(n - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn epoch_advances_without_readers() {
        let rcu = Rcu::new();
        let e0 = rcu.current_epoch();
        rcu.synchronize();
        assert!(rcu.current_epoch() >= e0 + 2);
    }

    #[test]
    fn pinned_reader_blocks_grace_period() {
        let rcu = Rcu::new();
        let t = rcu.register();
        let guard = t.read_lock();
        let state = rcu.gp_state();
        // Give the driver time; the epoch may advance at most once past the
        // reader's pin, never far enough to complete the grace period.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!rcu.poll(state));
        drop(guard);
        rcu.synchronize();
        assert!(rcu.poll(state));
    }

    #[test]
    fn epoch_never_advances_past_pinned_reader() {
        // The advance rule: while a reader is pinned at epoch E the global
        // epoch can reach at most E + 1 (one advance already in flight
        // when the pin landed), and with GRACE_EPOCHS = 2 no grace period
        // observed from inside the critical section may complete while it
        // is still open.
        //
        // Honesty note on coverage: as a wall-clock stress loop on TSO
        // hardware this exercises interleavings, not memory-model
        // reorderings — a protocol that is unsound only under StoreLoad
        // reordering (e.g. a reader pin elided behind a stale epoch) would
        // still pass here on x86. The ordering claim itself rests on the
        // barrier pairing documented in the `membarrier` module (advancer
        // membarrier vs. reader publication fence), not on this test; the
        // advisory CI job additionally runs this under Miri, whose weak
        // memory emulation does explore store-buffer staleness for the
        // fallback (fence) protocol that Miri forces.
        let iters = if cfg!(miri) { 200 } else { 20_000 };
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let stop = Arc::new(AtomicBool::new(false));
        // Churn threads hammer try_advance (via poll) so advances race
        // every pin below; the driver thread adds its own cadence.
        let churn: Vec<_> = (0..2)
            .map(|_| {
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let s = rcu.gp_state();
                        let _ = rcu.poll(s);
                    }
                })
            })
            .collect();
        let t = rcu.register();
        for _ in 0..iters {
            let guard = t.read_lock();
            // The pin epoch is at most `seen` (epoch loads are monotone and
            // `seen` is read after the pin), so global may never exceed
            // seen + 1 while this guard lives.
            let seen = rcu.current_epoch();
            let state = t.gp_state();
            for _ in 0..4 {
                let now = rcu.current_epoch();
                assert!(
                    now <= seen + 1,
                    "epoch advanced past pinned reader: pinned <= {seen}, now {now}"
                );
                assert!(
                    !t.poll(state),
                    "grace period completed inside a read-side critical section"
                );
            }
            drop(guard);
        }
        stop.store(true, Ordering::Relaxed);
        for c in churn {
            c.join().unwrap();
        }
        // Once unpinned, the same state completes normally.
        let state = rcu.gp_state();
        rcu.synchronize();
        assert!(rcu.poll(state));
    }

    #[test]
    fn nested_read_lock_unpins_on_outermost() {
        let rcu = Rcu::new();
        let t = rcu.register();
        let g1 = t.read_lock();
        let g2 = t.read_lock();
        assert!(t.in_critical_section());
        drop(g2);
        assert!(t.in_critical_section());
        let state = rcu.gp_state();
        drop(g1);
        assert!(!t.in_critical_section());
        rcu.synchronize();
        assert!(rcu.poll(state));
    }

    #[test]
    #[should_panic(expected = "read-side critical section")]
    fn synchronize_inside_cs_panics() {
        let rcu = Rcu::new();
        let t = rcu.register();
        let _g = t.read_lock();
        t.synchronize();
    }

    #[test]
    fn call_rcu_runs_after_grace_period() {
        let rcu = Rcu::new();
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            rcu.call_rcu(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        rcu.barrier();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(rcu.callback_backlog(), 0);
    }

    #[test]
    fn callbacks_wait_for_pinned_reader() {
        let rcu = Rcu::new();
        let t = rcu.register();
        let ran = Arc::new(AtomicU32::new(0));
        let guard = t.read_lock();
        {
            let ran = Arc::clone(&ran);
            rcu.call_rcu(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "callback ran too early");
        drop(guard);
        rcu.barrier();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multithreaded_readers_and_synchronize() {
        let rcu = Arc::new(Rcu::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let t = rcu.register();
                    while !stop.load(Ordering::Relaxed) {
                        let _g = t.read_lock();
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            rcu.synchronize();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(rcu.stats().gp_advances >= 100);
    }

    #[test]
    fn drop_drains_pending_callbacks() {
        let ran = Arc::new(AtomicU32::new(0));
        {
            let rcu = Rcu::new();
            for _ in 0..100 {
                let ran = Arc::clone(&ran);
                rcu.call_rcu(Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        assert_eq!(ran.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn domains_are_independent() {
        let a = Rcu::new();
        let b = Rcu::new();
        assert_ne!(a.id(), b.id());
        let ta = a.register();
        let _guard = ta.read_lock();
        // A pinned reader in domain A must not block domain B.
        b.synchronize();
        assert!(b.current_epoch() >= 2);
    }

    #[test]
    fn thread_registration_churn() {
        let rcu = Arc::new(Rcu::new());
        // Register and drop many readers; the registry must not grow
        // without bound and grace periods must keep completing.
        for _ in 0..50 {
            let t = rcu.register();
            let g = t.read_lock();
            drop(g);
            drop(t);
        }
        rcu.synchronize();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let rcu = Arc::clone(&rcu);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let t = rcu.register();
                        let _g = t.read_lock();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        rcu.synchronize();
    }

    #[test]
    fn dropping_pinned_thread_releases_grace_period() {
        let rcu = Rcu::new();
        let state = {
            let t = rcu.register();
            let g = t.read_lock();
            let s = rcu.gp_state();
            // Guard dropped before the thread handle, as required.
            drop(g);
            drop(t);
            s
        };
        rcu.synchronize();
        assert!(rcu.poll(state));
    }

    #[test]
    fn stats_count_synchronize_calls() {
        let rcu = Rcu::new();
        rcu.synchronize();
        rcu.synchronize();
        let s = rcu.stats();
        assert_eq!(s.synchronize_calls, 2);
        assert_eq!(s.callbacks_enqueued, 0);
    }

    #[test]
    fn barrier_with_no_callbacks_returns_immediately() {
        let rcu = Rcu::new();
        rcu.barrier();
        assert_eq!(rcu.callback_backlog(), 0);
    }

    #[test]
    fn injected_stalls_delay_but_do_not_block_grace_periods() {
        use pbs_fault::{site, FaultInjector, Schedule};
        let faults = Arc::new(FaultInjector::new(17));
        // Refuse the first 20 advance attempts, then let progress resume:
        // synchronize must still terminate, and the stalls must be counted.
        for n in 1..=20 {
            faults.schedule(site::RCU_ADVANCE, Schedule::Nth(n));
        }
        let rcu = Rcu::with_config(
            RcuConfig::eager().with_fault_injector(Arc::clone(&faults)),
        );
        rcu.synchronize();
        let stats = rcu.stats();
        assert_eq!(stats.injected_gp_stalls, 20);
        assert!(stats.gp_advances >= 2, "grace period completed after stalls");
        assert!(faults.calls(site::RCU_ADVANCE) > 20);
    }

    /// A watchdog-friendly config: fast driver cadence so scans happen
    /// many times per millisecond, explicit stall threshold.
    fn watchdog_config(threshold: Duration) -> RcuConfig {
        RcuConfig::eager().with_stall_threshold(threshold)
    }

    #[test]
    fn reader_under_threshold_never_warns() {
        // A reader pinned for well under the threshold must produce no
        // warning — the watchdog has no false positives on ordinary
        // critical sections.
        let rcu = Rcu::with_config(watchdog_config(Duration::from_millis(200)));
        let t = rcu.register();
        for _ in 0..10 {
            let g = t.read_lock();
            std::thread::sleep(Duration::from_millis(2));
            drop(g);
        }
        // Leave the driver plenty of scans to (wrongly) accuse someone.
        std::thread::sleep(Duration::from_millis(20));
        let stats = rcu.stats();
        assert_eq!(stats.stall_warnings, 0, "false-positive stall warning");
        assert_eq!(stats.active_stalls, 0);
        assert_eq!(stats.longest_stall_ns, 0);
    }

    #[test]
    fn stalled_reader_warns_exactly_once_and_clears_on_unpin() {
        let rcu = Rcu::with_config(watchdog_config(Duration::from_millis(5)));
        let t = rcu.register();
        let guard = t.read_lock();
        // Stall for many thresholds and many scan intervals: still exactly
        // one warning for the single episode.
        std::thread::sleep(Duration::from_millis(60));
        let during = rcu.stats();
        assert_eq!(during.stall_warnings, 1, "one warning per stall episode");
        assert_eq!(during.active_stalls, 1, "stall is active while pinned");
        assert!(
            during.longest_stall_ns >= 5_000_000,
            "stall duration at least the threshold, got {}",
            during.longest_stall_ns
        );
        drop(guard);
        // Wait for the scan after the unpin to clear the episode.
        std::thread::sleep(Duration::from_millis(20));
        let after = rcu.stats();
        assert_eq!(after.stall_warnings, 1, "clearing must not re-warn");
        assert_eq!(after.active_stalls, 0, "stall cleared on unpin");
        // A fresh stall is a fresh episode with its own warning.
        let g2 = t.read_lock();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(rcu.stats().stall_warnings, 2, "new episode warns anew");
        drop(g2);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rcu.stats().active_stalls, 0);
    }

    #[test]
    fn stall_blame_names_the_culprit_exactly_once_per_episode() {
        let rcu = Rcu::with_config(watchdog_config(Duration::from_millis(5)));
        let t = rcu.register();
        let guard = t.read_lock();
        std::thread::sleep(Duration::from_millis(60));
        let live = rcu.blame_active();
        assert_eq!(live.len(), 1, "one live culprit while pinned");
        let culprit = &live[0];
        // The libtest harness names worker threads after the test, so the
        // registration-time capture must surface it.
        assert!(
            culprit.thread_name.contains("stall_blame_names_the_culprit"),
            "culprit names the parked thread, got {:?}",
            culprit.thread_name
        );
        assert!(!culprit.cleared);
        assert!(
            culprit.stalled_for_ns >= 5_000_000,
            "pin duration at least the threshold, got {}",
            culprit.stalled_for_ns
        );
        assert!(
            culprit.pinned_epoch <= rcu.current_epoch(),
            "pinned epoch {} cannot be ahead of the global epoch {}",
            culprit.pinned_epoch,
            rcu.current_epoch()
        );
        assert!(culprit.pin_seq >= 1, "outermost-pin sequence captured");
        assert_eq!(rcu.blame_total(), 1);
        assert_eq!(rcu.stats().stall_blames, 1);
        drop(guard);
        std::thread::sleep(Duration::from_millis(20));
        assert!(rcu.blame_active().is_empty(), "episode cleared on unpin");
        let reports = rcu.blame_reports();
        assert_eq!(reports.len(), 1, "exactly one blame record per episode");
        assert!(reports[0].cleared);
        assert!(
            reports[0].stalled_for_ns >= 5_000_000,
            "final duration frozen at clear"
        );
        // A fresh stall is a fresh episode with its own single record.
        let g2 = t.read_lock();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(rcu.blame_total(), 2, "second episode, second record");
        assert_eq!(rcu.blame_reports().len(), 2);
        drop(g2);
        std::thread::sleep(Duration::from_millis(20));
        assert!(rcu.blame_active().is_empty());
    }

    #[test]
    fn expedited_synchronize_completes_with_short_lived_pins() {
        // Concurrent readers that pin briefly and repeatedly must not keep
        // synchronize_expedited from completing promptly.
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let rcu = Arc::clone(&rcu);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let t = rcu.register();
                    while !stop.load(Ordering::Relaxed) {
                        let _g = t.read_lock();
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            rcu.synchronize_expedited();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let stats = rcu.stats();
        assert_eq!(stats.expedited_gps, 50);
        assert_eq!(stats.synchronize_calls, 50);
        assert!(stats.gp_advances >= 100);
    }

    #[test]
    fn expedite_reports_completion_honestly() {
        let rcu = Rcu::with_config(RcuConfig::eager());
        // Nothing pinned: the bounded drive completes a grace period.
        assert!(rcu.expedite());
        // A pinned reader wedges the epoch: the drive must give up in
        // bounded time and say so rather than hang.
        let t = rcu.register();
        let guard = t.read_lock();
        assert!(!rcu.expedite(), "grace period cannot complete while pinned");
        drop(guard);
        assert!(rcu.stats().expedited_gps >= 2);
    }

    #[test]
    fn expedited_gps_shorten_observed_gp_latency() {
        // In a procrastination-based system nobody blocks on a grace
        // period: a defer-heavy workload just watches the epoch, and sees
        // grace periods complete at the background driver's pace. That is
        // the latency the expedited path exists to cut — a pressured
        // allocator drives the epoch inline instead of waiting out driver
        // ticks. (Blocking `synchronize` is self-driving via `poll`, so it
        // is *not* the slow case here.)
        let slow = RcuConfig {
            driver_interval: Duration::from_millis(25),
            ..RcuConfig::linux_like()
        };
        let rcu = Arc::new(Rcu::with_config(slow));
        // A short-pinning reader, as defer-heavy churn produces.
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let rcu = Arc::clone(&rcu);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let t = rcu.register();
                while !stop.load(Ordering::Relaxed) {
                    drop(t.read_lock());
                    std::thread::yield_now();
                }
            })
        };
        // Passive observer: how long until the current grace period
        // completes if no one drives it (what deferred bins experience).
        let state = rcu.gp_state();
        let t0 = std::time::Instant::now();
        while !state.completed_at(rcu.current_epoch()) {
            std::thread::sleep(Duration::from_micros(50));
        }
        let passive = t0.elapsed();

        // Expedited: drive the epoch inline. The call also records into
        // the exported `gp_latency_ns` histogram.
        let state = rcu.gp_state();
        let t0 = std::time::Instant::now();
        rcu.synchronize_expedited();
        let expedited = t0.elapsed();
        assert!(state.completed_at(rcu.current_epoch()));

        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();

        // Driver pace is >= 25 ms; the inline drive is microseconds. A 2x
        // margin keeps scheduler noise from ever flaking this.
        assert!(
            expedited * 2 < passive,
            "expedited {expedited:?} should be well under driver-paced {passive:?}"
        );
        let telemetry = rcu.telemetry();
        let gp = telemetry
            .histograms
            .iter()
            .find(|h| h.name == "gp_latency_ns")
            .expect("gp_latency_ns exported");
        assert_eq!(gp.hist.count, 1);
        assert!(
            Duration::from_nanos(gp.hist.sum) * 2 < passive,
            "recorded expedited gp latency {} ns should undercut driver pace {passive:?}",
            gp.hist.sum
        );
    }

    #[test]
    #[should_panic(expected = "read-side critical section")]
    fn synchronize_expedited_inside_cs_panics() {
        let rcu = Rcu::new();
        let t = rcu.register();
        let _g = t.read_lock();
        t.synchronize_expedited();
    }

    #[test]
    fn gp_state_is_monotone_across_synchronize() {
        let rcu = Rcu::new();
        let mut prev = rcu.gp_state();
        for _ in 0..5 {
            rcu.synchronize();
            let next = rcu.gp_state();
            assert!(next > prev);
            prev = next;
        }
    }
}
