//! Backend-aware protected traversal for RCU data structures.
//!
//! A bare guard-protected pointer chase is only sound under the epoch
//! backend, where a pin keeps everything reachable alive. Under the robust
//! reclamation backends (`crate::reclaim`) the same walk is a latent
//! use-after-free: a hazard-pointer domain frees anything without a
//! published hazard, and a Hyaline-style domain revokes an ejected
//! reader's guarantees mid-walk. [`Traverse`] closes that gap with one
//! per-hop primitive, [`load`](Traverse::load), whose meaning follows the
//! backend:
//!
//! * **epoch** — a plain `Acquire` load. The legacy walk, unchanged.
//! * **hp** — Michael's publish-then-revalidate: read the link, publish
//!   the target in a hazard slot, re-read the link; if it changed, retry
//!   with the new value. Hops proceed hand-over-hand across two rotating
//!   slots, so the link being re-read always lives in memory the previous
//!   hop still protects. A third slot pins a *candidate* node
//!   ([`pin_candidate`](Traverse::pin_candidate)) across further descent
//!   — needed by in-order tree walks that must hold their best-so-far
//!   while exploring below it.
//! * **hyaline** — the load is followed by an ejection check against the
//!   pin sequence the traversal started under. An ejected reader gets
//!   [`Retry`]; the [`ReadGuard::walk`] runner re-pins (fresh pin
//!   sequence, live capture again) and restarts the closure from its
//!   root, bounded by [`MAX_WALK_RETRIES`].
//!
//! ## Slot budget
//!
//! Each traversal depth owns a disjoint block of [`WALK_SLOTS`] hazard
//! slots allocated downward from the top of [`HP_SLOTS`]; nested walks
//! (a lookup inside a `for_each` callback) get the next block down, and
//! more than [`MAX_WALK_DEPTH`] concurrent walks on one thread panic.
//! Low-numbered slots stay free for direct [`RcuThread::protect`] users.
//!
//! ## Residual hyaline window
//!
//! Between an ejection check and the dereference it licenses there is an
//! unavoidable window in which the reader can be ejected and the object
//! released. The contract is cooperative, exactly as in Hyaline itself:
//! `eject_after` must dwarf a single hop, so an ejection can only land
//! between *hops* (where the next `load` catches it), not inside one. In
//! this repository's simulated memory the pages backing a released
//! object are never unmapped, so even a lost race reads stale bytes that
//! the per-hop check then refuses to act on — it cannot fault.

use std::sync::atomic::{AtomicPtr, Ordering};

use crate::domain::{ReadGuard, RcuThread};
use crate::epoch::HP_SLOTS;
use crate::reclaim::ReclaimBackend;

/// Hazard slots a single traversal depth owns: two hand-over-hand hop
/// slots plus one candidate slot.
pub const WALK_SLOTS: usize = 3;

/// Maximum concurrently nested [`Traverse`]s per thread under the hp
/// backend (each consumes [`WALK_SLOTS`] of the [`HP_SLOTS`] budget).
pub const MAX_WALK_DEPTH: usize = 2;

/// Retry-from-root budget of [`ReadGuard::walk`]. Each retry requires
/// either a *fresh* ejection of the re-pinned reader — the walk itself
/// stalling past `eject_after` again — or the walk landing on a node
/// retired out from under it mid-hop, so exhausting the budget indicates
/// a pathological configuration, and the runner panics rather than spin.
pub const MAX_WALK_RETRIES: usize = 64;

/// The value robust-backend structures store into a retired node's link
/// fields ([`poison_link`]) before deferring it.
///
/// Hazard revalidation alone cannot save a walker parked *on* a retired
/// node: unlinking that node's successor edits the live chain, not the
/// retired node's own link, so a re-read of the stale link still
/// "validates" while its target is freed. Classic hazard-pointer schemes
/// close this with a delete mark on the retired node's link; epoch
/// readers need the exact opposite (retired nodes must keep their links
/// so pinned stack-walkers can cross them). The compromise: structures
/// poison links only when their backend is robust, and the robust
/// [`Traverse::load`] arms treat the poison as [`Retry`] — restart from
/// the root, which reaches only live nodes. Epoch structures never
/// poison and epoch walks never check.
pub const LINK_POISON: usize = usize::MAX;

/// Poisons one link field of a node being retired into a robust backend;
/// call after the node is unlinked and before it is deferred, so the
/// poison store is ordered before the retire-list publication every
/// scanner synchronizes with. See [`LINK_POISON`].
pub fn poison_link<T>(link: &AtomicPtr<T>) {
    link.store(LINK_POISON as *mut T, Ordering::Release);
}

/// Signal that a traversal's protection was revoked mid-walk (hyaline
/// ejection) or that it stepped onto a retired node's poisoned link:
/// every pointer it has read is suspect and the walk must be retried
/// from its root. Returned through the closure's `Result` so `?` unwinds
/// the walk naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

/// Which per-hop protection discipline a traversal runs; derived from
/// the [`ReclaimBackend`] the structure's allocator defers into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalKind {
    /// Plain `Acquire` loads; the pin protects everything (the paper's
    /// model, byte-identical to the pre-traversal walks).
    Epoch,
    /// Publish-then-revalidate hazard pointers, hand-over-hand.
    Hp,
    /// Per-hop ejection checks with retry-from-root.
    Hyaline,
}

impl From<ReclaimBackend> for TraversalKind {
    fn from(backend: ReclaimBackend) -> Self {
        match backend {
            ReclaimBackend::Epoch => TraversalKind::Epoch,
            ReclaimBackend::Hp => TraversalKind::Hp,
            ReclaimBackend::Hyaline => TraversalKind::Hyaline,
        }
    }
}

/// One traversal attempt: per-hop protected loads over a linked
/// structure. Created by [`ReadGuard::walk`]; holds this depth's hazard
/// slots (hp) or the starting pin sequence (hyaline) for its lifetime
/// and releases both on drop.
pub struct Traverse<'t> {
    thread: &'t RcuThread,
    kind: TraversalKind,
    /// Lowest slot index of this depth's [`WALK_SLOTS`] block (hp only).
    slot_base: usize,
    /// Which hand-over-hand slot (0/1 within the block) the next
    /// protected hop publishes into.
    cursor: usize,
    /// The outermost-pin sequence this attempt trusts (hyaline only):
    /// an ejection of exactly this sequence revokes the attempt.
    pin_seq: u64,
}

impl<'t> Traverse<'t> {
    pub(crate) fn new(thread: &'t RcuThread, kind: TraversalKind) -> Self {
        let mut slot_base = 0;
        if kind == TraversalKind::Hp {
            let depth = thread.walk_depth.get();
            assert!(
                depth < MAX_WALK_DEPTH,
                "more than {MAX_WALK_DEPTH} nested hazard-publishing traversals on one \
                 thread: the {HP_SLOTS}-slot hazard budget is exhausted"
            );
            slot_base = HP_SLOTS - WALK_SLOTS * (depth + 1);
            thread.walk_depth.set(depth + 1);
        }
        Self {
            thread,
            kind,
            slot_base,
            cursor: 0,
            pin_seq: thread.record().own_pin_seq(),
        }
    }

    /// Reads one link of the structure with the backend's per-hop
    /// protection. The returned pointer (when non-null) is safe to
    /// dereference until the *next* `load`/[`checkpoint`] on this
    /// traversal — under hp because a hazard slot now publishes it,
    /// under hyaline because the pin's capture was still live at the
    /// check (cooperative window caveat in the module docs).
    ///
    /// `link` itself must live in protected memory: the structure head
    /// (never reclaimed) or a node returned by the previous hop.
    ///
    /// [`checkpoint`]: Self::checkpoint
    pub fn load<T>(&mut self, link: &AtomicPtr<T>) -> Result<*mut T, Retry> {
        match self.kind {
            TraversalKind::Epoch => Ok(link.load(Ordering::Acquire)),
            TraversalKind::Hp => {
                let mut p = link.load(Ordering::Acquire);
                loop {
                    if p as usize == LINK_POISON {
                        // This link belongs to a node retired under us:
                        // its target may already be gone, and no re-read
                        // of a retired node's link can ever detect that.
                        // Restart from the root.
                        return Err(Retry);
                    }
                    if p.is_null() {
                        return Ok(p);
                    }
                    // Publish, then re-read: a scan that missed this
                    // hazard membarrier'd before the publish, so if the
                    // target was retired the re-read (ordered after the
                    // publish by protect()'s fence) sees the changed —
                    // or poisoned — link and we act on the new value
                    // instead.
                    self.thread.protect(self.slot_base + self.cursor, p as usize);
                    let q = link.load(Ordering::Acquire);
                    if q == p {
                        // Hand over hand: the next hop publishes into
                        // the other slot, keeping this hop's target —
                        // which holds the next link we'll re-read —
                        // protected across the transition.
                        self.cursor ^= 1;
                        return Ok(p);
                    }
                    p = q;
                }
            }
            TraversalKind::Hyaline => {
                let p = link.load(Ordering::Acquire);
                if p as usize == LINK_POISON || self.ejected() {
                    // A poisoned link means the node under us was
                    // retired; its batch may outlive our pin, but the
                    // link's target's need not. Same remedy as an
                    // ejection: restart from the root.
                    return Err(Retry);
                }
                Ok(p)
            }
        }
    }

    /// Revalidates the traversal's protection without reading a link:
    /// call after copying data out of a node and before acting on it
    /// (returning a value, invoking a callback), so nothing read under a
    /// revoked capture escapes the walk. Free under epoch and hp.
    pub fn checkpoint(&self) -> Result<(), Retry> {
        if self.kind == TraversalKind::Hyaline && self.ejected() {
            return Err(Retry);
        }
        Ok(())
    }

    /// Keeps `node` protected across further descent (hp: republishes it
    /// in this depth's candidate slot; a no-op elsewhere). `node` must
    /// currently be protected by this traversal — it was returned by
    /// [`load`](Self::load) no more than one hop ago — so the republish
    /// extends existing protection and needs no revalidation. Only one
    /// candidate is held at a time; a new call replaces the previous.
    pub fn pin_candidate<T>(&self, node: *mut T) {
        if self.kind == TraversalKind::Hp {
            self.thread.protect(self.slot_base + 2, node as usize);
        }
    }

    fn ejected(&self) -> bool {
        self.thread.record().ejected_at(self.pin_seq)
    }
}

impl Drop for Traverse<'_> {
    fn drop(&mut self) {
        if self.kind == TraversalKind::Hp {
            for slot in self.slot_base..self.slot_base + WALK_SLOTS {
                self.thread.clear_protection(slot);
            }
            self.thread.walk_depth.set(self.thread.walk_depth.get() - 1);
        }
    }
}

impl ReadGuard<'_> {
    /// Runs `body` as a protected traversal, retrying from scratch (with
    /// a fresh pin) when the backend revokes its protection mid-walk.
    ///
    /// `body` receives a [`Traverse`] whose [`load`](Traverse::load) it
    /// must use for every hop, starting from a root embedded in the
    /// structure itself (never reclaimed); `Err(`[`Retry`]`)` — an
    /// ejection under hyaline, a poisoned link under either robust kind
    /// — aborts the attempt, the guard re-pins, and `body` runs again
    /// from the root. Because a retry
    /// means the previous attempt's reads are void, `body` must not leak
    /// side effects from a failed attempt; commit results only after a
    /// final [`checkpoint`](Traverse::checkpoint) (or return them, which
    /// the runner only does for `Ok`).
    ///
    /// # Panics
    ///
    /// After [`MAX_WALK_RETRIES`] revocations (each needing the walk to
    /// stall past `eject_after` *again*), and under hp when more than
    /// [`MAX_WALK_DEPTH`] walks nest on one thread.
    pub fn walk<R>(
        &self,
        kind: TraversalKind,
        mut body: impl FnMut(&mut Traverse<'_>) -> Result<R, Retry>,
    ) -> R {
        for _ in 0..MAX_WALK_RETRIES {
            let mut t = Traverse::new(self.thread(), kind);
            match body(&mut t) {
                Ok(r) => return r,
                Err(Retry) => {
                    // Release this attempt's slots before re-pinning so
                    // the retry starts from a clean block.
                    drop(t);
                    self.repin();
                }
            }
        }
        panic!(
            "traversal revoked {MAX_WALK_RETRIES} times without completing: every retry \
             requires a fresh ejection of this reader or a node retired mid-hop, so \
             either the ejection threshold is pathologically small, the structure churns \
             faster than a walk can cross it, or the walk body blocks"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rcu, RcuConfig};
    use std::sync::atomic::AtomicPtr;
    use std::sync::Arc;

    struct Node {
        value: u64,
        next: AtomicPtr<Node>,
    }

    /// Builds a boxed chain `0 -> 1 -> .. -> n-1`; returns the head link.
    fn chain(n: u64) -> AtomicPtr<Node> {
        let mut head = std::ptr::null_mut();
        for value in (0..n).rev() {
            head = Box::into_raw(Box::new(Node {
                value,
                next: AtomicPtr::new(head),
            }));
        }
        AtomicPtr::new(head)
    }

    fn free_chain(head: &AtomicPtr<Node>) {
        let mut p = head.load(Ordering::Acquire);
        while !p.is_null() {
            let b = unsafe { Box::from_raw(p) };
            p = b.next.load(Ordering::Acquire);
        }
    }

    fn sum_walk(guard: &ReadGuard<'_>, kind: TraversalKind, head: &AtomicPtr<Node>) -> u64 {
        guard.walk(kind, |t| {
            let mut sum = 0;
            let mut p = t.load(head)?;
            while !p.is_null() {
                let node = unsafe { &*p };
                sum += node.value;
                p = t.load(&node.next)?;
            }
            t.checkpoint()?;
            Ok(sum)
        })
    }

    #[test]
    fn every_kind_walks_a_static_chain() {
        let rcu = Rcu::with_config(RcuConfig::eager());
        let t = rcu.register();
        let head = chain(10);
        let guard = t.read_lock();
        for kind in [TraversalKind::Epoch, TraversalKind::Hp, TraversalKind::Hyaline] {
            assert_eq!(sum_walk(&guard, kind, &head), 45, "{kind:?}");
        }
        assert!(guard.validate(), "no revocation, no taint");
        drop(guard);
        free_chain(&head);
    }

    #[test]
    fn hp_walk_publishes_and_clears_hazards() {
        let rcu = Rcu::with_config(RcuConfig::eager());
        let t = rcu.register();
        let head = chain(3);
        let first = head.load(Ordering::Acquire);
        let guard = t.read_lock();
        guard.walk(TraversalKind::Hp, |tr| {
            let p = tr.load(&head)?;
            assert_eq!(p, first);
            // The hop's hazard slot publishes exactly this node, in the
            // top slot block.
            let record = t.record();
            let published: Vec<usize> =
                (0..HP_SLOTS).map(|s| record.hazard(s)).filter(|&a| a != 0).collect();
            assert_eq!(published, vec![p as usize]);
            assert!(record.hazard(HP_SLOTS - WALK_SLOTS) != 0);
            tr.pin_candidate(p);
            assert_eq!(record.hazard(HP_SLOTS - 1), p as usize, "candidate slot");
            Ok(())
        });
        // Dropping the traversal cleared its whole slot block.
        for slot in 0..HP_SLOTS {
            assert_eq!(t.record().hazard(slot), 0, "slot {slot} leaked");
        }
        drop(guard);
        free_chain(&head);
    }

    #[test]
    fn nested_hp_walks_use_disjoint_slot_blocks() {
        let rcu = Rcu::with_config(RcuConfig::eager());
        let t = rcu.register();
        let outer_chain = chain(2);
        let inner_chain = chain(2);
        let guard = t.read_lock();
        guard.walk(TraversalKind::Hp, |outer| {
            let po = outer.load(&outer_chain)?;
            let outer_slot_addr = t.record().hazard(HP_SLOTS - WALK_SLOTS);
            assert_eq!(outer_slot_addr, po as usize);
            let inner_sum = sum_walk(&guard, TraversalKind::Hp, &inner_chain);
            assert_eq!(inner_sum, 1);
            // The nested walk ran in the block below and left the outer
            // hop's hazard untouched.
            assert_eq!(t.record().hazard(HP_SLOTS - WALK_SLOTS), po as usize);
            Ok(())
        });
        drop(guard);
        free_chain(&outer_chain);
        free_chain(&inner_chain);
    }

    #[test]
    #[should_panic(expected = "nested hazard-publishing traversals")]
    fn hp_walk_nesting_past_slot_budget_panics() {
        let rcu = Rcu::with_config(RcuConfig::eager());
        let t = rcu.register();
        let head = chain(1);
        let guard = t.read_lock();
        guard.walk(TraversalKind::Hp, |_| {
            guard.walk(TraversalKind::Hp, |_| {
                guard.walk(TraversalKind::Hp, |_| Ok(()));
                Ok(())
            });
            Ok(())
        });
        drop(guard);
        free_chain(&head);
    }

    #[test]
    fn hyaline_ejection_retries_with_a_fresh_pin_and_taints_the_guard() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let t = rcu.register();
        let head = chain(4);
        let guard = t.read_lock();
        // Forced mid-walk ejection: revoke the current pin on the first
        // attempt, exactly as the hyaline release pass does to a
        // stalled reader.
        let mut attempts = 0;
        let seen_seqs = std::cell::RefCell::new(Vec::new());
        let sum = guard.walk(TraversalKind::Hyaline, |tr| {
            attempts += 1;
            seen_seqs.borrow_mut().push(t.record().own_pin_seq());
            if attempts == 1 {
                t.record().eject(t.record().own_pin_seq());
            }
            let mut sum = 0;
            let mut p = tr.load(&head)?;
            while !p.is_null() {
                let node = unsafe { &*p };
                sum += node.value;
                p = tr.load(&node.next)?;
            }
            tr.checkpoint()?;
            Ok(sum)
        });
        assert_eq!(sum, 6);
        assert_eq!(attempts, 2, "one revoked attempt, one clean retry");
        let seqs = seen_seqs.borrow();
        assert!(seqs[1] > seqs[0], "retry ran under a fresh pin sequence");
        // The guard is tainted: pre-ejection raw reads are not to be
        // trusted, even though the walk's own result is.
        assert!(!guard.validate());
        drop(guard);
        let g2 = t.read_lock();
        assert!(g2.validate(), "fresh outermost pin clears the taint");
        drop(g2);
        free_chain(&head);
    }

    #[test]
    fn poisoned_links_retry_robust_walks_and_restart_from_the_root() {
        // A chain whose second node has been "retired": its outgoing
        // link is poisoned. A robust walk that reaches it must restart
        // from the head rather than chase the dangling pointer; once the
        // head is repaired to skip the retired node, the walk completes.
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let t = rcu.register();
        let head = chain(4); // 0 -> 1 -> 2 -> 3
        let first = head.load(Ordering::Acquire);
        let second = unsafe { (*first).next.load(Ordering::Acquire) };
        let third = unsafe { (*second).next.load(Ordering::Acquire) };
        for kind in [TraversalKind::Hp, TraversalKind::Hyaline] {
            poison_link(unsafe { &(*second).next });
            let guard = t.read_lock();
            let mut attempts = 0;
            let sum = guard.walk(kind, |tr| {
                attempts += 1;
                if attempts == 2 {
                    // "Unlink" the retired node so the retry succeeds.
                    head.store(first, Ordering::Release);
                    unsafe { (*first).next.store(third, Ordering::Release) };
                }
                let mut sum = 0;
                let mut p = tr.load(&head)?;
                while !p.is_null() {
                    let node = unsafe { &*p };
                    sum += node.value;
                    p = tr.load(&node.next)?;
                }
                tr.checkpoint()?;
                Ok(sum)
            });
            assert_eq!(sum, 5, "{kind:?}: 0 + 2 + 3 once node 1 is skipped");
            assert_eq!(attempts, 2, "{kind:?}: one poisoned attempt, one clean");
            drop(guard);
            // Restore the chain for the next kind's iteration.
            unsafe { (*second).next.store(third, Ordering::Release) };
            unsafe { (*first).next.store(second, Ordering::Release) };
        }
        // Free manually: node 1 is re-linked, so free_chain sees all 4.
        free_chain(&head);
    }

    #[test]
    fn traversal_kind_tracks_backend() {
        for backend in ReclaimBackend::ALL {
            let kind = TraversalKind::from(backend);
            match backend {
                ReclaimBackend::Epoch => assert_eq!(kind, TraversalKind::Epoch),
                ReclaimBackend::Hp => assert_eq!(kind, TraversalKind::Hp),
                ReclaimBackend::Hyaline => assert_eq!(kind, TraversalKind::Hyaline),
            }
        }
    }
}
