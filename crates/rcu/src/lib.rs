//! # pbs-rcu — procrastination-based synchronization (userspace RCU)
//!
//! An epoch-based Read-Copy-Update implementation, the userspace analog of
//! the Linux-kernel RCU the Prudence paper (ASPLOS '16) integrates with.
//!
//! ## Model
//!
//! * Threads [`register`](Rcu::register) with a domain and enter read-side
//!   critical sections with [`RcuThread::read_lock`]. Readers are wait-free:
//!   they never take locks or write shared cachelines other than their own
//!   epoch record.
//! * A global epoch advances only when every reader currently inside a
//!   critical section has observed the current epoch. Two advances after an
//!   object is retired constitute a **grace period**: no reader can still
//!   hold a reference obtained before the retire.
//! * Writers defer frees either through classic callbacks
//!   ([`Rcu::call_rcu`], processed by background reclaimer threads with
//!   Linux-style batch throttling — this is the *baseline* behaviour the
//!   paper criticizes), or by stamping a [`GpState`] and polling
//!   [`Rcu::poll`] — the **allocator integration interface** Prudence uses
//!   (paper §4, requirement ii).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//! use pbs_rcu::Rcu;
//!
//! let rcu = Arc::new(Rcu::new());
//! let reader = rcu.register();
//!
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(1u32)));
//!
//! // Read side: wait-free traversal under a guard.
//! {
//!     let _guard = reader.read_lock();
//!     let value = unsafe { *shared.load(Ordering::Acquire) };
//!     assert_eq!(value, 1);
//! }
//!
//! // Write side: publish a new version, defer freeing the old one.
//! let old = shared.swap(Box::into_raw(Box::new(2u32)), Ordering::AcqRel);
//! let state = rcu.gp_state();
//! rcu.synchronize();
//! assert!(rcu.poll(state));
//! unsafe { drop(Box::from_raw(old)) }; // no readers can reference it now
//! # unsafe { drop(Box::from_raw(shared.load(Ordering::Acquire))) };
//! ```

mod blame;
mod callback;
mod domain;
mod epoch;
mod membarrier;
pub mod reclaim;
mod stats;
mod traverse;

pub use blame::BlameReport;
pub use callback::RcuConfig;
pub use domain::{ReadGuard, Rcu, RcuThread};
pub use epoch::GpState;
pub use epoch::HP_SLOTS;
pub use stats::RcuStats;
pub use traverse::{
    poison_link, Retry, Traverse, TraversalKind, LINK_POISON, MAX_WALK_DEPTH,
    MAX_WALK_RETRIES, WALK_SLOTS,
};

/// Forces every domain in this process onto the portable fallback barrier
/// protocol (readers fence themselves; no `membarrier(2)` dependence), as
/// if the kernel lacked `MEMBARRIER_CMD_PRIVATE_EXPEDITED`.
///
/// The barrier strategy is decided once per process and never changes, so
/// this only succeeds when called **before** any read lock or grace-period
/// advance. Returns `true` if the process is now in fallback mode; `false`
/// means the asymmetric protocol was already locked in and the call had no
/// effect. Intended for chaos/fault-injection harnesses that must exercise
/// the fallback fence pairing on kernels where membarrier works.
pub fn force_membarrier_fallback() -> bool {
    membarrier::force_fallback()
}
