//! RCU domain statistics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Internal atomic counters.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) gp_advances: AtomicU64,
    pub(crate) synchronize_calls: AtomicU64,
    enqueued: AtomicU64,
    processed: AtomicU64,
    max_backlog: AtomicUsize,
}

impl StatsInner {
    pub(crate) fn record_enqueue(&self, backlog_now: usize) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        let mut max = self.max_backlog.load(Ordering::Relaxed);
        while backlog_now > max {
            match self.max_backlog.compare_exchange_weak(
                max,
                backlog_now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => max = observed,
            }
        }
    }

    pub(crate) fn record_processed(&self, n: u64) {
        self.processed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn callbacks_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    pub(crate) fn callbacks_processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self, backlog: usize) -> RcuStats {
        RcuStats {
            gp_advances: self.gp_advances.load(Ordering::Relaxed),
            synchronize_calls: self.synchronize_calls.load(Ordering::Relaxed),
            callbacks_enqueued: self.enqueued.load(Ordering::Relaxed),
            callbacks_processed: self.processed.load(Ordering::Relaxed),
            callback_backlog: backlog,
            max_callback_backlog: self.max_backlog.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics for an [`Rcu`](crate::Rcu) domain.
///
/// # Example
///
/// ```
/// use pbs_rcu::Rcu;
///
/// let rcu = Rcu::new();
/// rcu.synchronize();
/// let stats = rcu.stats();
/// assert!(stats.gp_advances >= 2);
/// assert_eq!(stats.callback_backlog, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RcuStats {
    /// Number of epoch advances (two advances = one grace period).
    pub gp_advances: u64,
    /// Number of blocking `synchronize` calls completed.
    pub synchronize_calls: u64,
    /// Callbacks ever queued with `call_rcu`.
    pub callbacks_enqueued: u64,
    /// Callbacks that have run.
    pub callbacks_processed: u64,
    /// Callbacks currently waiting.
    pub callback_backlog: usize,
    /// Highest backlog ever observed (the paper's §3.4 DoS metric).
    pub max_callback_backlog: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = StatsInner::default();
        s.record_enqueue(1);
        s.record_enqueue(2);
        s.record_processed(1);
        let snap = s.snapshot(1);
        assert_eq!(snap.callbacks_enqueued, 2);
        assert_eq!(snap.callbacks_processed, 1);
        assert_eq!(snap.callback_backlog, 1);
        assert_eq!(snap.max_callback_backlog, 2);
    }

    #[test]
    fn max_backlog_is_monotone() {
        let s = StatsInner::default();
        s.record_enqueue(10);
        s.record_enqueue(3);
        assert_eq!(s.snapshot(0).max_callback_backlog, 10);
    }
}
