//! RCU domain statistics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pbs_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

/// Internal atomic counters.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) gp_advances: AtomicU64,
    pub(crate) synchronize_calls: AtomicU64,
    /// Epoch advances decided under the membarrier-elided read protocol
    /// (readers skipped their publication fence; the advancer issued the
    /// process-wide barrier).
    pub(crate) membarrier_advances: AtomicU64,
    /// Epoch advances decided on the portable path (readers fence
    /// themselves; `heavy_barrier` is a no-op).
    pub(crate) fallback_fence_advances: AtomicU64,
    /// Advance attempts refused because an injected fault (site
    /// `rcu.advance`) stalled the grace period.
    pub(crate) injected_gp_stalls: AtomicU64,
    /// Stall episodes the watchdog warned about (one per episode, however
    /// long the reader stays pinned).
    pub(crate) stall_warnings: AtomicU64,
    /// Longest reader stall ever observed, in nanoseconds (`fetch_max`;
    /// grows while a stall is still in progress).
    pub(crate) longest_stall_ns: AtomicU64,
    /// Readers currently pinned past the stall threshold (gauge: incremented
    /// at warn, decremented at clear).
    pub(crate) active_stalls: AtomicU64,
    /// Stall episodes attributed to a culprit reader (one blame report per
    /// episode; see [`crate::BlameReport`]).
    pub(crate) stall_blames: AtomicU64,
    /// Expedited grace-period drives (`synchronize_expedited` /
    /// `expedite`).
    pub(crate) expedited_gps: AtomicU64,
    enqueued: AtomicU64,
    processed: AtomicU64,
    max_backlog: AtomicUsize,
    /// Wall-clock duration of blocking `synchronize` calls — the paper's
    /// grace-period latency distribution.
    pub(crate) gp_latency: LogHistogram,
    /// `call_rcu` enqueue → callback execution delay: how long the
    /// baseline's deferred objects stay dead-but-unreusable (§3.2).
    pub(crate) callback_delay: LogHistogram,
}

impl StatsInner {
    /// Counts an enqueue and folds `backlog_now` into the high-water mark.
    ///
    /// Monotonicity contract: `max_backlog` only ever increases, and after
    /// this call it is at least `backlog_now`. `fetch_max` gives up as soon
    /// as another thread has already published a larger maximum — the
    /// hand-rolled CAS loop this replaces kept retrying in that situation
    /// even though it had nothing left to contribute.
    pub(crate) fn record_enqueue(&self, backlog_now: usize) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.max_backlog.fetch_max(backlog_now, Ordering::Relaxed);
    }

    pub(crate) fn record_processed(&self, n: u64) {
        self.processed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one `call_rcu` enqueue→run delay, given the enqueue
    /// timestamp (0 = tracing was disabled at enqueue; skip).
    pub(crate) fn record_callback_delay(&self, queued_ns: u64, now_ns: u64) {
        if queued_ns != 0 {
            self.callback_delay.record(now_ns.saturating_sub(queued_ns));
        }
    }

    pub(crate) fn callbacks_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    pub(crate) fn callbacks_processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self, backlog: usize) -> RcuStats {
        RcuStats {
            gp_advances: self.gp_advances.load(Ordering::Relaxed),
            synchronize_calls: self.synchronize_calls.load(Ordering::Relaxed),
            membarrier_advances: self.membarrier_advances.load(Ordering::Relaxed),
            fallback_fence_advances: self.fallback_fence_advances.load(Ordering::Relaxed),
            injected_gp_stalls: self.injected_gp_stalls.load(Ordering::Relaxed),
            stall_warnings: self.stall_warnings.load(Ordering::Relaxed),
            longest_stall_ns: self.longest_stall_ns.load(Ordering::Relaxed),
            active_stalls: self.active_stalls.load(Ordering::Relaxed),
            stall_blames: self.stall_blames.load(Ordering::Relaxed),
            expedited_gps: self.expedited_gps.load(Ordering::Relaxed),
            callbacks_enqueued: self.enqueued.load(Ordering::Relaxed),
            callbacks_processed: self.processed.load(Ordering::Relaxed),
            callback_backlog: backlog,
            max_callback_backlog: self.max_backlog.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics for an [`Rcu`](crate::Rcu) domain.
///
/// # Example
///
/// ```
/// use pbs_rcu::Rcu;
///
/// let rcu = Rcu::new();
/// rcu.synchronize();
/// let stats = rcu.stats();
/// assert!(stats.gp_advances >= 2);
/// assert_eq!(stats.callback_backlog, 0);
/// // Every advance went through exactly one of the two barrier paths.
/// assert_eq!(
///     stats.gp_advances,
///     stats.membarrier_advances + stats.fallback_fence_advances
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RcuStats {
    /// Number of epoch advances (two advances = one grace period).
    pub gp_advances: u64,
    /// Number of blocking `synchronize` calls completed.
    pub synchronize_calls: u64,
    /// Advances decided with readers on the fence-elided path (the
    /// advancer's `membarrier` carried the StoreLoad ordering).
    pub membarrier_advances: u64,
    /// Advances decided on the portable fallback path (readers issue their
    /// own publication fence).
    pub fallback_fence_advances: u64,
    /// Grace-period advance attempts refused by injected faults (fault
    /// site `rcu.advance`); stays zero without a
    /// [`fault_injector`](crate::RcuConfig::fault_injector).
    pub injected_gp_stalls: u64,
    /// Reader stall episodes the watchdog warned about. Exactly one
    /// warning per episode: the counter bumps when a pin first exceeds
    /// [`stall_threshold`](crate::RcuConfig::stall_threshold) and not
    /// again until that reader unpins and stalls anew.
    pub stall_warnings: u64,
    /// Longest reader stall observed, in nanoseconds (still growing while
    /// a stall is in progress).
    pub longest_stall_ns: u64,
    /// Readers currently pinned past the stall threshold (gauge; returns
    /// to zero when every warned reader unpins).
    pub active_stalls: u64,
    /// Stall episodes attributed to a culprit (equals the number of
    /// [`BlameReport`](crate::BlameReport)s ever opened; at most one per
    /// warned episode).
    pub stall_blames: u64,
    /// Expedited grace-period drives
    /// ([`synchronize_expedited`](crate::Rcu::synchronize_expedited)).
    pub expedited_gps: u64,
    /// Callbacks ever queued with `call_rcu`.
    pub callbacks_enqueued: u64,
    /// Callbacks that have run.
    pub callbacks_processed: u64,
    /// Callbacks currently waiting.
    pub callback_backlog: usize,
    /// Highest backlog ever observed (the paper's §3.4 DoS metric).
    pub max_callback_backlog: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = StatsInner::default();
        s.record_enqueue(1);
        s.record_enqueue(2);
        s.record_processed(1);
        let snap = s.snapshot(1);
        assert_eq!(snap.callbacks_enqueued, 2);
        assert_eq!(snap.callbacks_processed, 1);
        assert_eq!(snap.callback_backlog, 1);
        assert_eq!(snap.max_callback_backlog, 2);
    }

    #[test]
    fn max_backlog_is_monotone() {
        let s = StatsInner::default();
        s.record_enqueue(10);
        s.record_enqueue(3);
        assert_eq!(s.snapshot(0).max_callback_backlog, 10);
    }

    #[test]
    fn max_backlog_survives_concurrent_publication() {
        // The monotonicity contract under contention: whatever interleaving
        // occurs, the final maximum is the largest value any thread saw.
        let s = std::sync::Arc::new(StatsInner::default());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000usize {
                        s.record_enqueue(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot(0).max_callback_backlog, 3999);
        assert_eq!(s.callbacks_enqueued(), 4000);
    }

    #[test]
    fn callback_delay_skips_untimed_entries() {
        let s = StatsInner::default();
        s.record_callback_delay(0, 100); // queued while tracing was off
        assert_eq!(s.callback_delay.snapshot().count, 0);
        s.record_callback_delay(40, 100);
        let snap = s.callback_delay.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 60);
    }

    #[test]
    fn rcu_stats_serde_round_trip() {
        let stats = RcuStats {
            gp_advances: 7,
            membarrier_advances: 7,
            callback_backlog: 3,
            ..Default::default()
        };
        let content = serde::Serialize::to_content(&stats);
        let back: RcuStats = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, stats);
    }
}
