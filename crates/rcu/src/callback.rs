//! Deferred-callback queues and the throttled background reclaimer.
//!
//! This module deliberately reproduces the *baseline* reclamation behaviour
//! of Linux RCU that the Prudence paper analyses in §3: callbacks are
//! processed asynchronously, in batches of at most `blimit`, with a pacing
//! interval between batches, and the batch limit is raised only when the
//! backlog exceeds `qhimark` (memory-pressure escalation). The result is
//! extended object lifetimes and bursty freeing — the pathologies Prudence
//! eliminates by owning deferred objects inside the allocator.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::domain::Inner;
use crate::epoch::GRACE_EPOCHS;

/// A deferred callback stamped with the epoch at which it was queued.
pub(crate) struct Callback {
    pub(crate) stamp: u64,
    /// Telemetry enqueue timestamp (`now_nanos`); 0 when tracing was
    /// disabled at enqueue, in which case no delay is recorded.
    pub(crate) queued_ns: u64,
    pub(crate) callback: Box<dyn FnOnce() + Send>,
}

/// A FIFO queue of callbacks; stamps are non-decreasing within a shard.
pub(crate) struct CallbackShard {
    queue: Mutex<VecDeque<Callback>>,
}

impl CallbackShard {
    pub(crate) fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn push(&self, cb: Callback) {
        self.queue.lock().push_back(cb);
    }

    /// Pops up to `limit` callbacks whose grace period completed at `epoch`.
    pub(crate) fn pop_ready(&self, epoch: u64, limit: usize) -> Vec<Callback> {
        let mut queue = self.queue.lock();
        let mut out = Vec::new();
        while out.len() < limit {
            match queue.front() {
                Some(head) if epoch >= head.stamp + GRACE_EPOCHS => {
                    out.push(queue.pop_front().expect("front was Some"));
                }
                _ => break,
            }
        }
        out
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

/// Throttling and background-thread parameters for an RCU domain.
///
/// Defaults mirror the spirit of Linux RCU: small callback batches
/// (`blimit`), escalation when the backlog crosses `qhimark`, and pacing
/// between batches (standing in for softirq scheduling delay).
///
/// # Example
///
/// ```
/// use pbs_rcu::{Rcu, RcuConfig};
/// use std::time::Duration;
///
/// let rcu = Rcu::with_config(RcuConfig {
///     blimit: 10,
///     qhimark: 10_000,
///     blimit_max: 4096,
///     batch_interval: Duration::from_micros(500),
///     ..RcuConfig::default()
/// });
/// assert_eq!(rcu.config().blimit, 10);
/// ```
#[derive(Clone)]
pub struct RcuConfig {
    /// Maximum callbacks a reclaimer processes per batch under normal load
    /// (Linux default is 10).
    pub blimit: usize,
    /// Backlog threshold above which throttling escalates to
    /// [`blimit_max`](Self::blimit_max) (Linux `qhimark`, default 10000).
    pub qhimark: usize,
    /// Batch limit used while the backlog exceeds `qhimark`.
    pub blimit_max: usize,
    /// Pause between reclaimer batches (softirq-pacing analog).
    pub batch_interval: Duration,
    /// Interval at which the grace-period driver attempts epoch advance.
    pub driver_interval: Duration,
    /// Number of background reclaimer threads (parallel callback
    /// processing, as on multi-CPU kernels).
    pub reclaimer_threads: usize,
    /// Number of callback queue shards.
    pub shards: usize,
    /// Optional memory-pressure probe in `[0, 1]`. When it reports more
    /// than [`pressure_threshold`](Self::pressure_threshold), reclaimers
    /// escalate to [`pressure_blimit`](Self::pressure_blimit) — the
    /// paper's §3.5 observation that "RCU attempts to process more
    /// deferred objects as the memory pressure increases".
    pub pressure_probe: Option<Arc<dyn Fn() -> f64 + Send + Sync>>,
    /// Pressure level above which expedited processing kicks in.
    pub pressure_threshold: f64,
    /// Batch limit used while under memory pressure.
    pub pressure_blimit: usize,
    /// Optional fault injector consulted (site [`pbs_fault::site::RCU_ADVANCE`])
    /// on every grace-period-advance attempt; a scheduled fault refuses the
    /// advance, stalling reclamation for that attempt. Stalls are counted in
    /// [`RcuStats::injected_gp_stalls`](crate::RcuStats::injected_gp_stalls).
    pub fault_injector: Option<Arc<pbs_fault::FaultInjector>>,
    /// Reader-pin duration past which the stall watchdog warns. The
    /// watchdog piggybacks on the grace-period driver thread — detection
    /// latency is bounded below by [`driver_interval`](Self::driver_interval)
    /// — and fires exactly one warning per stall episode
    /// ([`RcuStats::stall_warnings`](crate::RcuStats::stall_warnings)),
    /// clearing when the reader unpins.
    pub stall_threshold: Duration,
    /// Bound on the expedited grace-period drive: `synchronize_expedited`
    /// spins this many `try_advance` rounds (yielding with backoff after
    /// the first few) before falling back to passive polling like plain
    /// `synchronize`.
    pub expedite_retries: usize,
}

impl std::fmt::Debug for RcuConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuConfig")
            .field("blimit", &self.blimit)
            .field("qhimark", &self.qhimark)
            .field("blimit_max", &self.blimit_max)
            .field("batch_interval", &self.batch_interval)
            .field("driver_interval", &self.driver_interval)
            .field("reclaimer_threads", &self.reclaimer_threads)
            .field("shards", &self.shards)
            .field("pressure_probe", &self.pressure_probe.as_ref().map(|_| "<fn>"))
            .field("pressure_threshold", &self.pressure_threshold)
            .field("pressure_blimit", &self.pressure_blimit)
            .field(
                "fault_injector",
                &self.fault_injector.as_ref().map(|_| "<injector>"),
            )
            .field("stall_threshold", &self.stall_threshold)
            .field("expedite_retries", &self.expedite_retries)
            .finish()
    }
}

impl Default for RcuConfig {
    fn default() -> Self {
        Self {
            blimit: 64,
            qhimark: 10_000,
            blimit_max: 8192,
            batch_interval: Duration::from_micros(200),
            driver_interval: Duration::from_micros(50),
            reclaimer_threads: 2,
            shards: 16,
            pressure_probe: None,
            pressure_threshold: 0.8,
            pressure_blimit: 16384,
            fault_injector: None,
            // Long enough that ordinary read-side critical sections (ns–µs)
            // never warn; short enough that a wedged reader is reported
            // within human-noticeable time.
            stall_threshold: Duration::from_millis(100),
            expedite_retries: 64,
        }
    }
}

impl RcuConfig {
    /// A configuration with aggressive, barely-throttled reclamation; useful
    /// in tests that want callbacks to run promptly.
    pub fn eager() -> Self {
        Self {
            blimit: usize::MAX,
            qhimark: 0,
            blimit_max: usize::MAX,
            batch_interval: Duration::from_micros(20),
            driver_interval: Duration::from_micros(20),
            reclaimer_threads: 2,
            shards: 8,
            ..Self::default()
        }
    }

    /// Attaches a memory-pressure probe (see
    /// [`pressure_probe`](Self::pressure_probe)).
    pub fn with_pressure_probe(mut self, probe: Arc<dyn Fn() -> f64 + Send + Sync>) -> Self {
        self.pressure_probe = Some(probe);
        self
    }

    /// Attaches a fault injector (see
    /// [`fault_injector`](Self::fault_injector)).
    pub fn with_fault_injector(mut self, faults: Arc<pbs_fault::FaultInjector>) -> Self {
        self.fault_injector = Some(faults);
        self
    }

    /// Sets the stall-watchdog threshold (see
    /// [`stall_threshold`](Self::stall_threshold)).
    pub fn with_stall_threshold(mut self, threshold: Duration) -> Self {
        self.stall_threshold = threshold;
        self
    }

    /// A configuration that mirrors Linux defaults closely enough to
    /// reproduce the paper's §3.5 endurance pathology at laptop scale:
    /// small batches, slow escalation, and millisecond-scale grace
    /// periods. The driver interval is the key burstiness knob — kernel
    /// grace periods take milliseconds, so completed callbacks arrive in
    /// large per-grace-period bursts rather than a smooth trickle.
    pub fn linux_like() -> Self {
        Self {
            blimit: 10,
            qhimark: 10_000,
            blimit_max: 2048,
            batch_interval: Duration::from_micros(500),
            driver_interval: Duration::from_millis(1),
            reclaimer_threads: 2,
            shards: 16,
            ..Self::default()
        }
    }

    /// Kernel-shaped *bursty* reclamation: grace periods take
    /// milliseconds, and when one completes the softirq path re-raises
    /// itself until the ready list is drained. The result is exactly the
    /// §3.1 pathology — "object allocation is spread over an interval of
    /// time, whereas freeing occurs in bursts" — a full grace period's
    /// worth of frees landing on the allocator at once.
    pub fn kernel_bursty() -> Self {
        Self {
            blimit: 512,
            qhimark: 10_000,
            blimit_max: 8192,
            batch_interval: Duration::from_micros(100),
            driver_interval: Duration::from_millis(2),
            reclaimer_threads: 2,
            shards: 16,
            ..Self::default()
        }
    }

    /// The endurance configuration (§3.5): reclamation capacity modeled
    /// after a single CPU's softirq budget so that, as on the paper's
    /// 64-CPU machine, a saturating updater outruns callback processing
    /// and the baseline's backlog grows without bound.
    pub fn overwhelmed() -> Self {
        Self {
            blimit: 10,
            qhimark: 10_000,
            blimit_max: 512,
            batch_interval: Duration::from_millis(1),
            driver_interval: Duration::from_millis(1),
            reclaimer_threads: 1,
            shards: 16,
            // Expedited-but-still-insufficient processing under pressure,
            // as in Figure 3's ~70 s inflection before the eventual OOM.
            pressure_blimit: 1024,
            ..Self::default()
        }
    }
}

/// Body of a background reclaimer thread. Each worker owns the shards with
/// `index % reclaimer_threads == worker_idx`.
pub(crate) fn reclaimer_loop(inner: &Inner, worker_idx: usize) {
    let nworkers = inner.config.reclaimer_threads.max(1);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let epoch = inner.epoch.load(Ordering::Acquire);
        let backlog = inner.backlog.load(Ordering::Relaxed);
        let mut limit = if backlog > inner.config.qhimark {
            inner.config.blimit_max
        } else {
            inner.config.blimit
        };
        // §3.5: expedite processing under memory pressure.
        if let Some(probe) = &inner.config.pressure_probe {
            if probe() > inner.config.pressure_threshold {
                limit = limit.max(inner.config.pressure_blimit);
            }
        }
        let mut processed = 0usize;
        for (i, shard) in inner.shards.iter().enumerate() {
            if i % nworkers != worker_idx {
                continue;
            }
            if processed >= limit {
                break;
            }
            let ready = shard.pop_ready(epoch, limit - processed);
            if ready.is_empty() {
                continue;
            }
            // One timestamp per batch: the enqueue→run delay distribution
            // (§3.2 extended lifetimes) does not need per-callback clock
            // reads.
            let now_ns = pbs_telemetry::now_nanos();
            for cb in ready {
                inner.stats.record_callback_delay(cb.queued_ns, now_ns);
                (cb.callback)();
                processed += 1;
            }
        }
        if processed > 0 {
            inner.backlog.fetch_sub(processed, Ordering::Relaxed);
            inner.stats.record_processed(processed as u64);
        }
        // Pacing: even with work pending, the kernel's softirq yields the
        // CPU between batches. This is what throttles reclamation. The
        // shutdown-aware park keeps teardown from waiting an interval out.
        inner.park(inner.config.batch_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_pop_respects_grace_period() {
        let shard = CallbackShard::new();
        shard.push(Callback {
            stamp: 0,
            queued_ns: 0,
            callback: Box::new(|| {}),
        });
        shard.push(Callback {
            stamp: 5,
            queued_ns: 0,
            callback: Box::new(|| {}),
        });
        assert_eq!(shard.pop_ready(1, 10).len(), 0);
        assert_eq!(shard.pop_ready(2, 10).len(), 1);
        assert_eq!(shard.pop_ready(6, 10).len(), 0);
        assert_eq!(shard.pop_ready(7, 10).len(), 1);
        assert_eq!(shard.len(), 0);
    }

    #[test]
    fn shard_pop_respects_limit() {
        let shard = CallbackShard::new();
        for _ in 0..10 {
            shard.push(Callback {
                stamp: 0,
                queued_ns: 0,
                callback: Box::new(|| {}),
            });
        }
        assert_eq!(shard.pop_ready(2, 3).len(), 3);
        assert_eq!(shard.len(), 7);
    }

    #[test]
    fn default_config_is_throttled() {
        let c = RcuConfig::default();
        assert!(c.blimit < c.blimit_max);
        assert!(c.qhimark > 0);
        assert!(c.pressure_probe.is_none());
        assert!(format!("{c:?}").contains("blimit"));
    }

    #[test]
    fn pressure_probe_expedites_processing() {
        use crate::Rcu;
        use std::sync::atomic::{AtomicBool, AtomicU64};

        let pressured = Arc::new(AtomicBool::new(false));
        let probe_flag = Arc::clone(&pressured);
        // Severely throttled: 1 callback per 2 ms without pressure.
        let rcu = Rcu::with_config(RcuConfig {
            blimit: 1,
            qhimark: usize::MAX,
            blimit_max: 1,
            batch_interval: Duration::from_millis(2),
            driver_interval: Duration::from_micros(50),
            reclaimer_threads: 1,
            shards: 4,
            pressure_threshold: 0.5,
            pressure_blimit: 10_000,
            ..RcuConfig::default()
        }.with_pressure_probe(Arc::new(move || {
            if probe_flag.load(Ordering::Relaxed) { 1.0 } else { 0.0 }
        })));
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let done = Arc::clone(&done);
            rcu.call_rcu(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        std::thread::sleep(Duration::from_millis(40));
        let without_pressure = done.load(Ordering::Relaxed);
        assert!(
            without_pressure < 100,
            "throttle should limit processing, got {without_pressure}"
        );
        pressured.store(true, Ordering::Relaxed);
        rcu.barrier();
        assert_eq!(done.load(Ordering::Relaxed), 500);
    }
}
