//! Pluggable memory-reclamation backends (`ReclamationDomain`).
//!
//! The paper's prudence scheme inherits epoch RCU's classic failure mode:
//! one stalled reader pins the epoch and every object deferred after its
//! pin stays dead-but-unreusable *forever* — the PR 5 watchdog can report
//! the stall but not bound the garbage. This module extracts the
//! reclamation contract the allocators actually rely on into a trait and
//! provides three interchangeable backends:
//!
//! | backend   | mechanism                         | garbage bound under one stalled reader |
//! |-----------|-----------------------------------|----------------------------------------|
//! | `epoch`   | grace periods ([`Rcu`])           | **unbounded** (the bug, kept as the baseline) |
//! | `hp`      | hazard pointers, scan-on-threshold| `scan_threshold + threads × HP_SLOTS`  |
//! | `hyaline` | reference-tracked batches + ejection | `batch_size + defer-rate × eject_after` |
//!
//! Selection mirrors the `PBS_FASTPATH` pattern: `PBS_RECLAIM=epoch|hp|
//! hyaline` picks the backend new testbeds construct, decided once per
//! process ([`ReclaimBackend::from_env`]).
//!
//! ## Reader contracts
//!
//! The backends deliberately share the [`Rcu`] reader registry, so one
//! `read_lock` fast path serves all three — but what a critical section
//! *means* differs:
//!
//! * `epoch` — a pinned reader keeps every object it could have reached
//!   alive. Guard-only traversal is safe (the paper's model).
//! * `hp` — a pin keeps nothing alive by itself; only a published and
//!   re-validated hazard ([`RcuThread::protect`]) does.
//! * `hyaline` — a pin keeps alive everything retired *while it was
//!   pinned* (batch capture), unless the reader stalls past the ejection
//!   threshold while blocking sealed batches, in which case its capture
//!   is revoked and it must re-validate ([`ReadGuard::validate`]) before
//!   trusting earlier reads.
//!
//! Pointer-chasing readers don't implement these contracts by hand:
//! [`ReadGuard::walk`] (see [`crate::traverse`]) dispatches on a
//! [`TraversalKind`] derived from the backend and performs the per-hop
//! protection — plain loads under `epoch`, hazard publish + revalidate
//! under `hp`, per-hop ejection checks with retry-from-root under
//! `hyaline`. Structures that retire nodes under a robust backend must
//! poison the retired node's outgoing links
//! ([`crate::traverse::poison_link`]) so a walker parked on a retired
//! node cannot follow a stale pointer past a second, invisible unlink.
//!
//! [`RcuThread::protect`]: crate::RcuThread::protect
//! [`ReadGuard::validate`]: crate::ReadGuard::validate
//! [`ReadGuard::walk`]: crate::ReadGuard::walk
//! [`TraversalKind`]: crate::TraversalKind

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::Rcu;

mod epoch_backend;
mod hp;
mod hyaline;

pub use epoch_backend::EpochDomain;
pub use hp::HpDomain;
pub use hyaline::HyalineDomain;

/// Names a [`ReclaimClient`] within one domain (dense index, assigned by
/// [`ReclamationDomain::register_client`]).
pub type ClientId = usize;

/// The cache-side half of the reclamation contract: a domain calls this
/// back when deferred objects have become safe to reuse.
///
/// Clients are held as [`Weak`] references — a domain never keeps a cache
/// alive, and addresses whose client has been dropped are discarded (the
/// cache's teardown path returns their slabs to the page allocator
/// wholesale, exactly as the SLUB baseline's dead-cache RCU callbacks
/// already behave).
pub trait ReclaimClient: Send + Sync {
    /// Returns objects (by address, as handed to
    /// [`ReclamationDomain::defer`]) to the owning cache.
    ///
    /// Domains guarantee this is invoked with no domain-internal locks
    /// held, so the client may perform arbitrary cache work — but it must
    /// not call back into [`ReclamationDomain::defer`] for this domain
    /// from inside the callback.
    fn reclaim_addrs(&self, addrs: &[usize]);
}

/// Which reclamation scheme a domain runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReclaimBackend {
    /// Epoch-based grace periods (the paper's scheme; unbounded garbage
    /// under a stalled reader).
    Epoch,
    /// Hazard pointers with scan-on-threshold retire lists.
    Hp,
    /// Hyaline-style reference-tracked batches with stalled-reader
    /// ejection.
    Hyaline,
}

impl ReclaimBackend {
    /// Every backend, in comparison-matrix order.
    pub const ALL: [ReclaimBackend; 3] =
        [ReclaimBackend::Epoch, ReclaimBackend::Hp, ReclaimBackend::Hyaline];

    /// Stable lowercase label (CLI flags, run metadata, reports).
    pub fn label(self) -> &'static str {
        match self {
            ReclaimBackend::Epoch => "epoch",
            ReclaimBackend::Hp => "hp",
            ReclaimBackend::Hyaline => "hyaline",
        }
    }

    /// The backend new testbeds select, honoring `PBS_RECLAIM`
    /// (`epoch` / `hp` / `hyaline`). Decided once per process, mirroring
    /// `PBS_FASTPATH`: unknown or unset values fall back to [`Epoch`]
    /// (the paper's scheme stays the default).
    ///
    /// [`Epoch`]: ReclaimBackend::Epoch
    pub fn from_env() -> ReclaimBackend {
        static CHOICE: OnceLock<ReclaimBackend> = OnceLock::new();
        *CHOICE.get_or_init(|| {
            std::env::var("PBS_RECLAIM")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(ReclaimBackend::Epoch)
        })
    }
}

impl fmt::Display for ReclaimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ReclaimBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "epoch" => Ok(ReclaimBackend::Epoch),
            "hp" => Ok(ReclaimBackend::Hp),
            "hyaline" => Ok(ReclaimBackend::Hyaline),
            other => Err(format!(
                "unknown reclamation backend {other:?} (expected epoch|hp|hyaline)"
            )),
        }
    }
}

/// Tuning knobs of the robust backends; irrelevant fields are ignored by
/// the backend that doesn't use them.
#[derive(Debug, Clone)]
pub struct ReclaimConfig {
    /// `hp`: retire-list length that triggers a scan. The scan is what
    /// bounds the garbage, so this is the dominant term of the hp bound.
    pub scan_threshold: usize,
    /// `hyaline`: deferred objects per batch before the batch seals and
    /// captures its reader reference set.
    pub batch_size: usize,
    /// `hyaline`: how long a reader may stay continuously pinned *while
    /// blocking sealed batches* before its capture is revoked
    /// (ejection). Must comfortably exceed every legitimate critical
    /// section; readers that can stall longer must re-validate
    /// ([`ReadGuard::validate`](crate::ReadGuard::validate)).
    pub eject_after: Duration,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        Self {
            scan_threshold: 256,
            batch_size: 64,
            eject_after: Duration::from_secs(1),
        }
    }
}

impl ReclaimConfig {
    /// A tight configuration for harnesses that need ejections and scans
    /// within milliseconds (chaos scenarios, property tests).
    pub fn aggressive() -> Self {
        Self {
            scan_threshold: 64,
            batch_size: 16,
            eject_after: Duration::from_millis(2),
        }
    }
}

/// Point-in-time statistics of a [`ReclamationDomain`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclaimStats {
    /// [`ReclaimBackend::label`] of the producing backend.
    pub backend: String,
    /// Objects deferred into the domain and not yet returned to their
    /// clients (for `epoch` this is the callback backlog).
    pub deferred_in_domain: usize,
    /// `hp`: retire-list scans that ran (refused ones excluded).
    pub scans: u64,
    /// `hp`: objects a scan found unprotected and returned.
    pub scan_reclaimed: u64,
    /// `hp`: object observations left on the retire list because a
    /// hazard protected them (an object kept across `n` scans counts
    /// `n` times).
    pub scan_protected: u64,
    /// `hyaline`: batches sealed with a captured reference set.
    pub batches_sealed: u64,
    /// `hyaline`: reader references captured across all seals.
    pub batch_refs_captured: u64,
    /// `hyaline`: stalled readers ejected to release blocked batches.
    pub ejections: u64,
    /// Reclamation steps refused by the `reclaim.advance` fault site
    /// (for `epoch`, injected stalls are counted in
    /// [`RcuStats::injected_gp_stalls`](crate::RcuStats) instead).
    pub injected_stalls: u64,
}

/// The reclamation contract both allocators program against: pin/unpin
/// arrive via the shared [`Rcu`] reader registration, everything else —
/// deferral, progress, blocking drains, stats — goes through this trait.
///
/// Object-safe on purpose: caches hold `Arc<dyn ReclamationDomain>` and
/// the backend is chosen at runtime.
pub trait ReclamationDomain: Send + Sync {
    /// Which scheme this domain runs.
    fn backend(&self) -> ReclaimBackend;

    /// The underlying synchronization domain. All backends share it: it
    /// provides reader registration (pin/unpin), the reader registry the
    /// robust backends scan, and the epoch machinery the `epoch` backend
    /// is made of.
    fn rcu(&self) -> &Arc<Rcu>;

    /// Registers a reclamation client; the returned id names it in
    /// [`defer`](Self::defer).
    fn register_client(&self, client: Weak<dyn ReclaimClient>) -> ClientId;

    /// Hands one retired object to the domain. The caller must already
    /// have unlinked the object (no *new* reader can reach it); the
    /// domain invokes [`ReclaimClient::reclaim_addrs`] once the backend
    /// proves no captured reader can still hold it.
    ///
    /// `#[track_caller]` so per-site garbage attribution can tag direct
    /// domain users with their own call site (allocator-layer callers
    /// stamp first and win; see `pbs_telemetry::site`).
    #[track_caller]
    fn defer(&self, client: ClientId, addr: usize);

    /// One bounded reclamation-progress step (epoch-advance attempt,
    /// retire-list scan, or batch seal + release pass). Never blocks on
    /// readers; returns whether anything progressed. This is the hook
    /// pressure ladders and harness drive loops call.
    fn advance(&self) -> bool;

    /// Blocks until every object deferred *before* this call has been
    /// returned to its client (the backend-generic `synchronize`). Like
    /// [`Rcu::synchronize`], must not be called from inside a read-side
    /// critical section of the same domain.
    fn synchronize(&self);

    /// [`synchronize`](Self::synchronize) with an eager first drive —
    /// the generalization of [`Rcu::synchronize_expedited`] the OOM
    /// recovery ladder calls.
    fn synchronize_expedited(&self);

    /// Bounded eager drive toward reclamation progress; never blocks
    /// indefinitely (safe with a stalled reader wedging the domain).
    /// Returns whether the drive made progress. Backpressure
    /// transitions call this.
    fn expedite(&self) -> bool;

    /// Objects deferred into the domain and not yet returned.
    fn deferred_in_domain(&self) -> usize;

    /// Statistics snapshot.
    fn reclaim_stats(&self) -> ReclaimStats;
}

/// A cache's attachment to its domain: the domain handle, the cache's
/// client id within it, and whether the backend is *robust* (bounds
/// garbage under stalled readers — i.e. anything but `epoch`).
///
/// The `robust` flag is what the allocator hot paths branch on: the
/// epoch backend keeps the caches' existing latent/callback machinery
/// byte-for-byte (the paper's scheme, and the perf baseline), while
/// robust backends divert deferred objects into the domain.
pub struct DomainHandle {
    /// The attached domain.
    pub domain: Arc<dyn ReclamationDomain>,
    /// This cache's client id within [`domain`](Self::domain).
    pub client: ClientId,
    /// `backend() != Epoch`: deferred objects route through the domain.
    pub robust: bool,
}

impl DomainHandle {
    /// Registers `client` with `domain` and wraps both.
    pub fn attach(domain: Arc<dyn ReclamationDomain>, client: Weak<dyn ReclaimClient>) -> Self {
        let client = domain.register_client(client);
        let robust = domain.backend() != ReclaimBackend::Epoch;
        Self {
            domain,
            client,
            robust,
        }
    }
}

impl fmt::Debug for DomainHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainHandle")
            .field("backend", &self.domain.backend())
            .field("client", &self.client)
            .field("robust", &self.robust)
            .finish()
    }
}

/// Constructs the backend selected by `backend` over `rcu`.
pub fn domain_for(
    rcu: Arc<Rcu>,
    backend: ReclaimBackend,
    config: ReclaimConfig,
) -> Arc<dyn ReclamationDomain> {
    match backend {
        ReclaimBackend::Epoch => Arc::new(EpochDomain::new(rcu)),
        ReclaimBackend::Hp => Arc::new(HpDomain::new(rcu, config)),
        ReclaimBackend::Hyaline => Arc::new(HyalineDomain::new(rcu, config)),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use parking_lot::Mutex;

    /// A client that records every reclaimed address, for backend unit
    /// tests.
    #[derive(Default)]
    pub(crate) struct RecordingClient {
        pub(crate) reclaimed: Mutex<Vec<usize>>,
    }

    impl ReclaimClient for RecordingClient {
        fn reclaim_addrs(&self, addrs: &[usize]) {
            self.reclaimed.lock().extend_from_slice(addrs);
        }
    }

    impl RecordingClient {
        pub(crate) fn count(&self) -> usize {
            self.reclaimed.lock().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_round_trip() {
        for backend in ReclaimBackend::ALL {
            assert_eq!(backend.label().parse::<ReclaimBackend>(), Ok(backend));
            assert_eq!(backend.to_string(), backend.label());
        }
        assert!("garbage".parse::<ReclaimBackend>().is_err());
        assert_eq!(" HP ".parse::<ReclaimBackend>(), Ok(ReclaimBackend::Hp));
    }

    #[test]
    fn reclaim_stats_serde_round_trip() {
        let stats = ReclaimStats {
            backend: "hp".to_owned(),
            deferred_in_domain: 3,
            scans: 2,
            scan_reclaimed: 40,
            ..Default::default()
        };
        let content = serde::Serialize::to_content(&stats);
        let back: ReclaimStats = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn domain_for_constructs_every_backend() {
        for backend in ReclaimBackend::ALL {
            let rcu = Arc::new(Rcu::with_config(crate::RcuConfig::eager()));
            let domain = domain_for(rcu, backend, ReclaimConfig::default());
            assert_eq!(domain.backend(), backend);
            assert_eq!(domain.deferred_in_domain(), 0);
            assert_eq!(domain.reclaim_stats().backend, backend.label());
        }
    }
}
