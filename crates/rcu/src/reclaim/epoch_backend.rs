//! The epoch backend: [`ReclamationDomain`] as a thin adapter over the
//! grace-period machinery the paper builds on.
//!
//! This backend exists so the trait has an honest baseline: deferred
//! addresses ride the classic `call_rcu` path (background reclaimers,
//! Linux-style batch throttling), and every progress/blocking operation
//! maps 1:1 onto the [`Rcu`] call the allocators used to make directly.
//! Its garbage is **unbounded** under a stalled reader — one pinned
//! thread wedges the epoch and with it every object deferred after the
//! pin. That is not a defect of the adapter but the property the robust
//! backends (`hp`, `hyaline`) are measured against.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use super::{ClientId, ReclaimBackend, ReclaimClient, ReclaimStats, ReclamationDomain};
use crate::{GpState, Rcu};

/// Epoch-based backend; see the module docs.
pub struct EpochDomain {
    rcu: Arc<Rcu>,
    clients: Mutex<Vec<Weak<dyn ReclaimClient>>>,
}

impl EpochDomain {
    /// Wraps `rcu` as a [`ReclamationDomain`].
    pub fn new(rcu: Arc<Rcu>) -> Self {
        // Symmetric with the robust backends; epoch protection needs no
        // domain cooperation, so `protects_backend(Epoch)` is true for
        // every guard regardless of this mark.
        rcu.attach_backend(ReclaimBackend::Epoch);
        Self {
            rcu,
            clients: Mutex::new(Vec::new()),
        }
    }
}

impl ReclamationDomain for EpochDomain {
    fn backend(&self) -> ReclaimBackend {
        ReclaimBackend::Epoch
    }

    fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    fn register_client(&self, client: Weak<dyn ReclaimClient>) -> ClientId {
        let mut clients = self.clients.lock();
        clients.push(client);
        clients.len() - 1
    }

    fn defer(&self, client: ClientId, addr: usize) {
        if pbs_telemetry::enabled() {
            // Direct domain users get attributed here; allocator-layer
            // callers already stamped the address with their own site.
            pbs_telemetry::site::note_deferred_if_untracked(
                addr,
                pbs_telemetry::site::intern(std::panic::Location::caller()),
                pbs_telemetry::site::BACKEND_EPOCH,
            );
        }
        let client = self.clients.lock()[client].clone();
        self.rcu.call_rcu(Box::new(move || {
            pbs_telemetry::site::note_reclaimed(addr);
            if let Some(client) = client.upgrade() {
                client.reclaim_addrs(&[addr]);
            }
        }));
    }

    fn advance(&self) -> bool {
        let inner = self.rcu.inner();
        let before = inner.epoch.load(Ordering::Acquire);
        inner.try_advance() > before
    }

    fn synchronize(&self) {
        // A grace period alone does not run the queued callbacks; the
        // barrier semantics (every defer issued before this call has been
        // *returned*) are what the trait promises, so wait for the
        // reclaimers too when anything is queued.
        if self.rcu.callback_backlog() == 0 {
            self.rcu.synchronize();
        } else {
            self.rcu.barrier();
        }
    }

    fn synchronize_expedited(&self) {
        self.rcu.synchronize_expedited();
        if self.rcu.callback_backlog() > 0 {
            self.rcu.barrier();
        }
    }

    fn expedite(&self) -> bool {
        self.rcu.expedite()
    }

    fn deferred_in_domain(&self) -> usize {
        self.rcu.callback_backlog()
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        let rcu = self.rcu.stats();
        ReclaimStats {
            backend: self.backend().label().to_owned(),
            deferred_in_domain: rcu.callback_backlog,
            // Epoch-side injected stalls live in RcuStats; mirrored here
            // so the comparison matrix reads one struct per backend.
            injected_stalls: rcu.injected_gp_stalls,
            ..ReclaimStats::default()
        }
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("backlog", &self.rcu.callback_backlog())
            .finish()
    }
}

/// Convenience: the state a deferred object would be stamped with now.
/// Used by tests that compare adapter behaviour against the raw API.
#[allow(dead_code)]
pub(crate) fn current_state(rcu: &Rcu) -> GpState {
    rcu.gp_state()
}

#[cfg(test)]
mod tests {
    use super::super::test_support::RecordingClient;
    use super::*;
    use crate::RcuConfig;

    #[test]
    fn defer_returns_addresses_after_a_grace_period() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = EpochDomain::new(Arc::clone(&rcu));
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        for addr in [0x1000usize, 0x2000, 0x3000] {
            domain.defer(id, addr);
        }
        domain.synchronize();
        assert_eq!(domain.deferred_in_domain(), 0);
        let mut got = client.reclaimed.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn stalled_reader_wedges_the_epoch_backend() {
        // The documented bug the robust backends bound: a pinned reader
        // blocks every defer issued after its pin, without limit.
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = EpochDomain::new(Arc::clone(&rcu));
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        let reader = rcu.register();
        let guard = reader.read_lock();
        for addr in 1..=64usize {
            domain.defer(id, addr << 4);
        }
        // A bounded eager drive cannot complete a grace period.
        assert!(!domain.expedite());
        assert_eq!(client.count(), 0, "reclaimed under a pinned reader");
        assert_eq!(domain.deferred_in_domain(), 64);
        drop(guard);
        domain.synchronize();
        assert_eq!(client.count(), 64);
    }

    #[test]
    fn dead_clients_drop_their_addresses() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = EpochDomain::new(Arc::clone(&rcu));
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        domain.defer(id, 0xAB0);
        drop(client);
        domain.synchronize();
        assert_eq!(domain.deferred_in_domain(), 0);
    }
}
