//! The Hyaline-style backend: reference-tracked retire batches with
//! stalled-reader ejection.
//!
//! Deferred objects accumulate in an *open* batch; at `batch_size` the
//! batch **seals**: after the advancer-side barrier protocol (SeqCst
//! fence + process-wide membarrier, reused verbatim from the epoch
//! machinery) the sealer walks the reader registry and records a
//! reference `(record_id, pin_seq)` for every reader pinned at that
//! moment. The batch may be released — its objects returned to their
//! caches — once every captured reference is *observed dead*: the record
//! is gone or inactive, unpinned, re-pinned at a later sequence, or
//! ejected. This trades Hyaline's reader-side release decrements for
//! scanner-side observation (readers stay store-only on the fast path,
//! matching this codebase's asymmetric-barrier design), at the cost of a
//! release pass that must be driven (by defers, pressure expedites, or
//! `synchronize`).
//!
//! ## Capture argument
//!
//! A reader can hold a batch object only if it was pinned *before* the
//! object's unlink and has remained in that critical section since
//! (unlink → defer → seal, and under this crate's reader contract a
//! pointer obtained in one critical section may not be carried into the
//! next). Such a reader is still pinned at seal time with the same
//! `pin_seq`, so the seal captures it: the registry walk observes pin
//! words with an RMW *after* the membarrier, and the sequence read
//! (Acquire, after the pin observation) is at least the observed pin's —
//! newer only if the reader already moved on, which is conservative. A
//! reader that pins after the sealer's membarrier is not captured, but
//! its critical-section loads run after the barrier and therefore see
//! the pre-barrier unlinks: it cannot reach any object in the batch.
//! Hence releasing a batch whose captured references have all exited
//! frees nothing any reader can still hold.
//!
//! ## Garbage bound via ejection
//!
//! One stalled reader blocks only the batches sealed *during its pin* —
//! but that is still unbounded in time, so the release pass additionally
//! tracks how long each captured reference has been blocking. Past
//! `eject_after` the reference is **ejected** (DEBRA+-style
//! neutralization, with a poll instead of a signal): the record's
//! ejection mark is set to the captured sequence and the reference is
//! dropped. Outstanding garbage is therefore bounded by the open batch
//! plus whatever was deferred inside one `eject_after` window — the
//! per-stalled-thread bound the chaos scenario asserts. The ejected
//! reader's side of the contract is [`ReadGuard::validate`]: after a
//! stall it must re-validate before trusting earlier reads.
//!
//! [`ReadGuard::validate`]: crate::ReadGuard::validate

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;
use pbs_telemetry::EventKind;

use super::{ClientId, ReclaimBackend, ReclaimClient, ReclaimConfig, ReclaimStats, ReclamationDomain};
use crate::membarrier;
use crate::Rcu;

/// A captured reader reference: this batch may not release while record
/// `record_id` is still pinned at `pin_seq` (and not ejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BatchRef {
    record_id: u64,
    pin_seq: u64,
}

/// A sealed batch awaiting the death of its captured references.
struct Batch {
    /// Seal order; `synchronize` waits for a prefix of it.
    seq: u64,
    items: Vec<(ClientId, usize)>,
    refs: Vec<BatchRef>,
}

/// Hyaline-style batch backend; see the module docs.
pub struct HyalineDomain {
    rcu: Arc<Rcu>,
    config: ReclaimConfig,
    clients: Mutex<Vec<Weak<dyn ReclaimClient>>>,
    open: Mutex<Vec<(ClientId, usize)>>,
    /// Sealed batches in seal order, plus the blocking clock: first time
    /// each still-live captured reference was seen blocking a batch.
    /// One lock for both so a release pass is atomic w.r.t. sealing.
    sealed: Mutex<SealedState>,
    batch_seq: AtomicU64,
    deferred: AtomicUsize,
    batches_sealed: AtomicU64,
    refs_captured: AtomicU64,
    ejections: AtomicU64,
    injected_stalls: AtomicU64,
}

#[derive(Default)]
struct SealedState {
    batches: Vec<Batch>,
    blocking_since: HashMap<BatchRef, Instant>,
}

impl HyalineDomain {
    /// A Hyaline-style domain over `rcu`'s reader registry.
    pub fn new(rcu: Arc<Rcu>, config: ReclaimConfig) -> Self {
        // Pins on this registry are now batch-captured (and ejectable)
        // by this domain; `ReadGuard::protects_backend` reports it.
        rcu.attach_backend(ReclaimBackend::Hyaline);
        Self {
            rcu,
            config,
            clients: Mutex::new(Vec::new()),
            open: Mutex::new(Vec::new()),
            sealed: Mutex::new(SealedState::default()),
            batch_seq: AtomicU64::new(0),
            deferred: AtomicUsize::new(0),
            batches_sealed: AtomicU64::new(0),
            refs_captured: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
        }
    }

    /// Seals the open batch (if non-empty) with a freshly captured
    /// reference set, unless the `reclaim.advance` fault site refuses —
    /// refusal only procrastinates (the open batch keeps absorbing
    /// defers until a later attempt succeeds).
    fn try_seal(&self) -> bool {
        let inner = self.rcu.inner();
        if let Some(faults) = &inner.config.fault_injector {
            if faults.should_fail(pbs_fault::site::RECLAIM_ADVANCE) {
                self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        let items: Vec<(ClientId, usize)> = {
            let mut open = self.open.lock();
            if open.is_empty() {
                return false;
            }
            std::mem::take(&mut *open)
        };
        // Advancer-side barrier protocol: after this, the registry walk's
        // RMW pin observations are trustworthy, and any reader it does
        // NOT capture started after the barrier and thus sees the
        // unlinks that preceded every defer in `items` (module docs).
        fence(Ordering::SeqCst);
        membarrier::heavy_barrier();
        let refs: Vec<BatchRef> = {
            let registry = inner.registry.lock();
            registry
                .iter()
                .filter(|rec| rec.is_active())
                .filter(|rec| rec.observe_pinned_epoch().is_some())
                .map(|rec| BatchRef {
                    record_id: rec.id(),
                    // Read after the pin observation: at least the
                    // observed pin's sequence (see epoch::ThreadRecord).
                    pin_seq: rec.pin_seq(),
                })
                .collect()
        };
        let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.batches_sealed.fetch_add(1, Ordering::Relaxed);
        self.refs_captured.fetch_add(refs.len() as u64, Ordering::Relaxed);
        if pbs_telemetry::enabled() {
            inner
                .ring
                .record_thread(EventKind::BatchSeal, 0, items.len() as u64, refs.len() as u64);
        }
        let batch = Batch { seq, items, refs };
        self.sealed.lock().batches.push(batch);
        true
    }

    /// One release pass: drop observed-dead references, eject readers
    /// that have been blocking past `eject_after`, return ready batches
    /// to their clients. Returns the number of objects released.
    fn release_pass(&self) -> usize {
        let inner = self.rcu.inner();
        let now = Instant::now();
        let mut ready: Vec<Batch> = Vec::new();
        {
            let mut sealed = self.sealed.lock();
            if sealed.batches.is_empty() {
                sealed.blocking_since.clear();
                return 0;
            }
            let SealedState {
                batches,
                blocking_since,
            } = &mut *sealed;
            // Index the live registry once per pass.
            let records: HashMap<u64, _> = {
                let registry = inner.registry.lock();
                registry
                    .iter()
                    .filter(|rec| rec.is_active())
                    .map(|rec| (rec.id(), Arc::clone(rec)))
                    .collect()
            };
            let ref_alive = |r: &BatchRef| -> bool {
                let Some(rec) = records.get(&r.record_id) else {
                    return false; // record pruned or deactivated
                };
                if rec.observe_pinned_epoch().is_none() {
                    return false; // unpinned: the captured section exited
                }
                if rec.pin_seq() > r.pin_seq {
                    return false; // re-pinned since: ditto
                }
                // Ejected at exactly this sequence: capture revoked.
                !rec.ejected_at(r.pin_seq)
            };
            for batch in batches.iter_mut() {
                batch.refs.retain(&ref_alive);
            }
            // The blocking clock and the ejector. A reference starts its
            // clock the first pass it is seen blocking; continuously
            // blocked past the threshold, it is ejected — the revocation
            // takes effect for this pass immediately.
            let mut still_blocking: HashMap<BatchRef, Instant> = HashMap::new();
            let mut ejected: std::collections::HashSet<BatchRef> = std::collections::HashSet::new();
            for batch in batches.iter_mut() {
                batch.refs.retain(|r| {
                    if ejected.contains(r) {
                        return false; // already ejected via an earlier batch
                    }
                    let since = *still_blocking
                        .entry(*r)
                        .or_insert_with(|| blocking_since.get(r).copied().unwrap_or(now));
                    if now.duration_since(since) >= self.config.eject_after {
                        if let Some(rec) = records.get(&r.record_id) {
                            rec.eject(r.pin_seq);
                        }
                        ejected.insert(*r);
                        still_blocking.remove(r);
                        self.ejections.fetch_add(1, Ordering::Relaxed);
                        if pbs_telemetry::enabled() {
                            inner.ring.record_thread(
                                EventKind::ReaderEject,
                                0,
                                r.record_id,
                                r.pin_seq,
                            );
                        }
                        return false;
                    }
                    true
                });
            }
            *blocking_since = still_blocking;
            // Harvest batches with no surviving references.
            let mut remaining = Vec::with_capacity(batches.len());
            for batch in batches.drain(..) {
                if batch.refs.is_empty() {
                    ready.push(batch);
                } else {
                    remaining.push(batch);
                }
            }
            *batches = remaining;
        }
        // Locks dropped: deliver to clients per the ReclaimClient
        // contract.
        let mut by_client: HashMap<ClientId, Vec<usize>> = HashMap::new();
        let mut total = 0;
        for batch in ready {
            for (client, addr) in batch.items {
                by_client.entry(client).or_default().push(addr);
                total += 1;
            }
        }
        for (client, addrs) in by_client {
            // Attribution: the batch's reference set drained, so these are
            // reusable now even if the client is already gone.
            for &addr in &addrs {
                pbs_telemetry::site::note_reclaimed(addr);
            }
            let client = self.clients.lock().get(client).cloned();
            if let Some(client) = client.and_then(|weak| weak.upgrade()) {
                client.reclaim_addrs(&addrs);
            }
        }
        self.deferred.fetch_sub(total, Ordering::Relaxed);
        total
    }

    /// Oldest sealed-batch sequence still pending (`None` = none).
    fn oldest_sealed(&self) -> Option<u64> {
        self.sealed.lock().batches.iter().map(|b| b.seq).min()
    }
}

impl ReclamationDomain for HyalineDomain {
    fn backend(&self) -> ReclaimBackend {
        ReclaimBackend::Hyaline
    }

    fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    fn register_client(&self, client: Weak<dyn ReclaimClient>) -> ClientId {
        let mut clients = self.clients.lock();
        clients.push(client);
        clients.len() - 1
    }

    fn defer(&self, client: ClientId, addr: usize) {
        if pbs_telemetry::enabled() {
            // Direct domain users get attributed here; allocator-layer
            // callers already stamped the address with their own site.
            pbs_telemetry::site::note_deferred_if_untracked(
                addr,
                pbs_telemetry::site::intern(std::panic::Location::caller()),
                pbs_telemetry::site::BACKEND_HYALINE,
            );
        }
        self.deferred.fetch_add(1, Ordering::Relaxed);
        let len = {
            let mut open = self.open.lock();
            open.push((client, addr));
            open.len()
        };
        if len >= self.config.batch_size {
            self.try_seal();
            self.release_pass();
        }
    }

    fn advance(&self) -> bool {
        let sealed = self.try_seal();
        self.release_pass() > 0 || sealed
    }

    fn synchronize(&self) {
        // Seal whatever is open (so this call's defers are all in
        // batches), then wait for the sealed prefix that exists now.
        while !self.try_seal() && !self.open.lock().is_empty() {
            // Fault-refused seal with a non-empty open batch: retry, the
            // refusal only procrastinates.
            std::thread::yield_now();
        }
        let target = self.batch_seq.load(Ordering::Relaxed);
        let mut rounds = 0u32;
        loop {
            self.release_pass();
            match self.oldest_sealed() {
                None => return,
                Some(oldest) if oldest > target => return,
                Some(_) => {}
            }
            rounds += 1;
            if rounds < 32 {
                std::thread::yield_now();
            } else {
                // Ejection is time-based; poll at a fraction of the
                // threshold so a blocked drain ends promptly after it.
                std::thread::sleep(self.config.eject_after / 8);
            }
        }
    }

    fn synchronize_expedited(&self) {
        // Sealing and releasing are already as eager as they get.
        self.synchronize();
    }

    fn expedite(&self) -> bool {
        let sealed = self.try_seal();
        self.release_pass() > 0 || sealed
    }

    fn deferred_in_domain(&self) -> usize {
        self.deferred.load(Ordering::Relaxed)
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        ReclaimStats {
            backend: self.backend().label().to_owned(),
            deferred_in_domain: self.deferred_in_domain(),
            batches_sealed: self.batches_sealed.load(Ordering::Relaxed),
            batch_refs_captured: self.refs_captured.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            ..ReclaimStats::default()
        }
    }
}

impl std::fmt::Debug for HyalineDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyalineDomain")
            .field("deferred", &self.deferred_in_domain())
            .field("batches_sealed", &self.batches_sealed.load(Ordering::Relaxed))
            .field("ejections", &self.ejections.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::RecordingClient;
    use super::*;
    use crate::RcuConfig;
    use std::time::Duration;

    fn domain(rcu: &Arc<Rcu>, batch: usize, eject: Duration) -> HyalineDomain {
        HyalineDomain::new(
            Arc::clone(rcu),
            ReclaimConfig {
                batch_size: batch,
                eject_after: eject,
                ..ReclaimConfig::default()
            },
        )
    }

    #[test]
    fn unwatched_batches_release_immediately() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let d = domain(&rcu, 4, Duration::from_secs(1));
        let client = Arc::new(RecordingClient::default());
        let id = d.register_client(Arc::downgrade(&client) as Weak<dyn ReclaimClient>);
        for addr in 1..=4usize {
            d.defer(id, addr << 4);
        }
        // No reader was pinned at seal: the batch released on the spot.
        assert_eq!(client.count(), 4);
        assert_eq!(d.deferred_in_domain(), 0);
        let stats = d.reclaim_stats();
        assert_eq!(stats.batches_sealed, 1);
        assert_eq!(stats.batch_refs_captured, 0);
        assert_eq!(stats.ejections, 0);
    }

    #[test]
    fn pinned_reader_blocks_batches_until_unpin() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let d = domain(&rcu, 4, Duration::from_secs(30));
        let client = Arc::new(RecordingClient::default());
        let id = d.register_client(Arc::downgrade(&client) as Weak<dyn ReclaimClient>);
        let reader = rcu.register();
        let guard = reader.read_lock();
        for addr in 1..=4usize {
            d.defer(id, addr << 4);
        }
        assert_eq!(client.count(), 0, "captured batch released under its reader");
        assert_eq!(d.deferred_in_domain(), 4);
        assert!(guard.validate(), "no ejection this early");
        drop(guard);
        d.synchronize();
        assert_eq!(client.count(), 4);
    }

    #[test]
    fn repinning_reader_releases_earlier_captures() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let d = domain(&rcu, 4, Duration::from_secs(30));
        let client = Arc::new(RecordingClient::default());
        let id = d.register_client(Arc::downgrade(&client) as Weak<dyn ReclaimClient>);
        let reader = rcu.register();
        let g1 = reader.read_lock();
        for addr in 1..=4usize {
            d.defer(id, addr << 4);
        }
        assert_eq!(client.count(), 0);
        drop(g1);
        // A *new* critical section does not extend the old capture: the
        // pin sequence advanced, so the batch releases while pinned.
        let _g2 = reader.read_lock();
        d.advance();
        assert_eq!(client.count(), 4);
    }

    #[test]
    fn stalled_reader_is_ejected_and_garbage_stays_bounded() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let eject_after = Duration::from_millis(5);
        let d = domain(&rcu, 4, eject_after);
        let client = Arc::new(RecordingClient::default());
        let id = d.register_client(Arc::downgrade(&client) as Weak<dyn ReclaimClient>);
        let reader = rcu.register();
        let guard = reader.read_lock();
        for addr in 1..=32usize {
            d.defer(id, addr << 4);
        }
        assert_eq!(client.count(), 0, "blocked while the stall is young");
        // Past the threshold the reader is ejected and the batches
        // drain — while it is STILL pinned.
        std::thread::sleep(eject_after * 2);
        d.advance();
        assert_eq!(client.count(), 32);
        assert_eq!(d.deferred_in_domain(), 0);
        assert!(d.reclaim_stats().ejections >= 1);
        // The cooperative contract: the ejected reader must notice.
        assert!(!guard.validate(), "ejected reader still validates");
        drop(guard);
        // A fresh critical section validates again.
        let g = reader.read_lock();
        assert!(g.validate());
    }

    #[test]
    fn synchronize_drains_with_a_parked_reader_via_ejection() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let d = domain(&rcu, 8, Duration::from_millis(5));
        let client = Arc::new(RecordingClient::default());
        let id = d.register_client(Arc::downgrade(&client) as Weak<dyn ReclaimClient>);
        let reader = rcu.register();
        let _guard = reader.read_lock();
        for addr in 1..=20usize {
            d.defer(id, addr << 4);
        }
        // Blocks ~eject_after, then completes despite the pinned reader
        // — the epoch backend would hang here forever.
        d.synchronize();
        assert_eq!(client.count(), 20);
        assert_eq!(d.deferred_in_domain(), 0);
    }
}
