//! The hazard-pointer backend: per-thread protection slots and a
//! scan-on-threshold retire list.
//!
//! ## Garbage bound
//!
//! Retired objects accumulate on one shared retire list; once it reaches
//! `scan_threshold` entries, the next [`defer`] runs a scan that returns
//! every entry no published hazard protects. A reader — stalled or not —
//! can protect at most [`HP_SLOTS`](crate::HP_SLOTS) addresses, so the
//! list length never exceeds
//! `scan_threshold + threads × HP_SLOTS + concurrent-defer slack`:
//! a stalled reader pins *its hazards*, never the clock, and the rest of
//! the system keeps reclaiming. That is the whole point of the backend,
//! and what the chaos `stalled-reader` bound assertion measures.
//!
//! ## Ordering argument (membarrier reuse)
//!
//! The scan reuses the advancer-side protocol of the epoch machinery
//! verbatim: `fence(SeqCst)` then a process-wide `membarrier`, after
//! which the hazard-slot loads are trustworthy. The pairing is the
//! classic hazard-pointer one. A reader acquires protection by
//! *publish-then-revalidate* ([`RcuThread::protect`]): store the hazard,
//! (compiler) fence, re-read the shared pointer. A scanner frees `addr`
//! only if it saw no hazard for it after its barrier. Two cases:
//!
//! * the reader's hazard store was ordered before the scanner's
//!   membarrier — then the scanner's subsequent load sees it and keeps
//!   the object;
//! * the store was ordered after — then the reader's *revalidation load*
//!   is also after the barrier, and therefore sees the unlink that
//!   preceded the retire (unlink → defer → scan barrier), so validation
//!   fails and the reader never dereferences the object.
//!
//! Either way no freed object is dereferenced. In fallback mode (no
//! `membarrier(2)`) readers fence themselves inside `protect` and the
//! same two-case argument runs off the SeqCst total order.
//!
//! [`defer`]: ReclamationDomain::defer
//! [`RcuThread::protect`]: crate::RcuThread::protect

use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use pbs_telemetry::EventKind;

use super::{ClientId, ReclaimBackend, ReclaimClient, ReclaimConfig, ReclaimStats, ReclamationDomain};
use crate::epoch::HP_SLOTS;
use crate::membarrier;
use crate::Rcu;

/// One retired object awaiting an unprotected scan.
struct Retired {
    client: ClientId,
    addr: usize,
    /// Retire order; [`HpDomain::synchronize`] waits for a prefix of it.
    seq: u64,
}

/// Hazard-pointer backend; see the module docs.
pub struct HpDomain {
    rcu: Arc<Rcu>,
    config: ReclaimConfig,
    clients: Mutex<Vec<Weak<dyn ReclaimClient>>>,
    retired: Mutex<Vec<Retired>>,
    retire_seq: AtomicU64,
    deferred: AtomicUsize,
    scans: AtomicU64,
    scan_reclaimed: AtomicU64,
    scan_protected: AtomicU64,
    injected_stalls: AtomicU64,
}

impl HpDomain {
    /// A hazard-pointer domain over `rcu`'s reader registry.
    pub fn new(rcu: Arc<Rcu>, config: ReclaimConfig) -> Self {
        // Guards on this registry now speak the hp protocol (their
        // hazard slots gate this domain's scans); data-structure guard
        // checks consult the mark via `ReadGuard::protects_backend`.
        rcu.attach_backend(ReclaimBackend::Hp);
        Self {
            rcu,
            config,
            clients: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            retire_seq: AtomicU64::new(0),
            deferred: AtomicUsize::new(0),
            scans: AtomicU64::new(0),
            scan_reclaimed: AtomicU64::new(0),
            scan_protected: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
        }
    }

    /// Runs one retire-list scan unless the `reclaim.advance` fault site
    /// refuses it. Returns the number of objects reclaimed.
    ///
    /// Refusing a scan only procrastinates (the list keeps growing until
    /// a later attempt), which is what makes the site safe to inject —
    /// the same argument as refusing an epoch advance.
    fn try_scan(&self) -> usize {
        let inner = self.rcu.inner();
        if let Some(faults) = &inner.config.fault_injector {
            if faults.should_fail(pbs_fault::site::RECLAIM_ADVANCE) {
                self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
        }
        let mut retired = self.retired.lock();
        if retired.is_empty() {
            return 0;
        }
        // Advancer-side barrier protocol; see the module docs for why the
        // hazard loads below are trustworthy only after this point.
        fence(Ordering::SeqCst);
        membarrier::heavy_barrier();
        let hazards: std::collections::HashSet<usize> = {
            let registry = inner.registry.lock();
            registry
                .iter()
                .filter(|rec| rec.is_active())
                .flat_map(|rec| (0..HP_SLOTS).map(move |slot| rec.hazard(slot)))
                .filter(|&addr| addr != 0)
                .collect()
        };
        let mut kept = Vec::new();
        let mut ready: HashMap<ClientId, Vec<usize>> = HashMap::new();
        for entry in retired.drain(..) {
            if hazards.contains(&entry.addr) {
                kept.push(entry);
            } else {
                ready.entry(entry.client).or_default().push(entry.addr);
            }
        }
        self.scan_protected.fetch_add(kept.len() as u64, Ordering::Relaxed);
        *retired = kept;
        drop(retired);
        self.scans.fetch_add(1, Ordering::Relaxed);
        let reclaimed = self.deliver(ready);
        if pbs_telemetry::enabled() {
            inner.ring.record_thread(
                EventKind::HpScan,
                0,
                reclaimed as u64,
                hazards.len() as u64,
            );
        }
        reclaimed
    }

    /// Hands reclaimed addresses back to their clients — with no domain
    /// locks held, per the [`ReclaimClient`] contract.
    fn deliver(&self, ready: HashMap<ClientId, Vec<usize>>) -> usize {
        let mut total = 0;
        for (client, addrs) in ready {
            total += addrs.len();
            // Attribution: the scan proved these unprotected, so they are
            // reusable now even if the client is already gone.
            for &addr in &addrs {
                pbs_telemetry::site::note_reclaimed(addr);
            }
            let client = self.clients.lock().get(client).cloned();
            if let Some(client) = client.and_then(|weak| weak.upgrade()) {
                client.reclaim_addrs(&addrs);
            }
        }
        self.scan_reclaimed.fetch_add(total as u64, Ordering::Relaxed);
        self.deferred.fetch_sub(total, Ordering::Relaxed);
        total
    }

    /// Oldest retire sequence still on the list (`None` = empty).
    fn oldest_seq(&self) -> Option<u64> {
        self.retired.lock().iter().map(|r| r.seq).min()
    }
}

impl ReclamationDomain for HpDomain {
    fn backend(&self) -> ReclaimBackend {
        ReclaimBackend::Hp
    }

    fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    fn register_client(&self, client: Weak<dyn ReclaimClient>) -> ClientId {
        let mut clients = self.clients.lock();
        clients.push(client);
        clients.len() - 1
    }

    fn defer(&self, client: ClientId, addr: usize) {
        if pbs_telemetry::enabled() {
            // Direct domain users get attributed here; allocator-layer
            // callers already stamped the address with their own site.
            pbs_telemetry::site::note_deferred_if_untracked(
                addr,
                pbs_telemetry::site::intern(std::panic::Location::caller()),
                pbs_telemetry::site::BACKEND_HP,
            );
        }
        let seq = self.retire_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.deferred.fetch_add(1, Ordering::Relaxed);
        let len = {
            let mut retired = self.retired.lock();
            retired.push(Retired { client, addr, seq });
            retired.len()
        };
        if len >= self.config.scan_threshold {
            self.try_scan();
        }
    }

    fn advance(&self) -> bool {
        self.try_scan() > 0
    }

    fn synchronize(&self) {
        // Wait for the prefix of the retire order that existed at entry;
        // later defers are not this call's business. Hazards held by live
        // readers block exactly like an epoch pin blocks synchronize —
        // the difference is they block only their own addresses.
        let target = self.retire_seq.load(Ordering::Relaxed);
        let mut rounds = 0u32;
        loop {
            self.try_scan();
            match self.oldest_seq() {
                None => return,
                Some(oldest) if oldest > target => return,
                Some(_) => {}
            }
            rounds += 1;
            if rounds < 32 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    fn synchronize_expedited(&self) {
        // Scans are already eager; there is no passive mode to expedite.
        self.synchronize();
    }

    fn expedite(&self) -> bool {
        self.try_scan() > 0
    }

    fn deferred_in_domain(&self) -> usize {
        self.deferred.load(Ordering::Relaxed)
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        ReclaimStats {
            backend: self.backend().label().to_owned(),
            deferred_in_domain: self.deferred_in_domain(),
            scans: self.scans.load(Ordering::Relaxed),
            scan_reclaimed: self.scan_reclaimed.load(Ordering::Relaxed),
            scan_protected: self.scan_protected.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            ..ReclaimStats::default()
        }
    }
}

impl std::fmt::Debug for HpDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HpDomain")
            .field("deferred", &self.deferred_in_domain())
            .field("scans", &self.scans.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::RecordingClient;
    use super::*;
    use crate::RcuConfig;

    fn small_domain(rcu: &Arc<Rcu>, threshold: usize) -> HpDomain {
        HpDomain::new(
            Arc::clone(rcu),
            ReclaimConfig {
                scan_threshold: threshold,
                ..ReclaimConfig::default()
            },
        )
    }

    #[test]
    fn threshold_scan_reclaims_unprotected_objects() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = small_domain(&rcu, 8);
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        for addr in 1..=8usize {
            domain.defer(id, addr << 4);
        }
        // The 8th defer crossed the threshold and scanned.
        assert_eq!(client.count(), 8);
        assert_eq!(domain.deferred_in_domain(), 0);
        let stats = domain.reclaim_stats();
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.scan_reclaimed, 8);
    }

    #[test]
    fn hazard_blocks_exactly_its_address() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = small_domain(&rcu, 4);
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        let reader = rcu.register();
        let protected = 0xDEAD0usize;
        reader.protect(0, protected);
        domain.defer(id, protected);
        for addr in [0x10usize, 0x20, 0x30, 0x40] {
            domain.defer(id, addr);
        }
        // Sweep the stragglers below the threshold too.
        domain.advance();
        // Scans ran (threshold 4) but the protected address stayed put.
        assert!(domain.reclaim_stats().scans >= 1);
        assert_eq!(domain.deferred_in_domain(), 1);
        assert!(!client.reclaimed.lock().contains(&protected));
        // A pin alone protects nothing under hp: everything unprotected
        // was reclaimed even though no grace period completed.
        assert_eq!(client.count(), 4);
        reader.clear_protection(0);
        domain.synchronize();
        assert_eq!(domain.deferred_in_domain(), 0);
        assert!(client.reclaimed.lock().contains(&protected));
    }

    #[test]
    fn stalled_pin_does_not_grow_the_retire_list() {
        // The bound: a reader pinned forever (no hazards) leaves the
        // retire list capped at the scan threshold.
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let threshold = 16;
        let domain = small_domain(&rcu, threshold);
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        let reader = rcu.register();
        let _guard = reader.read_lock(); // stalled, holds no hazards
        for addr in 1..=1000usize {
            domain.defer(id, addr << 4);
            assert!(
                domain.deferred_in_domain() <= threshold,
                "retire list exceeded the scan threshold under a stalled pin"
            );
        }
        domain.synchronize(); // completes despite the pin
        assert_eq!(client.count(), 1000);
    }

    #[test]
    fn synchronize_waits_only_for_its_prefix() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let domain = Arc::new(small_domain(&rcu, 1024));
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        domain.defer(id, 0x100);
        domain.synchronize();
        assert_eq!(client.count(), 1);
    }

    #[test]
    fn injected_refusals_procrastinate_but_do_not_lose_objects() {
        use pbs_fault::{site, FaultInjector, Schedule};
        let faults = Arc::new(FaultInjector::new(7));
        for n in 1..=3 {
            faults.schedule(site::RECLAIM_ADVANCE, Schedule::Nth(n));
        }
        // Park the background gp driver: it consults the generalized
        // site too (epoch advances are reclamation progress), and this
        // test wants the schedule consumed by the hp scans.
        let config = RcuConfig {
            driver_interval: std::time::Duration::from_secs(3600),
            ..RcuConfig::eager()
        };
        let rcu = Arc::new(Rcu::with_config(
            config.with_fault_injector(Arc::clone(&faults)),
        ));
        let domain = small_domain(&rcu, 4);
        let client = Arc::new(RecordingClient::default());
        let id = domain.register_client(
            Arc::downgrade(&client) as Weak<dyn ReclaimClient>
        );
        for addr in 1..=16usize {
            domain.defer(id, addr << 4);
        }
        domain.synchronize();
        assert_eq!(client.count(), 16);
        assert!(domain.reclaim_stats().injected_stalls >= 1);
    }
}
