//! Shard-aware net layer: per-reactor stacks, accept backpressure and
//! connection deadlines.
//!
//! A [`ShardedNet`] partitions the connection population across N
//! [`NetShard`]s, one per reactor thread. Each shard owns a private
//! [`SimNet`] + [`Epoll`] pair (so the connection table, epoll interest
//! table and their slab caches are never contended across reactors), a
//! bounded accept backlog (the listen queue: dials beyond capacity are
//! shed with [`NetError::Backlogged`] before any per-connection
//! allocation), and a [`TimerWheel`] for idle/slow-connection deadlines.
//!
//! The split of responsibilities with the application layer: this module
//! owns connection plumbing (listen queue, handshake, epoll registration,
//! deadline bookkeeping, teardown); the application owns policy (what to
//! do on expiry, when to shed load, retry budgets).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use pbs_alloc_api::{CacheFactory, CacheStatsSnapshot};
use pbs_fault::FaultInjector;
use pbs_rcu::ReadGuard;

use crate::wheel::TimerWheel;
use crate::{ConnId, Epoll, NetError, SimNet};

/// EPOLLIN-style interest mask every accepted connection registers.
pub const EPOLLIN: u32 = 0x1;

/// Sizing knobs for one shard. The defaults suit unit-test scale; the
/// server workload derives them from its target connection count.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Listen-queue capacity: dials beyond this are shed.
    pub backlog_cap: usize,
    /// Bucket count for the shard's connection table.
    pub conn_buckets: usize,
    /// Timer-wheel slots (granules per revolution).
    pub wheel_slots: usize,
    /// Timer-wheel ticks per slot.
    pub wheel_granularity: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            backlog_cap: 128,
            conn_buckets: 1024,
            wheel_slots: 64,
            wheel_granularity: 1,
        }
    }
}

/// One reactor shard: private stack, epoll instance, listen queue and
/// deadline wheel.
pub struct NetShard {
    index: usize,
    net: SimNet,
    epoll: Epoll,
    backlog: Mutex<VecDeque<u64>>,
    backlog_cap: usize,
    wheel: Mutex<TimerWheel>,
}

impl std::fmt::Debug for NetShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetShard")
            .field("index", &self.index)
            .field("connections", &self.net.connection_count())
            .field("backlog", &self.backlog.lock().len())
            .finish()
    }
}

impl NetShard {
    fn new(
        factory: &dyn CacheFactory,
        index: usize,
        config: ShardConfig,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        Self {
            index,
            net: SimNet::with_config(factory, config.conn_buckets, faults),
            epoll: Epoll::new(factory),
            backlog: Mutex::new(VecDeque::with_capacity(config.backlog_cap)),
            backlog_cap: config.backlog_cap.max(1),
            wheel: Mutex::new(TimerWheel::new(
                config.wheel_slots.max(1),
                config.wheel_granularity.max(1),
            )),
        }
    }

    /// This shard's index within its [`ShardedNet`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's private transport stack.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The shard's private epoll instance.
    pub fn epoll(&self) -> &Epoll {
        &self.epoll
    }

    /// Enqueues a connection attempt (a SYN arriving at the listener).
    /// `cookie` is an opaque caller tag handed back by [`accept`]
    /// (typically a traffic-class discriminator).
    ///
    /// # Errors
    ///
    /// [`NetError::Backlogged`] when the listen queue is full — the
    /// backpressure signal; nothing was allocated.
    pub fn dial(&self, cookie: u64) -> Result<(), NetError> {
        let mut backlog = self.backlog.lock();
        if backlog.len() >= self.backlog_cap {
            return Err(NetError::Backlogged);
        }
        backlog.push_back(cookie);
        Ok(())
    }

    /// Accepts one pending dial: completes the handshake (which consults
    /// the `net.accept` fault site and allocates the connection's sock /
    /// filp / selinux objects) and registers EPOLLIN interest.
    ///
    /// Returns `None` when the backlog is empty, `Some(Err(..))` when the
    /// handshake was refused or allocation failed (the dial is consumed
    /// either way, as a dropped SYN would be).
    pub fn accept(&self) -> Option<Result<(ConnId, u64), NetError>> {
        let cookie = self.backlog.lock().pop_front()?;
        Some(self.complete_accept(cookie))
    }

    fn complete_accept(&self, cookie: u64) -> Result<(ConnId, u64), NetError> {
        let conn = self.net.connect()?;
        if let Err(e) = self.epoll.add(conn.0, EPOLLIN) {
            // Epi allocation failed: tear the half-accepted connection
            // back down so nothing leaks past the error.
            let _ = self.net.close(conn);
            return Err(e.into());
        }
        Ok((conn, cookie))
    }

    /// Pending dials in the listen queue.
    pub fn backlog_len(&self) -> usize {
        self.backlog.lock().len()
    }

    /// Sheds one pending dial without completing the handshake (the
    /// load-shedding path under hard pressure: the SYN is dropped and no
    /// per-connection memory is touched). Returns the dial's cookie.
    pub fn shed_dial(&self) -> Option<u64> {
        self.backlog.lock().pop_front()
    }

    /// Arms (or refreshes — see [`TimerWheel`] on lazy cancellation) the
    /// deadline for `conn` at absolute tick `deadline`.
    pub fn arm_deadline(&self, conn: ConnId, deadline: u64) {
        self.wheel.lock().arm(conn.0, deadline);
    }

    /// Advances the shard's deadline wheel to `now`, appending expired
    /// `(conn, deadline)` pairs to `expired`. The caller drops pairs whose
    /// deadline it has since refreshed.
    pub fn poll_deadlines(&self, now: u64, expired: &mut Vec<(u64, u64)>) {
        self.wheel.lock().advance(now, expired);
    }

    /// Entries armed on the deadline wheel (including stale ones).
    pub fn armed_deadlines(&self) -> usize {
        self.wheel.lock().len()
    }

    /// Closes `conn`: drops epoll interest (deferred epi free) and tears
    /// the connection down (deferred sock/filp/selinux frees).
    ///
    /// # Errors
    ///
    /// [`NetError::NotConnected`] if the connection is unknown (e.g.
    /// already evicted by a deadline).
    pub fn close(&self, conn: ConnId) -> Result<(), NetError> {
        self.epoll.del(conn.0);
        self.net.close(conn)
    }

    /// Live connections on this shard.
    pub fn connection_count(&self) -> usize {
        self.net.connection_count()
    }

    /// Deferred objects not yet reclaimed across the shard's caches.
    pub fn deferred_outstanding(&self) -> usize {
        self.net.deferred_outstanding() + self.epoll.deferred_outstanding()
    }

    /// Whether `conn` is established, under an RCU guard.
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain.
    pub fn is_established(&self, guard: &ReadGuard<'_>, conn: ConnId) -> bool {
        self.net.is_established(guard, conn)
    }

    /// Waits for all deferred frees across the shard's caches.
    pub fn quiesce(&self) {
        self.net.quiesce();
        self.epoll.quiesce();
    }
}

/// N reactor shards over one cache factory.
pub struct ShardedNet {
    shards: Vec<NetShard>,
}

impl std::fmt::Debug for ShardedNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNet")
            .field("shards", &self.shards.len())
            .field("connections", &self.connection_count())
            .finish()
    }
}

impl ShardedNet {
    /// Creates `nshards` shards, each with its own stack built from
    /// `factory` and (optionally) consulting `faults`.
    ///
    /// # Panics
    ///
    /// Panics if `nshards` is zero.
    pub fn new(
        factory: &dyn CacheFactory,
        nshards: usize,
        config: ShardConfig,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        assert!(nshards > 0, "need at least one shard");
        Self {
            shards: (0..nshards)
                .map(|i| NetShard::new(factory, i, config, faults.clone()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether there are no shards (never true — construction requires at
    /// least one).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard(&self, index: usize) -> &NetShard {
        &self.shards[index]
    }

    /// Routes a flow key to its shard (stable hash-mod placement).
    pub fn route(&self, key: u64) -> &NetShard {
        // Fibonacci hash: spreads sequential keys across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// All shards, for reactor spawning.
    pub fn shards(&self) -> &[NetShard] {
        &self.shards
    }

    /// Live connections across all shards.
    pub fn connection_count(&self) -> usize {
        self.shards.iter().map(|s| s.connection_count()).sum()
    }

    /// Merged per-cache statistics across shards, keyed by slab name
    /// (sock/filp/selinux/skbuff/eventpoll_epi).
    pub fn stats(&self) -> Vec<(&'static str, CacheStatsSnapshot)> {
        let mut merged: Vec<(&'static str, CacheStatsSnapshot)> = Vec::new();
        for shard in &self.shards {
            let mut rows = shard.net.stats();
            rows.push(("eventpoll_epi", shard.epoll.stats()));
            for (name, stats) in rows {
                match merged.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, acc)) => acc.merge(&stats),
                    None => merged.push((name, stats)),
                }
            }
        }
        merged
    }

    /// Deferred objects not yet reclaimed across every shard's caches.
    pub fn deferred_outstanding(&self) -> usize {
        self.shards.iter().map(|s| s.deferred_outstanding()).sum()
    }

    /// Waits for all deferred frees on every shard.
    pub fn quiesce(&self) {
        for shard in &self.shards {
            shard.quiesce();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_fault::{site, Schedule};
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use pbs_slub::SlubFactory;
    use prudence::{PrudenceConfig, PrudenceFactory};

    fn rcu() -> Arc<Rcu> {
        Arc::new(Rcu::with_config(RcuConfig::eager()))
    }

    fn prudence_factory(rcu: &Arc<Rcu>) -> PrudenceFactory {
        PrudenceFactory::new(
            PrudenceConfig::new(2),
            Arc::new(PageAllocator::new()),
            Arc::clone(rcu),
        )
    }

    #[test]
    fn dial_accept_close_roundtrip() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let net = ShardedNet::new(&factory, 2, ShardConfig::default(), None);
        let shard = net.route(42);
        shard.dial(7).unwrap();
        let (conn, cookie) = shard.accept().unwrap().unwrap();
        assert_eq!(cookie, 7);
        let t = rcu.register();
        let g = t.read_lock();
        assert!(shard.is_established(&g, conn));
        assert_eq!(shard.epoll().interest(&g, conn.0), Some(EPOLLIN));
        drop(g);
        shard.close(conn).unwrap();
        assert_eq!(net.connection_count(), 0);
        net.quiesce();
    }

    #[test]
    fn backlog_overflow_sheds_before_allocating() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let config = ShardConfig {
            backlog_cap: 4,
            ..ShardConfig::default()
        };
        let net = ShardedNet::new(&factory, 1, config, None);
        let shard = net.shard(0);
        for i in 0..4 {
            shard.dial(i).unwrap();
        }
        assert_eq!(shard.dial(99), Err(NetError::Backlogged));
        assert_eq!(shard.backlog_len(), 4);
        // Shedding happened at the listen queue: no slab traffic yet.
        for (name, s) in shard.net().stats() {
            assert_eq!(s.alloc_requests, 0, "{name} allocated during dial");
        }
        while shard.accept().is_some() {}
        assert_eq!(shard.connection_count(), 4);
        assert_eq!(shard.backlog_len(), 0);
    }

    #[test]
    fn deadline_eviction_through_wheel() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let net = ShardedNet::new(&factory, 1, ShardConfig::default(), None);
        let shard = net.shard(0);
        shard.dial(0).unwrap();
        shard.dial(0).unwrap();
        let (slow, _) = shard.accept().unwrap().unwrap();
        let (fast, _) = shard.accept().unwrap().unwrap();
        shard.arm_deadline(slow, 10);
        shard.arm_deadline(fast, 1000);
        let mut expired = Vec::new();
        shard.poll_deadlines(50, &mut expired);
        assert_eq!(expired, vec![(slow.0, 10)]);
        shard.close(slow).unwrap();
        assert_eq!(shard.connection_count(), 1);
        shard.close(fast).unwrap();
        net.quiesce();
    }

    /// Epoll interest can be registered for a connection that has already
    /// been torn down (the fd was reused or the registration raced close):
    /// the epi entry exists, the connection lookup misses, and removal
    /// still defers exactly one epi free.
    #[test]
    fn epoll_add_of_closed_connection_is_orphan_interest() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let net = ShardedNet::new(&factory, 1, ShardConfig::default(), None);
        let shard = net.shard(0);
        shard.dial(0).unwrap();
        let (conn, _) = shard.accept().unwrap().unwrap();
        shard.close(conn).unwrap();
        // Late registration after close.
        shard.epoll().add(conn.0, EPOLLIN).unwrap();
        let t = rcu.register();
        let g = t.read_lock();
        assert!(!shard.is_established(&g, conn));
        assert_eq!(shard.epoll().interest(&g, conn.0), Some(EPOLLIN));
        drop(g);
        assert!(shard.epoll().del(conn.0));
        shard.quiesce();
        // One epi deferred by close()'s del, one by the orphan's del.
        assert_eq!(shard.epoll().stats().deferred_frees, 2);
        assert_eq!(shard.epoll().stats().live_objects, 0);
    }

    /// Readiness delivered after close: a reader that looked up interest
    /// before the close may act on it after — the connection lookup must
    /// miss (no use-after-free, no resurrection) while the guard keeps the
    /// epi entry readable.
    #[test]
    fn readiness_after_close_misses_connection() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let net = ShardedNet::new(&factory, 1, ShardConfig::default(), None);
        let shard = net.shard(0);
        shard.dial(0).unwrap();
        let (conn, _) = shard.accept().unwrap().unwrap();
        let t = rcu.register();
        let g = t.read_lock();
        let mask = shard.epoll().interest(&g, conn.0);
        assert_eq!(mask, Some(EPOLLIN));
        // Event is "in flight": the connection closes underneath it.
        shard.close(conn).unwrap();
        // The stale readiness must not find the connection...
        assert!(!shard.is_established(&g, conn));
        // ...and the pre-close interest value stays readable under the
        // same guard (the epi free was deferred, not immediate).
        assert_eq!(mask, Some(EPOLLIN));
        drop(g);
        // Acting on stale readiness surfaces NotConnected, not a panic.
        assert_eq!(shard.close(conn), Err(NetError::NotConnected));
        shard.quiesce();
        assert_eq!(shard.epoll().stats().live_objects, 0);
    }

    fn churn_under_accept_faults(factory: &dyn CacheFactory, rcu: &Arc<Rcu>) {
        let faults = Arc::new(FaultInjector::new(0xACCE97));
        faults.schedule(site::NET_ACCEPT, Schedule::Probability(0.2));
        let net = Arc::new(ShardedNet::new(
            factory,
            2,
            ShardConfig::default(),
            Some(Arc::clone(&faults)),
        ));
        let refused = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let net = &net;
                let rcu = Arc::clone(rcu);
                let refused = &refused;
                scope.spawn(move || {
                    let t = rcu.register();
                    for i in 0..300u64 {
                        let shard = net.route(worker * 1000 + i);
                        if shard.dial(worker).is_err() {
                            continue;
                        }
                        match shard.accept() {
                            Some(Ok((conn, _))) => {
                                let g = t.read_lock();
                                assert!(shard.is_established(&g, conn));
                                drop(g);
                                shard.close(conn).unwrap();
                            }
                            Some(Err(NetError::Refused)) => {
                                refused.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Some(Err(e)) => panic!("unexpected accept error: {e}"),
                            // Another worker drained the dial we enqueued.
                            None => {}
                        }
                    }
                });
            }
        });
        assert!(
            refused.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "p=0.2 over 1200 accepts should refuse some"
        );
        assert_eq!(net.connection_count(), 0);
        net.quiesce();
        for (name, s) in net.stats() {
            assert_eq!(s.live_objects, 0, "cache {name} leaked: {s:?}");
        }
    }

    #[test]
    fn connect_close_churn_with_accept_faults_prudence() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        churn_under_accept_faults(&factory, &rcu);
    }

    #[test]
    fn connect_close_churn_with_accept_faults_slub() {
        let rcu = rcu();
        let factory = SlubFactory::new(2, Arc::new(PageAllocator::new()), Arc::clone(&rcu));
        churn_under_accept_faults(&factory, &rcu);
    }

    #[test]
    fn read_stall_fault_surfaces_would_block() {
        let rcu = rcu();
        let factory = prudence_factory(&rcu);
        let faults = Arc::new(FaultInjector::new(1));
        faults.schedule(site::NET_READ_STALL, Schedule::EveryKth(2));
        let net = ShardedNet::new(&factory, 1, ShardConfig::default(), Some(faults));
        let shard = net.shard(0);
        shard.dial(0).unwrap();
        let (conn, _) = shard.accept().unwrap().unwrap();
        let mut stalled = 0;
        for _ in 0..10 {
            match shard.net().request_response(conn, 64) {
                Ok(()) => {}
                Err(NetError::WouldBlock) => stalled += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(stalled, 5, "every 2nd read stalls");
        // The stalled connection is still open — slowloris pins state.
        assert_eq!(shard.connection_count(), 1);
        shard.close(conn).unwrap();
        net.quiesce();
    }
}
