//! # pbs-simnet — connection/socket substrate
//!
//! A transport-stack stand-in whose allocator traffic matches what the
//! paper's Netperf TCP_CRR and ApacheBench workloads induce on the kernel
//! (§5.3):
//!
//! | operation | slab traffic |
//! |---|---|
//! | `connect` | `sock` + `filp` + `selinux` allocations, connection entry published for RCU lookup |
//! | `request_response` | transient `skbuff` allocations + immediate frees |
//! | `close` | **deferred** frees of the connection entry, `filp` and `selinux` blob (connection teardown is RCU-deferred in Linux) |
//! | `Epoll::add` / `Epoll::del` | `eventpoll_epi` allocation / **deferred** free (paper: "objects are deferred for freeing during the removal of the target file descriptor from epoll") |
//!
//! Like [`pbs-simfs`](../pbs_simfs/index.html), everything is parameterized
//! by a [`CacheFactory`] so the identical workload runs over SLUB or
//! Prudence.
//!
//! [`CacheFactory`]: pbs_alloc_api::CacheFactory
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbs_mem::PageAllocator;
//! use pbs_rcu::Rcu;
//! use pbs_simnet::SimNet;
//! use prudence::{PrudenceConfig, PrudenceFactory};
//!
//! let rcu = Arc::new(Rcu::new());
//! let factory = PrudenceFactory::new(
//!     PrudenceConfig::new(2),
//!     Arc::new(PageAllocator::new()),
//!     Arc::clone(&rcu),
//! );
//! let net = SimNet::new(&factory);
//! let conn = net.connect()?;
//! net.request_response(conn, 1024)?;
//! net.close(conn)?;
//! net.quiesce();
//! # Ok::<(), pbs_simnet::NetError>(())
//! ```

mod epoll;
mod net;
mod shard;
mod wheel;

pub use epoll::Epoll;
pub use net::{ConnId, NetError, SimNet};
pub use shard::{NetShard, ShardConfig, ShardedNet, EPOLLIN};
pub use wheel::TimerWheel;
