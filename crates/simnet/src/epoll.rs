//! epoll-instance emulation (`eventpoll_epi` traffic).
//!
//! The paper notes that Apache defers frees "during the removal of the
//! target file descriptor from epoll instance" — the `eventpoll_epi` slab
//! cache in Figures 7–11. This type reproduces that traffic: adding an
//! interest allocates an epi entry; removing it defers the free through
//! RCU (as `ep_remove` does).

use std::sync::Arc;

use pbs_alloc_api::{AllocError, CacheFactory, CacheStatsSnapshot, ObjectAllocator};
use pbs_rcu::ReadGuard;
use pbs_structs::RcuHashMap;

/// Size of the Linux `eventpoll_epi` slab object.
const EPI_SIZE: usize = 128;

/// A simulated epoll instance.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pbs_mem::PageAllocator;
/// use pbs_rcu::Rcu;
/// use pbs_simnet::Epoll;
/// use prudence::{PrudenceConfig, PrudenceFactory};
///
/// let rcu = Arc::new(Rcu::new());
/// let factory = PrudenceFactory::new(
///     PrudenceConfig::new(2),
///     Arc::new(PageAllocator::new()),
///     Arc::clone(&rcu),
/// );
/// let ep = Epoll::new(&factory);
/// ep.add(5, 0b1)?; // EPOLLIN-style interest mask
/// assert!(ep.del(5));
/// ep.quiesce();
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
pub struct Epoll {
    /// `fd → interest mask`; nodes live in the `eventpoll_epi` cache.
    interests: RcuHashMap<u64, u32>,
    epi_cache: Arc<dyn ObjectAllocator>,
}

impl std::fmt::Debug for Epoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoll")
            .field("interests", &self.interests.len())
            .finish()
    }
}

impl Epoll {
    /// Creates an epoll instance whose epi entries come from `factory`.
    pub fn new(factory: &dyn CacheFactory) -> Self {
        let epi_cache = factory.create_cache("eventpoll_epi", EPI_SIZE);
        Self {
            interests: RcuHashMap::new(Arc::clone(&epi_cache), 1024),
            epi_cache,
        }
    }

    /// Registers interest in `fd` (allocates an epi entry; replaces any
    /// existing registration copy-on-update).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on allocator exhaustion.
    pub fn add(&self, fd: u64, mask: u32) -> Result<(), AllocError> {
        self.interests.insert(fd, mask)?;
        Ok(())
    }

    /// Removes interest in `fd`; the epi entry's free is deferred. Returns
    /// `true` if a registration existed.
    pub fn del(&self, fd: u64) -> bool {
        self.interests.remove(&fd).is_some()
    }

    /// Reads the registered mask under an RCU guard (the poll-wakeup path).
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain.
    pub fn interest(&self, guard: &ReadGuard<'_>, fd: u64) -> Option<u32> {
        self.interests.get(guard, &fd)
    }

    /// Registered descriptors.
    pub fn len(&self) -> usize {
        self.interests.len()
    }

    /// Whether no descriptors are registered.
    pub fn is_empty(&self) -> bool {
        self.interests.is_empty()
    }

    /// The `eventpoll_epi` cache statistics.
    pub fn stats(&self) -> CacheStatsSnapshot {
        self.epi_cache.stats()
    }

    /// Deferred epi entries not yet reclaimed.
    pub fn deferred_outstanding(&self) -> usize {
        self.epi_cache.deferred_outstanding()
    }

    /// Waits for all deferred epi frees.
    pub fn quiesce(&self) {
        self.epi_cache.quiesce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use prudence::{PrudenceConfig, PrudenceFactory};

    fn setup() -> (Arc<Rcu>, Epoll) {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(2),
            Arc::new(PageAllocator::new()),
            Arc::clone(&rcu),
        );
        let ep = Epoll::new(&factory);
        (rcu, ep)
    }

    #[test]
    fn add_check_del() {
        let (rcu, ep) = setup();
        let t = rcu.register();
        ep.add(3, 0xF).unwrap();
        let g = t.read_lock();
        assert_eq!(ep.interest(&g, 3), Some(0xF));
        assert_eq!(ep.interest(&g, 4), None);
        drop(g);
        assert!(ep.del(3));
        assert!(!ep.del(3));
        ep.quiesce();
        assert_eq!(ep.stats().deferred_frees, 1);
        assert_eq!(ep.stats().live_objects, 0);
    }

    #[test]
    fn re_add_replaces_mask() {
        let (rcu, ep) = setup();
        let t = rcu.register();
        ep.add(9, 1).unwrap();
        ep.add(9, 2).unwrap();
        let g = t.read_lock();
        assert_eq!(ep.interest(&g, 9), Some(2));
        drop(g);
        assert_eq!(ep.len(), 1);
        // The replacement deferred the old version.
        ep.quiesce();
        assert_eq!(ep.stats().deferred_frees, 1);
    }

    #[test]
    fn churn_defers_every_removal() {
        let (_rcu, ep) = setup();
        for fd in 0..100 {
            ep.add(fd, 1).unwrap();
            assert!(ep.del(fd));
        }
        ep.quiesce();
        assert_eq!(ep.stats().deferred_frees, 100);
        assert!(ep.is_empty());
    }
}
