//! Connection lifecycle and request/response traffic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pbs_alloc_api::{AllocError, CacheFactory, CacheStatsSnapshot, ObjPtr, ObjectAllocator};
use pbs_fault::{site, FaultInjector};
use pbs_rcu::ReadGuard;
use pbs_structs::RcuHashMap;

/// Connection identifier (the 4-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

/// Errors returned by [`SimNet`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The connection does not exist (already closed).
    NotConnected,
    /// The allocator ran out of memory.
    NoMemory,
    /// The handshake was refused (injected `net.accept` fault — a dropped
    /// SYN). No slab traffic happened; the caller may retry.
    Refused,
    /// The peer stopped sending mid-request (injected `net.read_stall`
    /// fault — slowloris). The connection stays open and keeps pinning its
    /// server-side state until a deadline evicts it.
    WouldBlock,
    /// A shard's accept backlog is full; the connection attempt is shed at
    /// the listen queue, before any per-connection allocation.
    Backlogged,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotConnected => write!(f, "connection not established"),
            NetError::NoMemory => write!(f, "out of memory"),
            NetError::Refused => write!(f, "connection refused (injected accept fault)"),
            NetError::WouldBlock => write!(f, "read would block (peer stalled)"),
            NetError::Backlogged => write!(f, "accept backlog full"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<AllocError> for NetError {
    fn from(_: AllocError) -> Self {
        NetError::NoMemory
    }
}

/// Per-connection metadata (socket fd object + security blob pointers).
#[derive(Debug, Clone, Copy)]
struct ConnMeta {
    filp: ObjPtr,
    selinux: ObjPtr,
}

/// Object sizes matching the Linux slab caches involved in TCP
/// connect/close.
const SOCK_SIZE: usize = 512;
const FILP_SIZE: usize = 256;
const SELINUX_SIZE: usize = 64;
const SKB_SIZE: usize = 256;

/// The simulated transport stack; see the [crate docs](crate) for the
/// traffic mapping and an example.
pub struct SimNet {
    /// Established-connections table; nodes live in the `sock` cache.
    conns: RcuHashMap<u64, ConnMeta>,
    sock_cache: Arc<dyn ObjectAllocator>,
    filp_cache: Arc<dyn ObjectAllocator>,
    selinux_cache: Arc<dyn ObjectAllocator>,
    skb_cache: Arc<dyn ObjectAllocator>,
    next_conn: AtomicU64,
    faults: Option<Arc<FaultInjector>>,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("connections", &self.conns.len())
            .finish()
    }
}

impl SimNet {
    /// Creates a stack whose slab caches come from `factory`.
    pub fn new(factory: &dyn CacheFactory) -> Self {
        Self::with_config(factory, 4096, None)
    }

    /// Creates a stack with an explicit connection-table bucket count and
    /// an optional fault injector. Harnesses size `conn_buckets` to the
    /// expected live-connection population (the table chains beyond it);
    /// the injector arms the `net.accept` and `net.read_stall` sites.
    pub fn with_config(
        factory: &dyn CacheFactory,
        conn_buckets: usize,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        let sock_cache = factory.create_cache("sock", SOCK_SIZE);
        Self {
            conns: RcuHashMap::new(Arc::clone(&sock_cache), conn_buckets.max(1)),
            sock_cache,
            filp_cache: factory.create_cache("filp", FILP_SIZE),
            selinux_cache: factory.create_cache("selinux", SELINUX_SIZE),
            skb_cache: factory.create_cache("skbuff", SKB_SIZE),
            next_conn: AtomicU64::new(1),
            faults,
        }
    }

    /// Establishes a connection: allocates the socket entry, fd object and
    /// security blob, publishing the entry for RCU lookup.
    ///
    /// # Errors
    ///
    /// [`NetError::NoMemory`] on allocator exhaustion, or
    /// [`NetError::Refused`] when an armed `net.accept` fault drops the
    /// handshake (before any slab traffic).
    pub fn connect(&self) -> Result<ConnId, NetError> {
        if let Some(faults) = &self.faults {
            if faults.should_fail(site::NET_ACCEPT) {
                return Err(NetError::Refused);
            }
        }
        let id = ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed));
        let filp = self.filp_cache.allocate()?;
        let selinux = match self.selinux_cache.allocate() {
            Ok(selinux) => selinux,
            Err(err) => {
                // SAFETY: just allocated, never published.
                unsafe { self.filp_cache.free(filp) };
                return Err(err.into());
            }
        };
        // SAFETY: fresh exclusive objects of sufficient size.
        unsafe {
            filp.as_ptr().cast::<u64>().write(id.0);
            selinux.as_ptr().cast::<u64>().write(id.0);
        }
        if let Err(err) = self.conns.insert(id.0, ConnMeta { filp, selinux }) {
            // SAFETY: the insert failed, so neither object was published.
            unsafe {
                self.filp_cache.free(filp);
                self.selinux_cache.free(selinux);
            }
            return Err(err.into());
        }
        Ok(id)
    }

    /// One request/response exchange of `bytes` each way: allocates and
    /// immediately frees `skbuff` buffers (the non-deferred traffic in the
    /// paper's Figure 12 mix).
    ///
    /// # Errors
    ///
    /// [`NetError::NoMemory`] on allocator exhaustion, or
    /// [`NetError::WouldBlock`] when an armed `net.read_stall` fault
    /// models a peer that stops sending mid-request (the connection stays
    /// open; the caller decides whether to wait or evict). The connection
    /// is not validated per message (as in a real stack, the caller owns
    /// the established socket).
    pub fn request_response(&self, _conn: ConnId, bytes: usize) -> Result<(), NetError> {
        if let Some(faults) = &self.faults {
            if faults.should_fail(site::NET_READ_STALL) {
                return Err(NetError::WouldBlock);
            }
        }
        for _direction in 0..2 {
            let mut remaining = bytes.max(1);
            while remaining > 0 {
                let chunk = remaining.min(SKB_SIZE);
                let skb = self.skb_cache.allocate()?;
                // SAFETY: fresh exclusive object of SKB_SIZE bytes.
                unsafe {
                    std::ptr::write_bytes(skb.as_ptr(), 0x42, chunk);
                    self.skb_cache.free(skb);
                }
                remaining -= chunk;
            }
        }
        Ok(())
    }

    /// Looks up a connection under an RCU guard (the ESTABLISHED-table
    /// lookup every incoming segment performs).
    ///
    /// # Panics
    ///
    /// Panics if `guard` belongs to a different RCU domain.
    pub fn is_established(&self, guard: &ReadGuard<'_>, conn: ConnId) -> bool {
        self.conns.get(guard, &conn.0).is_some()
    }

    /// Tears down a connection: the socket entry, fd object and security
    /// blob are all deferred-freed, as in kernel connection teardown.
    ///
    /// # Errors
    ///
    /// [`NetError::NotConnected`] if the connection is unknown.
    pub fn close(&self, conn: ConnId) -> Result<(), NetError> {
        let meta = self.conns.remove(&conn.0).ok_or(NetError::NotConnected)?;
        // SAFETY: unlinked above; pre-existing RCU readers may still look.
        unsafe {
            self.filp_cache.free_deferred(meta.filp);
            self.selinux_cache.free_deferred(meta.selinux);
        }
        Ok(())
    }

    /// Connections currently established.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// The cache serving `eventpoll_epi`-style sizes is owned by
    /// [`Epoll`](crate::Epoll); this returns the stack's own caches, keyed
    /// by Linux slab names.
    pub fn stats(&self) -> Vec<(&'static str, CacheStatsSnapshot)> {
        vec![
            ("sock", self.sock_cache.stats()),
            ("filp", self.filp_cache.stats()),
            ("selinux", self.selinux_cache.stats()),
            ("skbuff", self.skb_cache.stats()),
        ]
    }

    /// Deferred objects not yet reclaimed across the stack's caches.
    pub fn deferred_outstanding(&self) -> usize {
        self.sock_cache.deferred_outstanding()
            + self.filp_cache.deferred_outstanding()
            + self.selinux_cache.deferred_outstanding()
            + self.skb_cache.deferred_outstanding()
    }

    /// Waits for all deferred frees across the stack's caches.
    pub fn quiesce(&self) {
        for cache in [
            &self.sock_cache,
            &self.filp_cache,
            &self.selinux_cache,
            &self.skb_cache,
        ] {
            cache.quiesce();
        }
    }
}

impl Drop for SimNet {
    fn drop(&mut self) {
        // Free fd objects and blobs of still-open connections.
        let mut metas = Vec::new();
        {
            let rcu = self.sock_cache.rcu().clone();
            let t = rcu.register();
            let g = t.read_lock();
            self.conns.for_each(&g, |_, meta| metas.push(*meta));
        }
        for meta in metas {
            // SAFETY: exclusive access at drop; each object freed once.
            unsafe {
                self.filp_cache.free(meta.filp);
                self.selinux_cache.free(meta.selinux);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbs_mem::PageAllocator;
    use pbs_rcu::{Rcu, RcuConfig};
    use pbs_slub::SlubFactory;
    use prudence::{PrudenceConfig, PrudenceFactory};

    fn prudence_net() -> (Arc<Rcu>, SimNet) {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(2),
            Arc::new(PageAllocator::new()),
            Arc::clone(&rcu),
        );
        let net = SimNet::new(&factory);
        (rcu, net)
    }

    #[test]
    fn connect_alloc_failure_paths_do_not_leak() {
        // Heavy injected grow faults make connect() fail at every interior
        // allocation (filp, selinux, sock node) over enough attempts; any
        // partially-built connection must be rolled back, not leaked.
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let faults = Arc::new(FaultInjector::new(7));
        faults.schedule(site::PRUDENCE_GROW, pbs_fault::Schedule::Probability(0.5));
        let pages = pbs_mem::PageAllocator::builder()
            .fault_injector(Arc::clone(&faults))
            .build();
        let factory = PrudenceFactory::new(
            PrudenceConfig::new(2),
            Arc::new(pages),
            Arc::clone(&rcu),
        );
        let net = SimNet::with_config(&factory, 64, Some(Arc::clone(&faults)));
        let mut failures = 0usize;
        let mut open = Vec::new();
        for _ in 0..400 {
            match net.connect() {
                Ok(conn) => open.push(conn),
                Err(NetError::NoMemory) => failures += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(failures > 0, "p=0.5 grow faults never failed a connect");
        for conn in open {
            net.close(conn).unwrap();
        }
        net.quiesce();
        for (name, s) in net.stats() {
            assert_eq!(s.live_objects, 0, "cache {name} leaked: {s:?}");
        }
    }

    #[test]
    fn tcp_crr_cycle() {
        let (rcu, net) = prudence_net();
        let t = rcu.register();
        let conn = net.connect().unwrap();
        let g = t.read_lock();
        assert!(net.is_established(&g, conn));
        drop(g);
        net.request_response(conn, 1000).unwrap();
        net.close(conn).unwrap();
        assert_eq!(net.close(conn), Err(NetError::NotConnected));
        let g = t.read_lock();
        assert!(!net.is_established(&g, conn));
        drop(g);
        net.quiesce();
        for (name, s) in net.stats() {
            assert_eq!(s.live_objects, 0, "cache {name} leaked: {s:?}");
        }
    }

    #[test]
    fn teardown_defers_three_caches() {
        let (_rcu, net) = prudence_net();
        for _ in 0..20 {
            let c = net.connect().unwrap();
            net.request_response(c, 256).unwrap();
            net.close(c).unwrap();
        }
        net.quiesce();
        let stats: std::collections::HashMap<_, _> = net.stats().into_iter().collect();
        assert_eq!(stats["sock"].deferred_frees, 20);
        assert_eq!(stats["filp"].deferred_frees, 20);
        assert_eq!(stats["selinux"].deferred_frees, 20);
        assert_eq!(stats["skbuff"].deferred_frees, 0);
        assert!(stats["skbuff"].frees >= 40, "two directions per exchange");
    }

    #[test]
    fn works_on_slub_too() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let factory = SlubFactory::new(2, Arc::new(PageAllocator::new()), Arc::clone(&rcu));
        let net = SimNet::new(&factory);
        let c = net.connect().unwrap();
        net.request_response(c, 512).unwrap();
        net.close(c).unwrap();
        net.quiesce();
        assert_eq!(net.connection_count(), 0);
    }

    #[test]
    fn concurrent_connection_churn() {
        let (_rcu, net) = prudence_net();
        let net = Arc::new(net);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let c = net.connect().unwrap();
                        net.request_response(c, 128).unwrap();
                        net.close(c).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(net.connection_count(), 0);
        net.quiesce();
    }

    #[test]
    fn drop_with_open_connections_does_not_leak() {
        let rcu = Arc::new(Rcu::with_config(RcuConfig::eager()));
        let pages = Arc::new(PageAllocator::new());
        {
            let factory =
                PrudenceFactory::new(PrudenceConfig::new(1), Arc::clone(&pages), Arc::clone(&rcu));
            let net = SimNet::new(&factory);
            let _c1 = net.connect().unwrap();
            let _c2 = net.connect().unwrap();
            net.quiesce();
        }
        assert_eq!(pages.used_bytes(), 0);
    }
}
