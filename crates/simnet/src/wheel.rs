//! Hashed timer wheel for idle/slow-connection deadlines.
//!
//! Reactor shards arm one deadline per connection (idle timeout, refreshed
//! on activity, or a hard request deadline for slow readers) and call
//! [`TimerWheel::advance`] once per poll iteration. The wheel is
//! deliberately tick-based and caller-clocked: harnesses drive it with a
//! deterministic tick counter, benches with a nanosecond clock — the wheel
//! never reads wall time itself.
//!
//! Cancellation is lazy, as in kernel timer wheels: re-arming a key does
//! not remove the old entry; expiry hands back `(key, deadline)` pairs and
//! the caller drops pairs whose deadline no longer matches the
//! connection's current one.

/// A hashed timer wheel over `u64` keys and absolute tick deadlines.
#[derive(Debug)]
pub struct TimerWheel {
    /// `slots[i]` holds entries whose deadline maps to granule `i` of the
    /// current (or a future) revolution.
    slots: Vec<Vec<(u64, u64)>>,
    /// Ticks per slot.
    granularity: u64,
    /// The tick up to which the wheel has been advanced.
    now: u64,
    /// Entries currently armed (including stale, lazily-cancelled ones).
    armed: usize,
}

impl TimerWheel {
    /// Creates a wheel of `slots` granules, each `granularity` ticks wide.
    /// The horizon (one revolution) is `slots * granularity` ticks;
    /// deadlines beyond it simply take extra revolutions to pop.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `granularity` is zero.
    pub fn new(slots: usize, granularity: u64) -> Self {
        assert!(slots > 0, "wheel needs at least one slot");
        assert!(granularity > 0, "granularity must be nonzero ticks");
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            now: 0,
            armed: 0,
        }
    }

    fn slot_of(&self, deadline: u64) -> usize {
        ((deadline / self.granularity) as usize) % self.slots.len()
    }

    /// Arms `key` to expire at absolute tick `deadline`. Deadlines at or
    /// before the current tick pop on the next [`advance`](Self::advance).
    /// Re-arming does not cancel earlier entries for the same key — see
    /// the module docs on lazy cancellation.
    pub fn arm(&mut self, key: u64, deadline: u64) {
        let slot = self.slot_of(deadline.max(self.now + 1));
        self.slots[slot].push((key, deadline));
        self.armed += 1;
    }

    /// Advances the wheel to absolute tick `now`, appending every entry
    /// whose deadline is `<= now` to `expired` as `(key, deadline)` pairs.
    /// Entries hashed into a visited slot but due in a later revolution
    /// stay armed. Ticks never run backwards: a stale `now` is a no-op.
    pub fn advance(&mut self, now: u64, expired: &mut Vec<(u64, u64)>) {
        if now <= self.now {
            return;
        }
        // Re-visit the granule containing the previous tick: it may have
        // been only partially consumed. A full revolution visits every
        // slot once; more adds nothing.
        let first = self.now / self.granularity;
        let last = now / self.granularity;
        let granules = (last - first + 1).min(self.slots.len() as u64);
        for g in first..first + granules {
            let slot = (g as usize) % self.slots.len();
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].1 <= now {
                    expired.push(entries.swap_remove(i));
                    self.armed -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.now = now;
    }

    /// The tick the wheel has been advanced to.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Entries currently armed, including lazily-cancelled stale ones.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// Whether no entries are armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_due_entries_in_deadline_window() {
        let mut w = TimerWheel::new(8, 10);
        w.arm(1, 15);
        w.arm(2, 25);
        w.arm(3, 500);
        let mut out = Vec::new();
        w.advance(20, &mut out);
        assert_eq!(out, vec![(1, 15)]);
        out.clear();
        w.advance(30, &mut out);
        assert_eq!(out, vec![(2, 25)]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn far_deadline_survives_revolutions() {
        let mut w = TimerWheel::new(4, 10);
        // Horizon is 40 ticks; 95 needs two-plus revolutions.
        w.arm(7, 95);
        let mut out = Vec::new();
        w.advance(40, &mut out);
        w.advance(80, &mut out);
        assert!(out.is_empty(), "popped early: {out:?}");
        w.advance(100, &mut out);
        assert_eq!(out, vec![(7, 95)]);
        assert!(w.is_empty());
    }

    #[test]
    fn big_jump_drains_everything_due() {
        let mut w = TimerWheel::new(4, 1);
        for key in 0..100 {
            w.arm(key, key + 1);
        }
        let mut out = Vec::new();
        w.advance(1_000_000, &mut out);
        assert_eq!(out.len(), 100);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_now_is_noop_and_past_deadline_pops_next_advance() {
        let mut w = TimerWheel::new(8, 10);
        let mut out = Vec::new();
        w.advance(50, &mut out);
        w.advance(30, &mut out); // backwards: ignored
        assert_eq!(w.now(), 50);
        w.arm(9, 12); // already past; pops on the next forward advance
        w.advance(51, &mut out);
        assert_eq!(out, vec![(9, 12)]);
    }

    #[test]
    fn lazy_cancellation_hands_back_both_entries() {
        let mut w = TimerWheel::new(8, 1);
        w.arm(4, 3);
        w.arm(4, 6); // refresh: old entry stays armed
        assert_eq!(w.len(), 2);
        let mut out = Vec::new();
        w.advance(10, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(4, 3), (4, 6)]);
    }
}
