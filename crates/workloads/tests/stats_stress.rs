//! Multi-threaded stress over both allocators asserting the sharded
//! statistics stay consistent: shards are bumped with plain stores under
//! per-slot locks, so this is the test that the single-writer discipline
//! actually holds (a racing writer would lose increments and break the
//! accounting identities below).

use std::sync::Arc;

use pbs_rcu::RcuConfig;
use pbs_workloads::{AllocatorKind, Testbed};

#[test]
fn sharded_stats_consistent_after_stress() {
    for kind in AllocatorKind::BOTH {
        let threads = 4;
        let bed = Testbed::new(kind, threads, RcuConfig::eager(), None);
        let cache = bed.create_cache("stress", 96);
        let held_back = 25usize;
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..4_000 {
                        held.push(cache.allocate().expect("stress allocation"));
                        // Mix immediate frees, deferred frees, and holding,
                        // skewed differently per thread so slots disagree.
                        match (i + t) % 3 {
                            0 if held.len() > held_back => {
                                let o = held.swap_remove(0);
                                unsafe { cache.free(o) };
                            }
                            1 if held.len() > held_back => {
                                let o = held.swap_remove(0);
                                unsafe { cache.free_deferred(o) };
                            }
                            _ => {}
                        }
                        if held.len() > 128 {
                            for o in held.drain(held_back..) {
                                unsafe { cache.free_deferred(o) };
                            }
                        }
                    }
                    held
                })
            })
            .collect();
        let mut survivors = Vec::new();
        for w in workers {
            survivors.extend(w.join().expect("stress worker panicked"));
        }
        cache.quiesce();

        // With `survivors.len()` objects still held, the live count must be
        // exactly allocs − frees — lost shard updates would show up here.
        let s = cache.stats();
        assert_eq!(
            s.alloc_requests,
            s.frees + s.deferred_frees + survivors.len() as u64,
            "{kind}: alloc/free identity broken: {s:?}"
        );
        assert_eq!(
            s.live_objects,
            survivors.len() as u64,
            "{kind}: live count wrong: {s:?}"
        );
        assert!(
            s.cache_hits + s.latent_hits <= s.alloc_requests,
            "{kind}: more hits than requests: {s:?}"
        );

        for o in survivors {
            unsafe { cache.free(o) };
        }
        cache.quiesce();
        let s = cache.stats();
        assert_eq!(s.alloc_requests, s.frees + s.deferred_frees, "{kind}: {s:?}");
        assert_eq!(s.live_objects, 0, "{kind}: {s:?}");
    }
}
