//! Per-site attribution balance under mixed op sequences.
//!
//! The site registry is process-global, so this suite lives in its own
//! test binary: no other test's deferred frees can leak into the
//! ledger it audits. One test drives both allocators through
//! stress-style alloc/free/free_deferred interleavings from two
//! distinct call sites, quiesces, and asserts the attribution ledger
//! balances: every stamped defer was credited back, per site, in
//! objects and in bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbs_rcu::RcuConfig;
use pbs_workloads::{AllocatorKind, Testbed};

const OBJ_SIZE: usize = 96;

/// Polls the global site report until every site tagged with this file
/// has `outstanding == 0`, nudging grace periods and cache drains in
/// between — hp/hyaline credit on their own scan/seal cadence, not at a
/// fixed point like the epoch backend.
fn drain_until_balanced(bed: &Testbed, cache: &dyn pbs_alloc_api::ObjectAllocator) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        bed.rcu().synchronize();
        cache.quiesce();
        let report = pbs_telemetry::site::report();
        let unbalanced = report
            .sites
            .iter()
            .filter(|s| s.label.contains("attribution.rs"))
            .any(|s| s.outstanding != 0);
        if !unbalanced {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "sites never balanced: {:#?}",
            report.sites
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn per_site_counters_balance_after_mixed_op_sequences() {
    // Ops routed through the "even" and "odd" call sites below, across
    // both allocators; the final ledger must match these exactly.
    let site_a_ops = Arc::new(AtomicU64::new(0));
    let site_b_ops = Arc::new(AtomicU64::new(0));

    for kind in AllocatorKind::BOTH {
        let threads = 4;
        let bed = Testbed::new(kind, threads, RcuConfig::eager(), None);
        let cache = bed.create_cache("attribution", OBJ_SIZE);
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let site_a_ops = Arc::clone(&site_a_ops);
                let site_b_ops = Arc::clone(&site_b_ops);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..3_000 {
                        held.push(cache.allocate().expect("attribution allocation"));
                        match (i + t) % 4 {
                            // Immediate frees never enter the ledger.
                            0 if held.len() > 16 => {
                                let o = held.swap_remove(0);
                                unsafe { cache.free(o) };
                            }
                            // Two textually distinct defer sites so the
                            // report must keep separate rows for them.
                            1 if held.len() > 16 => {
                                let o = held.swap_remove(0);
                                unsafe { cache.free_deferred(o) };
                                site_a_ops.fetch_add(1, Ordering::Relaxed);
                            }
                            2 if held.len() > 16 => {
                                let o = held.swap_remove(0);
                                unsafe { cache.free_deferred(o) };
                                site_b_ops.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                    }
                    held
                })
            })
            .collect();
        let mut survivors = Vec::new();
        for w in workers {
            survivors.extend(w.join().expect("attribution worker panicked"));
        }
        // Drain survivors through site B as one last burst.
        let burst = survivors.len() as u64;
        for o in survivors {
            unsafe { cache.free_deferred(o) };
        }
        site_b_ops.fetch_add(burst, Ordering::Relaxed);

        drain_until_balanced(&bed, &*cache);
    }

    let report = pbs_telemetry::site::report();
    let ours: Vec<_> = report
        .sites
        .iter()
        .filter(|s| s.label.contains("attribution.rs"))
        .collect();
    assert!(
        ours.len() >= 2,
        "expected at least the two defer sites in this file, got {ours:#?}"
    );
    let mut deferred_total = 0;
    for site in &ours {
        assert_eq!(
            site.deferred, site.reclaimed,
            "site {} leaked garbage: {site:#?}",
            site.label
        );
        assert_eq!(site.outstanding, 0, "site {}: {site:#?}", site.label);
        assert_eq!(
            site.deferred_bytes,
            site.deferred * OBJ_SIZE as u64,
            "site {} byte accounting off: {site:#?}",
            site.label
        );
        assert_eq!(
            site.reclaimed_bytes, site.deferred_bytes,
            "site {}: {site:#?}",
            site.label
        );
        deferred_total += site.deferred;
    }
    assert_eq!(
        deferred_total,
        site_a_ops.load(Ordering::Relaxed) + site_b_ops.load(Ordering::Relaxed),
        "ledger total diverges from ops actually issued: {ours:#?}"
    );
    // Nothing from this binary may still be stamped outstanding.
    assert_eq!(
        report.outstanding_total, 0,
        "stamp table not empty after quiesce: {report:#?}"
    );
    assert_eq!(report.lost_stamps, 0, "stamps were overwritten: {report:#?}");
}
