//! Telemetry exposition: render a [`TelemetrySnapshot`] as Prometheus
//! text and as a chrome://tracing (Trace Event Format) JSON file, plus the
//! validators CI runs against both.
//!
//! The exporters are pure functions over snapshot data — no live allocator
//! state is touched — so they can run after the workload has been torn
//! down.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use pbs_alloc_api::TelemetrySnapshot;
use pbs_telemetry::{bucket_upper_bound, ComponentTelemetry, HistogramSnapshot, BUCKETS};

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Series layout:
/// * `pbs_rcu_*` — RCU domain counters and the `gp_latency_ns` /
///   `callback_delay_ns` histograms.
/// * `pbs_cache_*{cache="<name>"}` — per-cache counters and the
///   `slot_wait_ns` / `defer_delay_ns` histograms.
/// * `pbs_events_total{component,kind}` plus `pbs_events_dropped_total` /
///   `pbs_events_torn_total` — trace-ring accounting.
pub fn to_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let r = &snap.rcu;
    counter(&mut out, "pbs_rcu_gp_advances_total", "", r.gp_advances);
    counter(
        &mut out,
        "pbs_rcu_synchronize_calls_total",
        "",
        r.synchronize_calls,
    );
    counter(
        &mut out,
        "pbs_rcu_membarrier_advances_total",
        "",
        r.membarrier_advances,
    );
    counter(
        &mut out,
        "pbs_rcu_fallback_fence_advances_total",
        "",
        r.fallback_fence_advances,
    );
    counter(
        &mut out,
        "pbs_rcu_injected_gp_stalls_total",
        "",
        r.injected_gp_stalls,
    );
    counter(&mut out, "pbs_rcu_stall_warnings_total", "", r.stall_warnings);
    counter(&mut out, "pbs_rcu_stall_blames_total", "", r.stall_blames);
    counter(&mut out, "pbs_rcu_expedited_gps_total", "", r.expedited_gps);
    gauge(&mut out, "pbs_rcu_active_stalls", "", r.active_stalls);
    gauge(&mut out, "pbs_rcu_longest_stall_ns", "", r.longest_stall_ns);
    counter(
        &mut out,
        "pbs_rcu_callbacks_enqueued_total",
        "",
        r.callbacks_enqueued,
    );
    counter(
        &mut out,
        "pbs_rcu_callbacks_processed_total",
        "",
        r.callbacks_processed,
    );
    gauge(&mut out, "pbs_rcu_callback_backlog", "", r.callback_backlog as u64);
    gauge(
        &mut out,
        "pbs_rcu_max_callback_backlog",
        "",
        r.max_callback_backlog as u64,
    );
    for h in &snap.rcu_telemetry.histograms {
        histogram(&mut out, &format!("pbs_rcu_{}", h.name), "", &h.hist);
    }
    ring_series(&mut out, "rcu", &snap.rcu_telemetry);
    reclaim_series(&mut out, snap);
    blame_series(&mut out, snap);
    site_series(&mut out, snap);
    for cache in &snap.caches {
        let labels = format!("cache=\"{}\"", cache.name);
        let s = &cache.stats;
        for (metric, value) in [
            ("pbs_cache_alloc_requests_total", s.alloc_requests),
            ("pbs_cache_hits_total", s.cache_hits),
            ("pbs_cache_latent_hits_total", s.latent_hits),
            ("pbs_cache_frees_total", s.frees),
            ("pbs_cache_deferred_frees_total", s.deferred_frees),
            ("pbs_cache_refills_total", s.refills),
            ("pbs_cache_partial_refills_total", s.partial_refills),
            ("pbs_cache_flushes_total", s.flushes),
            ("pbs_cache_preflushes_total", s.preflushes),
            ("pbs_cache_grows_total", s.grows),
            ("pbs_cache_shrinks_total", s.shrinks),
            ("pbs_cache_pre_movements_total", s.pre_movements),
            ("pbs_cache_node_lock_contended_total", s.node_lock_contended),
            ("pbs_cache_cpu_slot_misses_total", s.cpu_slot_misses),
            ("pbs_cache_oom_waits_total", s.oom_waits),
            ("pbs_cache_pressure_transitions_total", s.pressure_transitions),
            ("pbs_cache_assisted_merges_total", s.assisted_merges),
            ("pbs_cache_fastpath_hits_total", s.rseq_hits),
            ("pbs_cache_fastpath_restarts_total", s.rseq_restarts),
            ("pbs_cache_fastpath_fallbacks_total", s.fastpath_fallbacks),
        ] {
            counter(&mut out, metric, &labels, value);
        }
        for (stage, value) in [
            ("1", s.oom_recoveries_stage1),
            ("2", s.oom_recoveries_stage2),
            ("3", s.oom_recoveries_stage3),
        ] {
            counter(
                &mut out,
                "pbs_cache_oom_recoveries_total",
                &format!("{labels},stage=\"{stage}\""),
                value,
            );
        }
        gauge(
            &mut out,
            "pbs_cache_pressure_level",
            &labels,
            s.pressure_level as u64,
        );
        gauge(&mut out, "pbs_cache_slabs_current", &labels, s.slabs_current as u64);
        gauge(&mut out, "pbs_cache_slabs_peak", &labels, s.slabs_peak as u64);
        gauge(&mut out, "pbs_cache_live_objects", &labels, s.live_objects);
        for h in &cache.telemetry.histograms {
            histogram(&mut out, &format!("pbs_cache_{}", h.name), &labels, &h.hist);
        }
        ring_series(&mut out, &cache.name, &cache.telemetry);
    }
    out
}

fn counter(out: &mut String, name: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    write_sample(out, name, labels, value);
}

fn gauge(out: &mut String, name: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    write_sample(out, name, labels, value);
}

fn write_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Prometheus histograms are cumulative: each `le` bucket counts all
/// observations at or below its bound, ending with `+Inf`.
fn histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        cumulative += h.buckets.get(i).copied().unwrap_or(0);
        // The last bucket's bound is u64::MAX; Prometheus spells it +Inf.
        if i + 1 == BUCKETS {
            break;
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    write_sample(out, &format!("{name}_sum"), labels, h.sum);
    write_sample(out, &format!("{name}_count"), labels, h.count);
}

/// Reclamation-backend counters. All series render under every backend
/// (zero-valued where the mechanism is not in play) so dashboards and the
/// validator see a stable schema across `PBS_RECLAIM` legs.
fn reclaim_series(out: &mut String, snap: &TelemetrySnapshot) {
    let rc = &snap.reclaim;
    let backend = if rc.backend.is_empty() {
        "none"
    } else {
        rc.backend.as_str()
    };
    let labels = format!("backend=\"{backend}\"");
    counter(out, "pbs_reclaim_hp_scans_total", &labels, rc.scans);
    counter(out, "pbs_reclaim_batch_seals_total", &labels, rc.batches_sealed);
    counter(out, "pbs_reclaim_reader_ejects_total", &labels, rc.ejections);
    counter(out, "pbs_reclaim_scan_reclaimed_total", &labels, rc.scan_reclaimed);
    counter(out, "pbs_reclaim_scan_protected_total", &labels, rc.scan_protected);
    counter(
        out,
        "pbs_reclaim_batch_refs_captured_total",
        &labels,
        rc.batch_refs_captured,
    );
    gauge(
        out,
        "pbs_reclaim_deferred_in_domain",
        &labels,
        rc.deferred_in_domain as u64,
    );
}

/// Stall-blame series: one gauge per live culprit (thread-labelled) plus
/// the open-episode count.
fn blame_series(out: &mut String, snap: &TelemetrySnapshot) {
    let open = snap.blame.iter().filter(|b| !b.cleared).count();
    gauge(out, "pbs_rcu_blame_open_episodes", "", open as u64);
    for b in snap.blame.iter().filter(|b| !b.cleared) {
        gauge(
            out,
            "pbs_rcu_blame_stalled_for_ns",
            &format!("thread=\"{}\",record=\"{}\"", b.thread_name, b.record_id),
            b.stalled_for_ns,
        );
    }
}

/// Per-site attribution series plus garbage-age histograms and gauges.
fn site_series(out: &mut String, snap: &TelemetrySnapshot) {
    let sites = &snap.sites;
    gauge(out, "pbs_sites_outstanding_total", "", sites.outstanding_total);
    gauge(
        out,
        "pbs_sites_oldest_outstanding_ns",
        "",
        sites.oldest_outstanding_ns,
    );
    counter(out, "pbs_sites_dropped_total", "", sites.dropped_sites);
    counter(out, "pbs_sites_lost_stamps_total", "", sites.lost_stamps);
    for s in &sites.sites {
        let labels = format!("site=\"{}\"", s.label);
        counter(out, "pbs_site_deferred_total", &labels, s.deferred);
        counter(out, "pbs_site_reclaimed_total", &labels, s.reclaimed);
        gauge(out, "pbs_site_outstanding", &labels, s.outstanding);
        gauge(out, "pbs_site_outstanding_bytes", &labels, s.outstanding_bytes);
    }
    for h in &sites.age {
        let backend = h
            .name
            .strip_prefix("garbage_age_ns_")
            .unwrap_or(h.name.as_str());
        histogram(
            out,
            "pbs_garbage_age_ns",
            &format!("backend=\"{backend}\""),
            &h.hist,
        );
    }
}

/// Event-kind counts and ring accounting for one component.
fn ring_series(out: &mut String, component: &str, t: &ComponentTelemetry) {
    for (kind, count) in &t.event_counts {
        let _ = writeln!(out, "# TYPE pbs_events_total counter");
        let _ = writeln!(
            out,
            "pbs_events_total{{component=\"{component}\",kind=\"{kind}\"}} {count}"
        );
    }
    let labels = format!("component=\"{component}\"");
    counter(out, "pbs_events_recorded_total", &labels, t.events_recorded);
    counter(out, "pbs_events_dropped_total", &labels, t.events_dropped);
    counter(out, "pbs_events_torn_total", &labels, t.events_torn);
}

/// Renders the snapshot's events in the Trace Event Format consumed by
/// chrome://tracing and Perfetto: one instant event per trace record, one
/// process per component, one thread per ring lane.
pub fn to_chrome_trace(snap: &TelemetrySnapshot) -> String {
    let mut events = Vec::new();
    push_process_meta(&mut events, 1, "rcu");
    push_component_events(&mut events, 1, "rcu", &snap.rcu_telemetry);
    for (i, cache) in snap.caches.iter().enumerate() {
        let pid = i as u64 + 2;
        push_process_meta(&mut events, pid, &cache.name);
        push_component_events(&mut events, pid, &cache.name, &cache.telemetry);
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

fn push_process_meta(events: &mut Vec<String>, pid: u64, name: &str) {
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

fn push_component_events(
    events: &mut Vec<String>,
    pid: u64,
    cat: &str,
    t: &ComponentTelemetry,
) {
    for e in &t.events {
        // Trace Event ts is in microseconds; keep nanosecond precision in
        // the fraction.
        let ts_us = e.t_ns as f64 / 1000.0;
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"seq\":{},\"src\":{},\"a\":{},\"b\":{}}}}}",
            e.kind_name(),
            e.lane,
            e.seq,
            e.src,
            e.a,
            e.b,
        ));
    }
}

/// Series every healthy run must expose; [`validate_prometheus`] fails
/// when any is absent.
pub const REQUIRED_PROM_SERIES: [&str; 15] = [
    "pbs_rcu_gp_advances_total",
    "pbs_rcu_membarrier_advances_total",
    "pbs_rcu_fallback_fence_advances_total",
    "pbs_rcu_stall_warnings_total",
    "pbs_rcu_expedited_gps_total",
    "pbs_rcu_active_stalls",
    "pbs_rcu_gp_latency_ns_bucket",
    "pbs_cache_pressure_level",
    "pbs_cache_oom_recoveries_total",
    "pbs_cache_fastpath_hits_total",
    "pbs_cache_fastpath_fallbacks_total",
    "pbs_events_total",
    "pbs_reclaim_hp_scans_total",
    "pbs_reclaim_batch_seals_total",
    "pbs_reclaim_reader_ejects_total",
];

/// Validates Prometheus exposition text: every non-comment line must be
/// `name[{labels}] <number>`, and every [`REQUIRED_PROM_SERIES`] entry
/// must be present.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing series.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    if text.trim().is_empty() {
        return Err("empty Prometheus exposition".to_owned());
    }
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value: {line:?}", lineno + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: non-numeric value: {line:?}", lineno + 1))?;
        let name = series.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name: {line:?}", lineno + 1));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {}: unterminated labels: {line:?}", lineno + 1));
        }
    }
    for required in REQUIRED_PROM_SERIES {
        if !text.contains(required) {
            return Err(format!("missing required series {required}"));
        }
    }
    Ok(())
}

/// Validates chrome://tracing JSON: it must parse, carry a `traceEvents`
/// array, and every entry must have the `name`/`ph`/`pid` fields the
/// viewer requires (plus `ts` for non-metadata events).
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("unparseable trace JSON: {e}"))?;
    let serde::Content::Map(fields) = &value else {
        return Err("trace root is not an object".to_owned());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or_else(|| "missing traceEvents".to_owned())?;
    let serde::Content::Seq(events) = events else {
        return Err("traceEvents is not an array".to_owned());
    };
    for (i, event) in events.iter().enumerate() {
        let serde::Content::Map(fields) = event else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = match field("ph") {
            Some(serde::Content::Str(ph)) => ph.as_str(),
            _ => return Err(format!("traceEvents[{i}]: missing ph")),
        };
        for required in ["name", "pid"] {
            if field(required).is_none() {
                return Err(format!("traceEvents[{i}]: missing {required}"));
            }
        }
        if ph != "M" && field("ts").is_none() {
            return Err(format!("traceEvents[{i}]: missing ts"));
        }
    }
    Ok(())
}

/// Writes `<prefix>.prom` and `<prefix>.trace.json` for a snapshot and
/// returns the two paths.
///
/// # Errors
///
/// Propagates filesystem errors (the prefix's parent directory must
/// exist or be creatable).
pub fn write_telemetry(
    prefix: &Path,
    snap: &TelemetrySnapshot,
) -> std::io::Result<(PathBuf, PathBuf)> {
    if let Some(parent) = prefix.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut prom_path = prefix.as_os_str().to_owned();
    prom_path.push(".prom");
    let prom_path = PathBuf::from(prom_path);
    let mut trace_path = prefix.as_os_str().to_owned();
    trace_path.push(".trace.json");
    let trace_path = PathBuf::from(trace_path);
    std::fs::write(&prom_path, to_prometheus(snap))?;
    std::fs::write(&trace_path, to_chrome_trace(snap))?;
    Ok((prom_path, trace_path))
}

/// Writes the raw snapshot as `<prefix>.snapshot.json` (same append
/// semantics as [`write_telemetry`]) and returns the path. The file is
/// what the offline `doctor` bin renders.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn write_snapshot_json(
    prefix: &Path,
    snap: &TelemetrySnapshot,
) -> std::io::Result<PathBuf> {
    if let Some(parent) = prefix.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut path = prefix.as_os_str().to_owned();
    path.push(".snapshot.json");
    let path = PathBuf::from(path);
    let json = serde_json::to_string(snap)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Parses the `--telemetry <prefix>` flag shared by the workload bins:
/// when present, the bin accumulates its runs' snapshots and writes
/// `<prefix>.prom` + `<prefix>.trace.json` at exit via
/// [`write_telemetry`].
pub fn telemetry_arg(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Folds one run's snapshot into a bin-wide accumulator, prefixing cache
/// names with a run label (e.g. the allocator kind) so same-named caches
/// from different runs stay distinguishable after the merge.
pub fn accumulate_labeled(
    total: &mut TelemetrySnapshot,
    label: &str,
    mut snap: TelemetrySnapshot,
) {
    for cache in &mut snap.caches {
        cache.name = format!("{label}/{}", cache.name);
    }
    total.merge(&snap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocatorKind, Testbed};
    use pbs_rcu::RcuConfig;

    fn exercised_snapshot() -> TelemetrySnapshot {
        // Pinned to the epoch domain: the assertions below count on the
        // legacy deferred path's latent-stamp events, which robust
        // backends (a PBS_RECLAIM=hp/hyaline environment) divert around.
        let bed = Testbed::new_tuned(
            AllocatorKind::Prudence,
            2,
            RcuConfig::eager(),
            None,
            None,
            None,
            None,
            Some((
                pbs_rcu::reclaim::ReclaimBackend::Epoch,
                pbs_rcu::reclaim::ReclaimConfig::default(),
            )),
        );
        let cache = bed.create_cache("kmalloc-64", 64);
        for _ in 0..50 {
            let o = cache.allocate().unwrap();
            unsafe { cache.free_deferred(o) };
        }
        bed.rcu().synchronize();
        cache.quiesce();
        bed.telemetry()
    }

    #[test]
    fn prometheus_round_trip_validates() {
        let snap = exercised_snapshot();
        let text = to_prometheus(&snap);
        validate_prometheus(&text).expect("self-produced exposition must validate");
        assert!(text.contains("pbs_rcu_gp_latency_ns_bucket"));
        assert!(text.contains("kind=\"latent_stamp\""));
        assert!(text.contains("cache=\"kmalloc-64\""));
        // The fast path reports its engine choice at construction and its
        // counters in every cache's series.
        assert!(text.contains("kind=\"fastpath_engine\""));
        assert!(text.contains("pbs_cache_fastpath_hits_total{cache=\"kmalloc-64\"}"));
        assert!(text.contains("pbs_cache_fastpath_restarts_total{cache=\"kmalloc-64\"}"));
        assert!(text.contains("pbs_cache_fastpath_fallbacks_total{cache=\"kmalloc-64\"}"));
    }

    #[test]
    fn chrome_trace_round_trip_validates() {
        let snap = exercised_snapshot();
        let trace = to_chrome_trace(&snap);
        validate_chrome_trace(&trace).expect("self-produced trace must validate");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("latent_stamp"));
    }

    #[test]
    fn validators_reject_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("pbs_rcu_gp_advances_total notanumber").is_err());
        assert!(
            validate_prometheus("pbs_ok_total 1").is_err(),
            "required series must be missed"
        );
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}").is_err(),
            "events must carry name/pid"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut out = String::new();
        let h = HistogramSnapshot {
            count: 3,
            sum: 12,
            buckets: {
                let mut b = vec![0u64; BUCKETS];
                b[1] = 1; // value 1
                b[3] = 2; // two values in [4,7]
                b
            },
        };
        histogram(&mut out, "t_ns", "", &h);
        assert!(out.contains("t_ns_bucket{le=\"1\"} 1"));
        assert!(out.contains("t_ns_bucket{le=\"7\"} 3"));
        assert!(out.contains("t_ns_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("t_ns_sum 12"));
        validate_prometheus(&format!(
            "{out}pbs_rcu_gp_advances_total 0\npbs_rcu_membarrier_advances_total 0\n\
             pbs_rcu_fallback_fence_advances_total 0\npbs_rcu_stall_warnings_total 0\n\
             pbs_rcu_expedited_gps_total 0\npbs_rcu_active_stalls 0\n\
             pbs_rcu_gp_latency_ns_bucket{{le=\"+Inf\"}} 0\n\
             pbs_cache_pressure_level{{cache=\"t\"}} 0\n\
             pbs_cache_oom_recoveries_total{{cache=\"t\",stage=\"1\"}} 0\n\
             pbs_cache_fastpath_hits_total{{cache=\"t\"}} 0\n\
             pbs_cache_fastpath_fallbacks_total{{cache=\"t\"}} 0\n\
             pbs_events_total{{component=\"rcu\",kind=\"gp_begin\"}} 0\n\
             pbs_reclaim_hp_scans_total{{backend=\"epoch\"}} 0\n\
             pbs_reclaim_batch_seals_total{{backend=\"epoch\"}} 0\n\
             pbs_reclaim_reader_ejects_total{{backend=\"epoch\"}} 0\n"
        ))
        .unwrap();
    }

    #[test]
    fn write_telemetry_emits_both_files() {
        let snap = exercised_snapshot();
        let dir = std::env::temp_dir().join(format!(
            "pbs-telemetry-test-{}",
            std::process::id()
        ));
        let (prom, trace) = write_telemetry(&dir.join("run"), &snap).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        validate_prometheus(&prom_text).unwrap();
        validate_chrome_trace(&trace_text).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
