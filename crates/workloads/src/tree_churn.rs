//! Extension experiment: tree restructuring as a deferred-free amplifier.
//!
//! §3.1 of the paper motivates bursty freeing with "tree re-balancing
//! results in multiple deferred objects": one logical update can retire
//! several node versions at once. This experiment quantifies that on the
//! [`RcuBst`]: random remove+reinsert churn produces >1 deferred object
//! per operation, and the two allocators are compared under exactly that
//! amplified load.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use serde::{Deserialize, Serialize};

use pbs_rcu::RcuConfig;
use pbs_structs::RcuBst;

use crate::{AllocatorKind, Testbed};

/// Parameters for the tree-churn experiment.
#[derive(Debug, Clone)]
pub struct TreeChurnParams {
    /// Worker threads, each churning a private tree.
    pub threads: usize,
    /// Keys resident per tree.
    pub keys: u64,
    /// Remove+insert operations per thread.
    pub ops_per_thread: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreeChurnParams {
    fn default() -> Self {
        Self {
            threads: crate::microbench::num_threads(),
            keys: 512,
            ops_per_thread: 50_000,
            seed: 0xBEEF,
        }
    }
}

/// Result of one tree-churn run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeChurnReport {
    /// Allocator label.
    pub allocator: String,
    /// Remove+insert operations per second.
    pub ops_per_sec: f64,
    /// Average node versions deferred per operation (the §3.1
    /// amplification factor; >1 by construction).
    pub deferred_per_op: f64,
    /// Node-cache statistics.
    pub stats: pbs_alloc_api::CacheStatsSnapshot,
}

/// Runs the tree churn on one allocator.
pub fn run_tree_churn(kind: AllocatorKind, params: &TreeChurnParams) -> TreeChurnReport {
    let bed = Testbed::new(kind, params.threads, RcuConfig::kernel_bursty(), None);
    let cache = bed.create_cache("btree_node", 64);
    let start = Instant::now();
    let mut deferred_total = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..params.threads {
            let cache = std::sync::Arc::clone(&cache);
            let params = params.clone();
            let bed = &bed;
            handles.push(s.spawn(move || {
                let tree: RcuBst<u64> = RcuBst::new(cache);
                let reader = bed.rcu().register();
                let mut rng = StdRng::seed_from_u64(params.seed ^ tid as u64);
                for k in 0..params.keys {
                    tree.insert(k, k).expect("populate");
                }
                for i in 0..params.ops_per_thread {
                    let k = rng.gen_range(0..params.keys);
                    tree.remove(k);
                    tree.insert(k, i).expect("reinsert");
                    // Read-side descent interleaved with the churn: under
                    // the robust backends this runs the protected walk
                    // against the very versions the churn just deferred.
                    if i % 8 == 0 {
                        let guard = reader.read_lock();
                        assert!(
                            tree.lookup(&guard, k).is_some(),
                            "own reinsert of {k} invisible to a guarded lookup"
                        );
                    }
                }
                tree.deferred_versions()
            }));
        }
        for h in handles {
            deferred_total += h.join().expect("tree churn worker");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    cache.quiesce();
    let total_ops = params.threads as u64 * params.ops_per_thread;
    TreeChurnReport {
        allocator: kind.label().to_owned(),
        ops_per_sec: total_ops as f64 / elapsed,
        deferred_per_op: deferred_total as f64 / total_ops as f64,
        stats: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_updates_amplify_deferrals() {
        let params = TreeChurnParams {
            threads: 2,
            keys: 128,
            ops_per_thread: 2_000,
            seed: 3,
        };
        for kind in AllocatorKind::BOTH {
            let r = run_tree_churn(kind, &params);
            assert!(r.ops_per_sec > 0.0);
            // Each remove defers ≥1 node and each reinsert-over-missing
            // defers none, but two-child removals defer several — the
            // average must exceed one deferral per remove+insert pair.
            assert!(
                r.deferred_per_op > 1.0,
                "{kind}: amplification {:.2} not > 1",
                r.deferred_per_op
            );
            assert_eq!(r.stats.live_objects, 0);
        }
    }
}
