//! Orchestration: regenerate every table and figure of the paper's
//! evaluation and render them in paper-like form.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::alloc_cost::{measure_alloc_cost, AllocCostReport};
use crate::apps::{compare, AppParams, APP_NAMES};
use crate::endurance::{run_endurance, EnduranceParams, EnduranceReport};
use crate::microbench::{run_microbench, MicrobenchParams, MicrobenchPoint};
use crate::report::AppComparison;
use crate::AllocatorKind;

/// The object sizes Figure 6 sweeps.
pub const FIG6_SIZES: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];

/// Figure 6 output: per size, the baseline and Prudence rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6Row {
    /// Object size in bytes.
    pub object_size: usize,
    /// Baseline pairs/second.
    pub slub: f64,
    /// Prudence pairs/second.
    pub prudence: f64,
}

impl Figure6Row {
    /// The paper's headline multiple (3.9×–28.6× on their hardware).
    pub fn speedup(&self) -> f64 {
        if self.slub == 0.0 {
            0.0
        } else {
            self.prudence / self.slub
        }
    }
}

/// Runs Figure 6 across `sizes`.
pub fn figure6(sizes: &[usize], params: &MicrobenchParams) -> Vec<Figure6Row> {
    sizes
        .iter()
        .map(|&object_size| {
            let slub: MicrobenchPoint = run_microbench(AllocatorKind::Slub, object_size, params);
            let prudence = run_microbench(AllocatorKind::Prudence, object_size, params);
            Figure6Row {
                object_size,
                slub: slub.pairs_per_sec,
                prudence: prudence.pairs_per_sec,
            }
        })
        .collect()
}

/// Renders Figure 6 as a text table.
pub fn render_figure6(rows: &[Figure6Row]) -> String {
    let mut out = String::from(
        "Figure 6 — kmalloc/kfree_deferred pairs per second\n\
         size      slub pairs/s  prudence pairs/s   speedup\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>13.0} {:>17.0} {:>8.1}x",
            r.object_size,
            r.slub,
            r.prudence,
            r.speedup()
        );
    }
    out
}

/// Runs Figure 3 for both allocators.
pub fn figure3(params: &EnduranceParams) -> (EnduranceReport, EnduranceReport) {
    (
        run_endurance(AllocatorKind::Slub, params),
        run_endurance(AllocatorKind::Prudence, params),
    )
}

/// Renders Figure 3 summaries.
pub fn render_figure3(slub: &EnduranceReport, prudence: &EnduranceReport) -> String {
    format!(
        "Figure 3 — total used memory under continuous RCU updates\n{}\n{}\n",
        slub.render(),
        prudence.render()
    )
}

/// Runs Figures 7–13: all four application benchmarks on both allocators.
pub fn figures7_to_13(params: &AppParams) -> Vec<AppComparison> {
    APP_NAMES.iter().map(|name| compare(name, params)).collect()
}

/// Renders the application-benchmark figures, including the Figure 12 and
/// Figure 13 summary rows.
pub fn render_figures7_to_13(comparisons: &[AppComparison]) -> String {
    let mut out = String::from("Figures 7-11 — per-cache allocator attributes\n\n");
    for cmp in comparisons {
        out.push_str(&cmp.render());
        out.push('\n');
    }
    out.push_str("Figure 12 — deferred frees out of total frees\n");
    for cmp in comparisons {
        let _ = writeln!(
            out,
            "{:<10} {:>5.1}%",
            cmp.name,
            cmp.slub.deferred_free_percent()
        );
    }
    out.push_str("\nFigure 13 — overall throughput improvement of Prudence\n");
    for cmp in comparisons {
        let _ = writeln!(
            out,
            "{:<10} {:>+6.1}%  (slub {:.0} ops/s -> prudence {:.0} ops/s)",
            cmp.name,
            cmp.throughput_improvement_percent(),
            cmp.slub.ops_per_sec,
            cmp.prudence.ops_per_sec
        );
    }
    out
}

/// Runs the §3.3 allocation-cost table.
pub fn section33_cost_table(object_size: usize, iterations: u64) -> AllocCostReport {
    measure_alloc_cost(object_size, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_row_math() {
        let r = Figure6Row {
            object_size: 512,
            slub: 100.0,
            prudence: 400.0,
        };
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        let text = render_figure6(&[r]);
        assert!(text.contains("4.0x"));
    }

    #[test]
    fn renders_are_nonempty() {
        let params = AppParams {
            threads: 1,
            transactions_per_thread: 50,
            pool_size: 8,
            seed: 1,
        };
        let cmp = compare("netperf", &params);
        let text = render_figures7_to_13(std::slice::from_ref(&cmp));
        assert!(text.contains("Figure 13"));
        assert!(text.contains("netperf"));
    }
}
