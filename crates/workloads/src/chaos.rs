//! Chaos harness: churn workloads under injected faults and stalled
//! readers, asserting the paper's robustness invariants at quiesce.
//!
//! The paper's claim that Prudence *waits on deferred objects instead of
//! failing* under memory pressure (Algorithm lines 31–33) is precisely the
//! behaviour ordinary benchmarks never reach. This module reaches it on
//! purpose: tree/hashmap churn plus raw alloc/free/defer traffic runs with
//! a seeded [`FaultInjector`] failing slab grows and stalling grace-period
//! advances, while a dedicated thread keeps pinning read-side critical
//! sections so reclamation is starved even as `free_deferred` traffic
//! continues. At the end the harness checks, for either allocator:
//!
//! * every injected fault surfaced as an `Err` or was absorbed by a
//!   documented recovery path — never a panic (`parking_lot` locks cannot
//!   poison, and the run counts worker panics directly);
//! * no object was handed out twice while live (a double merge of latent
//!   caches would mint duplicates);
//! * after quiesce, `deferred_outstanding == 0` and no live objects remain;
//! * the page allocator's `limit_bytes` was never exceeded (`peak <=
//!   limit`, guaranteed by the compare-exchange reserve) and `used_bytes`
//!   returns to zero once the caches are dropped.
//!
//! Runs are replayable: all fault decisions derive from the seed, so a
//! failing seed can be handed to `--bin chaos` and reproduced.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pbs_alloc_api::{fastpath_default_engine, FastPathEngine, ObjPtr};
use pbs_fault::{site, FaultInjector, Schedule};
use pbs_rcu::reclaim::{ReclaimBackend, ReclaimConfig, ReclaimStats};
use pbs_rcu::RcuConfig;
use pbs_slub::SlubTuning;
use pbs_structs::{RcuBst, RcuHashMap};
use prudence::PrudenceConfig;

use crate::{AllocatorKind, Testbed};

/// Which stress profile a chaos run applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Balanced churn with moderate fault rates (the original harness).
    Mixed,
    /// Reader pins held far past the (lowered) stall threshold: the
    /// watchdog must warn at least once, and the backlog must still drain
    /// to zero at quiesce.
    StalledReader,
    /// Defer-heavy traffic against a tight memory budget with aggressive
    /// grow faults: allocations must climb the recovery ladder and at
    /// least one must be rescued by a ladder stage rather than fail.
    OomStorm,
    /// A toggler thread flips the per-CPU fast path (disable-with-drain,
    /// re-enable, engine switch, engine restore) continuously under
    /// churn: every switchover must stay leak-free and every quiesce
    /// invariant must still hold at the end.
    FastpathFlap,
    /// The sharded server scenario
    /// ([`run_server`](crate::apps::run_server)) as a chaos leg: a DoS
    /// burst plus a parked reactor shard, gated on shed-not-panic,
    /// deadline eviction, the stalled-reader garbage bound and post-storm
    /// recovery.
    ServerStorm,
}

impl ChaosScenario {
    /// Every scenario, in the order the gating matrix runs them.
    pub const ALL: [ChaosScenario; 5] = [
        ChaosScenario::Mixed,
        ChaosScenario::StalledReader,
        ChaosScenario::OomStorm,
        ChaosScenario::FastpathFlap,
        ChaosScenario::ServerStorm,
    ];

    /// CLI / report label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosScenario::Mixed => "mixed",
            ChaosScenario::StalledReader => "stalled-reader",
            ChaosScenario::OomStorm => "oom-storm",
            ChaosScenario::FastpathFlap => "fastpath-flap",
            ChaosScenario::ServerStorm => "server-storm",
        }
    }
}

impl std::fmt::Display for ChaosScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ChaosScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mixed" => Ok(ChaosScenario::Mixed),
            "stalled-reader" => Ok(ChaosScenario::StalledReader),
            "oom-storm" => Ok(ChaosScenario::OomStorm),
            "fastpath-flap" => Ok(ChaosScenario::FastpathFlap),
            "server-storm" => Ok(ChaosScenario::ServerStorm),
            other => Err(format!(
                "unknown scenario {other:?} (expected mixed, stalled-reader, oom-storm, \
                 fastpath-flap or server-storm)"
            )),
        }
    }
}

/// Parameters for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Worker threads (also the testbed CPU-slot count).
    pub threads: usize,
    /// Operations per worker (ignored when [`duration`](Self::duration)
    /// is set).
    pub ops_per_thread: u64,
    /// Key range for the tree/hashmap churn.
    pub keys: u64,
    /// Seed for both the fault injector and every worker RNG.
    pub seed: u64,
    /// Hard memory limit for the run.
    pub limit_bytes: usize,
    /// Probability of an injected OOM per slab-grow attempt.
    pub grow_fault_p: f64,
    /// Probability of an injected stall per grace-period-advance attempt.
    pub stall_fault_p: f64,
    /// Stress profile; tunes the reader-stall length, op mix, pressure
    /// watermarks and the scenario's extra invariants.
    pub scenario: ChaosScenario,
    /// Wall-clock run length. When set, workers run until the deadline
    /// instead of counting ops — scenarios that must outlast the stall
    /// threshold need real time, not an op budget.
    pub duration: Option<Duration>,
    /// Reclamation backend override; `None` honours `PBS_RECLAIM` (so the
    /// CI matrix switches the whole harness with one variable).
    pub reclaim: Option<ReclaimBackend>,
    /// Stalled-reader scenario: the garbage bound the robust backends
    /// must hold while a reader stays pinned. The epoch backend must
    /// *exceed* it in the same position — that unbounded growth is the
    /// documented bug the robust backends exist to bound, and the probe
    /// fails the run if either side of the contrast goes missing.
    pub garbage_bound: usize,
    /// Start a live doctor endpoint for the run and smoke-test it
    /// mid-run: `/metrics` must validate and, for stalled-reader runs,
    /// `/doctor` must name the staller thread while it is pinned.
    pub doctor: bool,
    /// Server-storm scenario: target concurrent connections (ignored by
    /// the other scenarios).
    pub connections: usize,
}

impl Default for ChaosParams {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 4_000,
            keys: 128,
            seed: 1,
            limit_bytes: 8 << 20,
            grow_fault_p: 0.05,
            stall_fault_p: 0.10,
            scenario: ChaosScenario::Mixed,
            duration: None,
            reclaim: None,
            garbage_bound: 256,
            doctor: false,
            connections: 10_000,
        }
    }
}

impl ChaosParams {
    /// Default parameters tuned for a scenario: stalled-reader and
    /// oom-storm runs are time-bounded (they need to outlast stall
    /// thresholds and grace periods), and the storm tightens the budget
    /// while raising the grow-fault rate.
    pub fn for_scenario(scenario: ChaosScenario) -> Self {
        let base = Self::default();
        match scenario {
            ChaosScenario::Mixed => base,
            ChaosScenario::StalledReader => Self {
                scenario,
                stall_fault_p: 0.20,
                duration: Some(Duration::from_millis(150)),
                ..base
            },
            ChaosScenario::OomStorm => Self {
                scenario,
                grow_fault_p: 0.25,
                // Just below the churn's natural working set (~104 KiB at
                // these thread counts), so slab grows keep colliding with
                // the limit while deferred objects are pinned.
                limit_bytes: 96 << 10,
                duration: Some(Duration::from_millis(150)),
                ..base
            },
            // Time-bounded so the toggler gets enough wall clock to cycle
            // through all four flap states many times under live traffic.
            ChaosScenario::FastpathFlap => Self {
                scenario,
                duration: Some(Duration::from_millis(150)),
                ..base
            },
            // The server scenario manages its own phases, faults and
            // memory; the chaos-level limit is disabled (0 = uncapped)
            // and the garbage bound sized to a connection population
            // rather than the micro-churn probe. The micro-harness grow
            // faults are off by default: their retry backoff throttles
            // storm churn enough to erase the epoch side of the garbage
            // contrast (the retry ladder has its own scenario and unit
            // coverage), though `--grow-p` can still force them.
            ChaosScenario::ServerStorm => Self {
                scenario,
                limit_bytes: 0,
                grow_fault_p: 0.0,
                garbage_bound: 4_096,
                ..base
            },
        }
    }
}

/// Outcome of one chaos run; `violations` is empty iff every invariant
/// held.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Allocator label.
    pub allocator: String,
    /// Scenario label.
    pub scenario: String,
    /// Reclamation backend label (`epoch`, `hp` or `hyaline`).
    pub reclaim_backend: String,
    /// The seed the run (and any replay) used.
    pub seed: u64,
    /// Operations completed across all workers.
    pub ops_completed: u64,
    /// `AllocError` results observed by workers (limit OOMs + injected).
    pub oom_errors: u64,
    /// Faults injected at the slab-grow sites.
    pub injected_oom: u64,
    /// Grace-period advances refused by injection.
    pub injected_gp_stalls: u64,
    /// Worker panics (must be zero).
    pub panics: u64,
    /// Peak page-allocator usage during the run.
    pub peak_bytes: usize,
    /// The hard limit in force.
    pub limit_bytes: usize,
    /// `deferred_outstanding` across caches after quiesce (must be zero).
    pub deferred_outstanding_end: usize,
    /// Page-allocator bytes still out after caches were dropped (must be
    /// zero — the baseline the run must return to).
    pub used_bytes_after_teardown: usize,
    /// Grace-period advances that used the membarrier protocol.
    pub membarrier_advances: u64,
    /// Grace-period advances that used the fallback-fence protocol.
    pub fallback_fence_advances: u64,
    /// RCU stall-watchdog warnings raised during the run.
    pub stall_warnings: u64,
    /// Expedited grace-period requests (ladder stage 2 + backpressure).
    pub expedited_gps: u64,
    /// Allocations rescued by a recovery-ladder stage across all caches.
    pub ladder_recoveries: u64,
    /// Pressure-level transitions across all caches.
    pub pressure_transitions: u64,
    /// Per-CPU fast-path hits (alloc + free) across all caches.
    pub fastpath_hits: u64,
    /// Fast-path operations that bounced to the slow path across all
    /// caches (empty/full slots, disabled windows, engine switches).
    pub fastpath_fallbacks: u64,
    /// Fast-path state changes the flap toggler performed (0 outside the
    /// fastpath-flap scenario).
    pub fastpath_flips: u64,
    /// Stalled-reader scenario: deferred objects still outstanding on the
    /// probe cache while a reader stayed pinned (`None` outside that
    /// scenario). Robust backends must keep this at or below
    /// [`stalled_garbage_bound`](Self::stalled_garbage_bound); the epoch
    /// backend must exceed it — its unbounded growth under a stalled
    /// reader is the failure mode the comparison matrix documents.
    pub stalled_garbage_observed: Option<usize>,
    /// The bound the probe held the robust backends to.
    pub stalled_garbage_bound: usize,
    /// Stall-blame records captured during the run: who wedged
    /// reclamation, for how long. Stalled-reader runs must contain at
    /// least one record naming the dedicated staller thread.
    pub blame: Vec<pbs_rcu::BlameReport>,
    /// The shared reclamation domain's backend counters at the end of the
    /// run (scans, seals, captures, ejections, injected refusals).
    pub reclaim: ReclaimStats,
    /// Invariant violations; empty on a passing run.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs.
    pub fn render(&self) -> String {
        let garbage = match self.stalled_garbage_observed {
            Some(observed) => format!(
                ", stalled garbage {observed}/{} bound",
                self.stalled_garbage_bound
            ),
            None => String::new(),
        };
        format!(
            "chaos[{} {} {} seed={}]: {} ops, {} ooms ({} injected), {} gp stalls, \
             {} warns, {} expedited, {} rescued, fastpath {}h/{}f/{} flips, \
             peak {}/{} KiB, {} panics{garbage} — {}",
            self.allocator,
            self.scenario,
            self.reclaim_backend,
            self.seed,
            self.ops_completed,
            self.oom_errors,
            self.injected_oom,
            self.injected_gp_stalls,
            self.stall_warnings,
            self.expedited_gps,
            self.ladder_recoveries,
            self.fastpath_hits,
            self.fastpath_fallbacks,
            self.fastpath_flips,
            self.peak_bytes >> 10,
            self.limit_bytes >> 10,
            self.panics,
            if self.passed() { "OK" } else { "FAILED" },
        )
    }

    /// One-line command reproducing this run (same seed, scenario and
    /// allocator drive the same fault plan); printed whenever an
    /// invariant fails so the failure can be replayed directly.
    pub fn replay_command(&self) -> String {
        format!(
            "cargo run --release -p pbs-workloads --bin chaos -- \
             --scenario {} --seed {} --allocator {} --reclaim {}",
            self.scenario, self.seed, self.allocator, self.reclaim_backend
        )
    }
}

/// Per-worker tally, merged into the report after the join.
#[derive(Debug, Default)]
struct WorkerTally {
    ops: u64,
    ooms: u64,
    violations: Vec<String>,
}

/// The server-storm leg: delegates to the sharded server scenario and
/// folds its [`ServerReport`](crate::apps::ServerReport) into the chaos
/// report shape, so the same runner, seed plumbing and replay flow cover
/// it. The epoch contrast is required — in the chaos matrix the epoch
/// backend exceeding the garbage bound under the parked shard is as
/// load-bearing as the robust backends holding it.
fn run_server_storm(kind: AllocatorKind, params: &ChaosParams) -> ChaosReport {
    let server_params = crate::apps::ServerParams {
        connections: params.connections,
        seed: params.seed,
        grow_fault_p: params.grow_fault_p,
        reclaim: params.reclaim,
        garbage_bound: params.garbage_bound,
        limit_bytes: (params.limit_bytes > 0).then_some(params.limit_bytes),
        require_epoch_contrast: true,
        ..crate::apps::ServerParams::default()
    }
    .scaled_for_population();
    let report = crate::apps::run_server(kind, &server_params);
    ChaosReport {
        allocator: report.allocator,
        scenario: ChaosScenario::ServerStorm.label().to_owned(),
        reclaim_backend: report.reclaim_backend,
        seed: report.seed,
        ops_completed: report.totals.requests,
        oom_errors: report.totals.alloc_retries + report.totals.alloc_drops,
        injected_oom: report.injected_oom,
        injected_gp_stalls: 0,
        panics: report.panics,
        peak_bytes: report.peak_bytes,
        limit_bytes: params.limit_bytes,
        deferred_outstanding_end: report.deferred_outstanding_end,
        used_bytes_after_teardown: report.used_bytes_after_teardown,
        membarrier_advances: report.membarrier_advances,
        fallback_fence_advances: report.fallback_fence_advances,
        stall_warnings: report.stall_warnings,
        expedited_gps: report.expedited_gps,
        ladder_recoveries: 0,
        pressure_transitions: 0,
        fastpath_hits: 0,
        fastpath_fallbacks: 0,
        fastpath_flips: 0,
        stalled_garbage_observed: report
            .stalled_shard
            .then_some(report.max_garbage_storm),
        stalled_garbage_bound: report.garbage_bound,
        blame: report.blame,
        reclaim: report.reclaim,
        violations: report.violations,
    }
}

/// Runs the chaos workload on one allocator and checks every invariant.
pub fn run_chaos(kind: AllocatorKind, params: &ChaosParams) -> ChaosReport {
    if params.scenario == ChaosScenario::ServerStorm {
        return run_server_storm(kind, params);
    }
    let faults = Arc::new(FaultInjector::new(params.seed));
    let grow_site = match kind {
        AllocatorKind::Slub => site::SLUB_GROW,
        AllocatorKind::Prudence => site::PRUDENCE_GROW,
    };
    faults.schedule(grow_site, Schedule::Probability(params.grow_fault_p));
    faults.schedule(site::RCU_ADVANCE, Schedule::Probability(params.stall_fault_p));
    // The generalized reclamation site: HP scans and Hyaline seals consult
    // it, and the epoch grace-period advance honours it alongside its
    // legacy site — so the same stall probability starves every backend.
    faults.schedule(
        site::RECLAIM_ADVANCE,
        Schedule::Probability(params.stall_fault_p),
    );

    let backend = params.reclaim.unwrap_or_else(ReclaimBackend::from_env);
    // Robust backends reclaim while readers stay pinned. The structure
    // walks run under every backend — lookups and for_each go through the
    // protected-traversal layer (hazard-published under hp, checkpointed
    // under hyaline), so the op mix below is identical across backends.
    let robust = backend != ReclaimBackend::Epoch;
    let reclaim_config = if robust {
        // Small batches / low scan thresholds and a short ejection fuse:
        // chaos runs are ~150 ms, so the garbage bound must be reachable
        // within a few milliseconds of stall.
        ReclaimConfig::aggressive()
    } else {
        ReclaimConfig::default()
    };

    // Scenario knobs. The stalled-reader run lowers the watchdog threshold
    // below its pin pulses so warnings are reachable in a short run; the
    // storm lowers the pressure watermarks into the run's backlog range so
    // the governor (expedite, caller-assisted reclaim) engages.
    let mut rcu_config = RcuConfig::eager();
    let mut staller_hold = Duration::from_millis(2);
    let mut slub_tuning = None;
    let mut prudence_config = None;
    match params.scenario {
        // ServerStorm never reaches here (it returned above); it carries
        // no knobs for the micro-churn harness.
        ChaosScenario::Mixed | ChaosScenario::FastpathFlap | ChaosScenario::ServerStorm => {}
        ChaosScenario::StalledReader => {
            rcu_config = rcu_config.with_stall_threshold(Duration::from_millis(2));
            staller_hold = Duration::from_millis(8);
        }
        ChaosScenario::OomStorm => {
            // Longer pins keep the deferred bursts pinned long enough for
            // grows to collide with the budget; the ladder's expedited
            // drain then succeeds as soon as a pin releases.
            staller_hold = Duration::from_millis(4);
            slub_tuning = Some(SlubTuning {
                soft_watermark: 64,
                hard_watermark: 256,
                ..SlubTuning::default()
            });
            prudence_config = Some(PrudenceConfig::new(params.threads).with_watermarks(64, 256));
        }
    }

    // Arc-wrapped so the doctor endpoint's provider closure can snapshot
    // the bed from its own thread while the run is live.
    let bed = Arc::new(Testbed::new_tuned(
        kind,
        params.threads,
        rcu_config,
        Some(params.limit_bytes),
        Some(Arc::clone(&faults)),
        slub_tuning,
        prudence_config,
        Some((backend, reclaim_config)),
    ));
    let node_cache = bed.create_cache("chaos_node", 64);
    let obj_cache = bed.create_cache("chaos_obj", 128);
    // Large-object cache only the storm's burst arm touches: 32-object
    // bursts of 512 B are 16 KiB each, so a handful of pinned bursts are
    // guaranteed to drive slab grows into the storm's tight budget.
    let storm_cache = bed.create_cache("chaos_storm", 512);

    // Live-object registry shared by all workers: allocate must never hand
    // out an address that another holder still owns (a latent-cache double
    // merge would do exactly that).
    let live: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));

    let mut violations: Vec<String> = Vec::new();
    let mut ops_completed = 0u64;
    let mut oom_errors = 0u64;
    let mut panics = 0u64;

    let stop_staller = Arc::new(AtomicBool::new(false));
    let mut fastpath_flips = 0u64;
    let doctor_server = if params.doctor {
        let provider_bed = Arc::clone(&bed);
        match crate::doctor::DoctorServer::start(move || provider_bed.telemetry()) {
            Ok(server) => Some(server),
            Err(e) => {
                violations.push(format!("doctor endpoint failed to start: {e}"));
                None
            }
        }
    } else {
        None
    };
    std::thread::scope(|s| {
        // Fast-path flapper: cycles every cache through
        // disable(+drain) → enable → portable engine → default engine
        // while the workers churn, so every switchover direction runs
        // against live traffic. Ends by restoring the enabled/default
        // state so the quiesce invariants check a healthy fast path.
        let flapper = (params.scenario == ChaosScenario::FastpathFlap).then(|| {
            let caches = [
                Arc::clone(&node_cache),
                Arc::clone(&obj_cache),
                Arc::clone(&storm_cache),
            ];
            let stop = Arc::clone(&stop_staller);
            s.spawn(move || {
                let mut flips = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for cache in &caches {
                        match i % 4 {
                            0 => cache.fastpath_set_enabled(false),
                            1 => cache.fastpath_set_enabled(true),
                            2 => cache.fastpath_set_engine(FastPathEngine::Locks),
                            _ => cache.fastpath_set_engine(fastpath_default_engine()),
                        }
                        flips += 1;
                    }
                    i += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                for cache in &caches {
                    cache.fastpath_set_engine(fastpath_default_engine());
                    cache.fastpath_set_enabled(true);
                    flips += 2;
                }
                flips
            })
        });
        // Stalled reader: pins read-side critical sections in long pulses,
        // starving grace-period advance while free_deferred traffic from
        // the workers keeps arriving. Pulses (not one endless pin) keep the
        // run's quiesce reachable.
        let staller = {
            let rcu = Arc::clone(bed.rcu());
            let stop = Arc::clone(&stop_staller);
            // Named so the watchdog's blame report (which captures the
            // registering thread's name) can identify the culprit.
            std::thread::Builder::new()
                .name("chaos-staller".to_owned())
                .spawn_scoped(s, move || {
                    let reader = rcu.register();
                    while !stop.load(Ordering::Relaxed) {
                        let guard = reader.read_lock();
                        std::thread::sleep(staller_hold);
                        drop(guard);
                        std::thread::yield_now();
                    }
                })
                .expect("spawn chaos-staller")
        };
        // Doctor smoke: scrape the live endpoint mid-run. `/metrics` must
        // validate against the schema; for stalled-reader runs `/doctor`
        // must name the pinned staller thread while the stall is live.
        let smoke = doctor_server.as_ref().map(|server| {
            let addr = server.addr();
            let scenario = params.scenario;
            s.spawn(move || {
                let mut problems: Vec<String> = Vec::new();
                let mut named = scenario != ChaosScenario::StalledReader;
                let mut last_err = None;
                for _ in 0..10 {
                    std::thread::sleep(Duration::from_millis(10));
                    match crate::doctor::http_get(addr, "/doctor") {
                        Ok(body) => {
                            last_err = None;
                            if body.contains("chaos-staller") {
                                named = true;
                            }
                        }
                        Err(e) => last_err = Some(e),
                    }
                    if named {
                        break;
                    }
                }
                if let Some(e) = last_err {
                    problems.push(format!("doctor smoke: GET /doctor failed: {e}"));
                } else if !named {
                    problems.push(
                        "doctor smoke: /doctor never named chaos-staller during the stall"
                            .to_owned(),
                    );
                }
                match crate::doctor::http_get(addr, "/metrics") {
                    Ok(body) => {
                        if let Err(e) = crate::telemetry_export::validate_prometheus(&body) {
                            problems
                                .push(format!("doctor smoke: /metrics failed validation: {e}"));
                        }
                    }
                    Err(e) => problems.push(format!("doctor smoke: GET /metrics failed: {e}")),
                }
                problems
            })
        });

        let workers: Vec<_> = (0..params.threads)
            .map(|tid| {
                let node_cache = Arc::clone(&node_cache);
                let obj_cache = Arc::clone(&obj_cache);
                let storm_cache = Arc::clone(&storm_cache);
                let live = Arc::clone(&live);
                let rcu = Arc::clone(bed.rcu());
                let params = params.clone();
                s.spawn(move || {
                    let mut tally = WorkerTally::default();
                    let mut rng = StdRng::seed_from_u64(params.seed ^ (tid as u64) << 32);
                    let reader = rcu.register();
                    let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&node_cache));
                    let map: RcuHashMap<u64, u64> = RcuHashMap::new(node_cache, 32);
                    let mut held: Vec<ObjPtr> = Vec::new();
                    // A set duration defines the run length (time-bounded
                    // scenarios); otherwise the op budget does.
                    let deadline = params.duration.map(|d| Instant::now() + d);
                    let mut i = 0u64;
                    loop {
                        match deadline {
                            Some(dl) => {
                                if Instant::now() >= dl {
                                    break;
                                }
                            }
                            None => {
                                if i >= params.ops_per_thread {
                                    break;
                                }
                            }
                        }
                        i += 1;
                        tally.ops += 1;
                        let roll = rng.gen_range(0..10u32);
                        // The storm replaces most of the mix with burst
                        // defers (arm 10): each one drains the CPU cache
                        // and leaves a guaranteed deferred backlog, so
                        // refill failures land while the ladder has
                        // something to rescue.
                        let roll = if params.scenario == ChaosScenario::OomStorm {
                            match roll {
                                0..=4 => 10, // burst defer
                                5..=6 => 6,  // tree churn
                                7..=8 => 0,  // allocate and hold
                                _ => 9,      // read-side traversal
                            }
                        } else {
                            roll
                        };
                        match roll {
                            // Raw allocation, held for later free/defer.
                            0..=2 => match obj_cache.allocate() {
                                Ok(obj) => {
                                    if !live.lock().insert(obj.addr()) {
                                        tally.violations.push(format!(
                                            "double handout of {:#x} (latent double merge?)",
                                            obj.addr()
                                        ));
                                    }
                                    held.push(obj);
                                }
                                Err(_) => tally.ooms += 1,
                            },
                            // Immediate free.
                            3 => {
                                if let Some(obj) = held.pop() {
                                    live.lock().remove(&obj.addr());
                                    unsafe { obj_cache.free(obj) };
                                }
                            }
                            // Deferred free — the traffic that must keep
                            // flowing while readers stall reclamation.
                            4..=5 => {
                                if !held.is_empty() {
                                    let obj = held.swap_remove(rng.gen_range(0..held.len()));
                                    live.lock().remove(&obj.addr());
                                    unsafe { obj_cache.free_deferred(obj) };
                                }
                            }
                            // Tree churn: multi-deferral amplification.
                            6..=7 => {
                                let k = rng.gen_range(0..params.keys);
                                tree.remove(k);
                                if tree.insert(k, i).is_err() {
                                    tally.ooms += 1;
                                }
                            }
                            // Hashmap churn.
                            8 => {
                                let k = rng.gen_range(0..params.keys);
                                map.remove(&k);
                                if map.insert(k, i).is_err() {
                                    tally.ooms += 1;
                                }
                            }
                            // Burst defer (storm only): allocate a burst,
                            // then defer every object. Drains the CPU
                            // cache so the next refill really hits the
                            // node lists, and leaves a deferred backlog
                            // for the recovery ladder to rescue.
                            10 => {
                                let mut burst: Vec<ObjPtr> = Vec::with_capacity(32);
                                for _ in 0..32 {
                                    match storm_cache.allocate() {
                                        Ok(obj) => {
                                            if !live.lock().insert(obj.addr()) {
                                                tally.violations.push(format!(
                                                    "double handout of {:#x} in burst",
                                                    obj.addr()
                                                ));
                                            }
                                            burst.push(obj);
                                        }
                                        Err(_) => {
                                            tally.ooms += 1;
                                            break;
                                        }
                                    }
                                }
                                for obj in burst {
                                    live.lock().remove(&obj.addr());
                                    unsafe { storm_cache.free_deferred(obj) };
                                }
                            }
                            // Read-side traversal. No allocation happens
                            // under the guard: an alloc could wait on a
                            // grace period this pin is blocking.
                            _ => {
                                let guard = reader.read_lock();
                                let k = rng.gen_range(0..params.keys);
                                let _ = tree.lookup(&guard, k);
                                let _ = map.get(&guard, &k);
                            }
                        }
                    }
                    for obj in held.drain(..) {
                        live.lock().remove(&obj.addr());
                        unsafe { obj_cache.free(obj) };
                    }
                    tally
                })
            })
            .collect();

        for worker in workers {
            match worker.join() {
                Ok(tally) => {
                    ops_completed += tally.ops;
                    oom_errors += tally.ooms;
                    violations.extend(tally.violations);
                }
                Err(_) => panics += 1,
            }
        }
        stop_staller.store(true, Ordering::Relaxed);
        if staller.join().is_err() {
            panics += 1;
        }
        if let Some(flapper) = flapper {
            match flapper.join() {
                Ok(flips) => fastpath_flips = flips,
                Err(_) => panics += 1,
            }
        }
        if let Some(smoke) = smoke {
            match smoke.join() {
                Ok(problems) => violations.extend(problems),
                Err(_) => panics += 1,
            }
        }
    });

    // Stalled-garbage probe (stalled-reader scenario only): allocate a
    // garbage mountain, pin a reader, defer everything under the pin, then
    // measure what the backend reclaimed *while the reader stayed pinned*.
    // Robust backends must hold `deferred_outstanding` at or below the
    // configured bound; the epoch backend must exceed it — if it doesn't,
    // the probe was inert and the unbounded-garbage failure mode the
    // matrix documents never reproduced, which is itself a violation.
    let mut stalled_garbage_observed = None;
    if params.scenario == ChaosScenario::StalledReader {
        let probe_cache = bed.create_cache("chaos_probe", 64);
        // Allocate before pinning: failed grows take recovery paths that
        // may wait on reclamation, which must not happen under our own pin.
        let target = params.garbage_bound * 4;
        let mut objs: Vec<ObjPtr> = Vec::with_capacity(target);
        let mut attempts = 0usize;
        while objs.len() < target && attempts < target * 8 {
            attempts += 1;
            match probe_cache.allocate() {
                Ok(obj) => objs.push(obj),
                Err(_) => oom_errors += 1,
            }
        }
        if objs.len() < params.garbage_bound * 2 {
            violations.push(format!(
                "stalled-garbage probe starved: allocated {} of {target} objects",
                objs.len()
            ));
            for obj in objs.drain(..) {
                unsafe { probe_cache.free(obj) };
            }
        } else {
            let reader = bed.rcu().register();
            let guard = reader.read_lock();
            let deferred = objs.len();
            for obj in objs.drain(..) {
                unsafe { probe_cache.free_deferred(obj) };
            }
            // Let ejection fuses burn down, then drive the domain. A
            // single advance is flaky under injected `reclaim.advance`
            // refusals (each refusal merely procrastinates), so insist.
            std::thread::sleep(Duration::from_millis(5));
            for _ in 0..8 {
                bed.reclaim_domain().advance();
            }
            let observed = probe_cache.deferred_outstanding();
            stalled_garbage_observed = Some(observed);
            if robust && observed > params.garbage_bound {
                violations.push(format!(
                    "{backend}: {observed} of {deferred} deferred objects outstanding \
                     under a stalled reader, bound is {}",
                    params.garbage_bound
                ));
            }
            if !robust && observed <= params.garbage_bound {
                violations.push(format!(
                    "epoch probe inert: only {observed} of {deferred} deferred objects \
                     were blocked by a stalled reader — the unbounded-garbage failure \
                     mode this matrix documents did not reproduce"
                ));
            }
            drop(guard);
        }
        probe_cache.quiesce();
        let left = probe_cache.deferred_outstanding();
        if left != 0 {
            violations.push(format!(
                "probe cache left {left} deferred objects after quiesce"
            ));
        }
    }

    // Lookup-gating probe (stalled-reader scenario only): the inverse of
    // the garbage probe above. There the reader merely pins; here it keeps
    // *traversing the structures* while the backend reclaims around it, so
    // hp scans and hyaline ejections land mid-walk. Gates: no lookup may
    // crash or return a stale hit for a key whose removal the reader has
    // already observed, sentinel entries must stay exact, and under
    // hyaline the walk layer must actually have absorbed an ejection
    // (otherwise the traversal contract was never exercised).
    if params.scenario == ChaosScenario::StalledReader {
        let probe_cache = bed.create_cache("chaos_walk_probe", 64);
        let tree: RcuBst<u64> = RcuBst::new(Arc::clone(&probe_cache));
        let map: RcuHashMap<u64, u64> = RcuHashMap::new(Arc::clone(&probe_cache), 8);
        // Seeding races the injected grow faults; a failed insert leaves
        // the structure unchanged, so retry before calling it starved.
        let mut seeded = true;
        for k in 0..16u64 {
            let mut in_tree = false;
            let mut in_map = false;
            for _ in 0..8 {
                in_tree = in_tree || tree.insert(k, k * 7).is_ok();
                in_map = in_map || map.insert(k, k * 11).is_ok();
                if in_tree && in_map {
                    break;
                }
            }
            seeded &= in_tree && in_map;
        }
        if !seeded {
            violations.push("walk probe starved: could not seed sentinel keys".into());
        } else {
            const REMOVED_KEY: u64 = 8;
            // Allocate the garbage mountain up front: a failed grow climbs
            // recovery ladders that may wait on reclamation, which must
            // never happen while our own walker keeps the domain pinned
            // (same rule as the garbage probe above).
            let mut garbage: Vec<ObjPtr> = Vec::with_capacity(512);
            while garbage.len() < 512 {
                match probe_cache.allocate() {
                    Ok(obj) => garbage.push(obj),
                    Err(_) => {
                        oom_errors += 1;
                        break;
                    }
                }
            }
            let removed = AtomicBool::new(false);
            let stop = AtomicBool::new(false);
            let ejections_before = bed.reclaim_stats().ejections;
            let mut walk_report = (0u64, Vec::new());
            std::thread::scope(|s| {
                let worker = s.spawn(|| {
                    let reader = bed.rcu().register();
                    // One pin held across every walk: exactly the stalled
                    // reader the robust backends reclaim around.
                    let guard = reader.read_lock();
                    let mut validate_losses = 0u64;
                    let mut problems = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let saw_removal = removed.load(Ordering::Acquire);
                        for k in 0..16u64 {
                            let t_hit = tree.lookup(&guard, k);
                            let m_hit = map.get(&guard, &k);
                            if k == REMOVED_KEY {
                                if saw_removal && (t_hit.is_some() || m_hit.is_some()) {
                                    problems.push(format!(
                                        "walk probe: key {k} visible after its removal \
                                         was published (tree {t_hit:?}, map {m_hit:?})"
                                    ));
                                }
                            } else if t_hit != Some(k * 7) || m_hit != Some(k * 11) {
                                problems.push(format!(
                                    "walk probe: sentinel {k} corrupted \
                                     (tree {t_hit:?}, map {m_hit:?})"
                                ));
                            }
                        }
                        if !guard.validate() {
                            validate_losses += 1;
                        }
                    }
                    drop(guard);
                    (validate_losses, problems)
                });
                // Let the reader spin up, publish the removal, then bury
                // the domain in deferred garbage so scans and seals run
                // against the still-pinned, still-walking reader.
                std::thread::sleep(Duration::from_millis(1));
                tree.remove(REMOVED_KEY);
                map.remove(&REMOVED_KEY);
                removed.store(true, Ordering::Release);
                let deadline = Instant::now() + Duration::from_millis(15);
                while Instant::now() < deadline {
                    for _ in 0..8 {
                        if let Some(obj) = garbage.pop() {
                            unsafe { probe_cache.free_deferred(obj) };
                        }
                    }
                    bed.reclaim_domain().advance();
                    std::thread::sleep(Duration::from_micros(200));
                }
                for obj in garbage.drain(..) {
                    unsafe { probe_cache.free_deferred(obj) };
                }
                stop.store(true, Ordering::Release);
                match worker.join() {
                    Ok(report) => walk_report = report,
                    Err(_) => violations.push("walk probe reader panicked".into()),
                }
            });
            let (validate_losses, problems) = walk_report;
            violations.extend(problems);
            if backend == ReclaimBackend::Hyaline {
                let ejected = bed.reclaim_stats().ejections - ejections_before;
                if ejected == 0 {
                    violations.push(
                        "walk probe inert: hyaline never ejected the traversing reader"
                            .into(),
                    );
                } else if validate_losses == 0 {
                    violations.push(format!(
                        "walk probe: {ejected} ejections but the traversing guard \
                         never reported validate() == false"
                    ));
                }
            }
        }
        // Free the sentinel nodes, then drain the probe's deferred traffic
        // (the staller is gone and the walker's pin is released).
        drop(tree);
        drop(map);
        probe_cache.quiesce();
        let left = probe_cache.deferred_outstanding();
        if left != 0 {
            violations.push(format!(
                "walk probe cache left {left} deferred objects after quiesce"
            ));
        }
    }

    // Quiesce with the staller gone: every deferred object must drain.
    node_cache.quiesce();
    obj_cache.quiesce();
    storm_cache.quiesce();
    let deferred_outstanding_end = node_cache.deferred_outstanding()
        + obj_cache.deferred_outstanding()
        + storm_cache.deferred_outstanding();
    if deferred_outstanding_end != 0 {
        violations.push(format!(
            "deferred_outstanding {deferred_outstanding_end} != 0 after quiesce"
        ));
    }
    for cache in [&node_cache, &obj_cache, &storm_cache] {
        let stats = cache.stats();
        if stats.live_objects != 0 {
            violations.push(format!(
                "{}: {} live objects after teardown",
                cache.name(),
                stats.live_objects
            ));
        }
    }
    if !live.lock().is_empty() {
        violations.push(format!(
            "{} addresses still marked live after frees",
            live.lock().len()
        ));
    }
    if panics != 0 {
        violations.push(format!("{panics} worker panics"));
    }

    let peak_bytes = bed.pages().peak_bytes();
    if peak_bytes > params.limit_bytes {
        violations.push(format!(
            "hard limit exceeded: peak {} > limit {}",
            peak_bytes, params.limit_bytes
        ));
    }
    // The background grace-period driver keeps consulting the injector
    // while we read, so the two counters can't be compared for equality.
    // Domains bump their stat strictly *after* the injector records the
    // hit, so sampling stats first guarantees stats <= injector. Stall
    // refusals now land at two sites — the epoch advance consults both
    // `rcu.advance` and `reclaim.advance`, and the robust backends' scans
    // and seals consult `reclaim.advance` — so both sides are summed.
    let rcu_stats = bed.rcu().stats();
    let reclaim_stats = bed.reclaim_stats();
    let blame = bed.rcu().blame_reports();
    let injected_oom = faults.injected(grow_site);
    // The epoch domain *mirrors* the RCU stall counter into its
    // `injected_stalls`, so adding the two would double-count; only the
    // robust backends refuse scans/seals on their own behalf.
    let stall_stats = if robust {
        rcu_stats.injected_gp_stalls + reclaim_stats.injected_stalls
    } else {
        rcu_stats.injected_gp_stalls
    };
    let stall_injected =
        faults.injected(site::RCU_ADVANCE) + faults.injected(site::RECLAIM_ADVANCE);
    if stall_stats > stall_injected {
        violations.push(format!(
            "stall accounting disagrees: stats {stall_stats} > injector {stall_injected}"
        ));
    }
    // Every injected OOM must be observable: either a worker saw the Err,
    // or an allocator recovery path (partial refill, emergency reclaim of
    // deferred objects) absorbed it — in which case the allocator performed
    // extra refill work we can't biject to faults. What is *never* allowed
    // is a panic, which is counted above.
    if injected_oom > 0 && oom_errors == 0 {
        let stats = node_cache.stats();
        let absorbed = stats.refills + obj_cache.stats().refills;
        if absorbed == 0 {
            violations.push(format!(
                "{injected_oom} injected OOMs left no trace (no Err, no refill activity)"
            ));
        }
    }

    // Degradation counters plus the scenarios' extra invariants: a
    // stalled-reader run that never tripped the watchdog, or a storm that
    // never rescued an allocation through the ladder, means the machinery
    // under test did not engage.
    let node_stats = node_cache.stats();
    let obj_stats = obj_cache.stats();
    let storm_stats = storm_cache.stats();
    let ladder_recoveries = node_stats.oom_recoveries_total()
        + obj_stats.oom_recoveries_total()
        + storm_stats.oom_recoveries_total();
    let pressure_transitions = node_stats.pressure_transitions
        + obj_stats.pressure_transitions
        + storm_stats.pressure_transitions;
    let fastpath_hits = node_stats.rseq_hits + obj_stats.rseq_hits + storm_stats.rseq_hits;
    let fastpath_fallbacks = node_stats.fastpath_fallbacks
        + obj_stats.fastpath_fallbacks
        + storm_stats.fastpath_fallbacks;
    match params.scenario {
        ChaosScenario::Mixed | ChaosScenario::ServerStorm => {}
        ChaosScenario::StalledReader => {
            if rcu_stats.stall_warnings == 0 {
                violations.push("stalled-reader: watchdog never warned".into());
            }
            // The blame subsystem must have identified the parked reader:
            // at least one record naming the staller thread, with a
            // nonzero measured pin duration.
            match blame
                .iter()
                .filter(|b| b.thread_name == "chaos-staller")
                .max_by_key(|b| b.stalled_for_ns)
            {
                None => violations
                    .push("stalled-reader: no blame record names chaos-staller".into()),
                Some(b) if b.stalled_for_ns == 0 => violations.push(
                    "stalled-reader: chaos-staller blamed with zero pin duration".into(),
                ),
                Some(_) => {}
            }
        }
        ChaosScenario::OomStorm => {
            if ladder_recoveries == 0 {
                violations.push("oom-storm: no allocation recovered via a ladder stage".into());
            }
        }
        ChaosScenario::FastpathFlap => {
            if fastpath_flips == 0 {
                violations.push("fastpath-flap: toggler never flipped".into());
            }
            // Flapping must leave evidence: during disabled/switching
            // windows operations bounce (fallbacks), during enabled
            // windows they hit. A run where neither moved means the flap
            // never raced live traffic.
            if fastpath_hits + fastpath_fallbacks == 0 {
                violations.push("fastpath-flap: fast path saw no traffic".into());
            }
            for (cache, stats) in [
                (&node_cache, &node_stats),
                (&obj_cache, &obj_stats),
                (&storm_cache, &storm_stats),
            ] {
                if !cache.fastpath_enabled() {
                    violations.push(format!(
                        "fastpath-flap: {} ended with the fast path disabled",
                        cache.name()
                    ));
                }
                // A quiesced cache has drained its fast slots: nothing
                // parked may survive into the post-quiesce accounting
                // (live_objects == 0 is asserted above for every run).
                if stats.live_objects != 0 {
                    violations.push(format!(
                        "fastpath-flap: {} holds parked objects after quiesce",
                        cache.name()
                    ));
                }
            }
        }
    }

    // Baseline check: drop the caches and every page must come home.
    drop(node_cache);
    drop(obj_cache);
    drop(storm_cache);
    let used_bytes_after_teardown = bed.pages().used_bytes();
    if used_bytes_after_teardown != 0 {
        violations.push(format!(
            "{used_bytes_after_teardown} bytes leaked after cache teardown"
        ));
    }

    ChaosReport {
        allocator: kind.label().to_owned(),
        scenario: params.scenario.label().to_owned(),
        reclaim_backend: backend.label().to_owned(),
        seed: params.seed,
        ops_completed,
        oom_errors,
        injected_oom,
        injected_gp_stalls: rcu_stats.injected_gp_stalls,
        panics,
        peak_bytes,
        limit_bytes: params.limit_bytes,
        deferred_outstanding_end,
        used_bytes_after_teardown,
        membarrier_advances: rcu_stats.membarrier_advances,
        fallback_fence_advances: rcu_stats.fallback_fence_advances,
        stall_warnings: rcu_stats.stall_warnings,
        expedited_gps: rcu_stats.expedited_gps,
        ladder_recoveries,
        pressure_transitions,
        fastpath_hits,
        fastpath_fallbacks,
        fastpath_flips,
        stalled_garbage_observed,
        stalled_garbage_bound: params.garbage_bound,
        blame,
        reclaim: reclaim_stats,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_invariants_hold_for_both_allocators() {
        let params = ChaosParams {
            threads: 2,
            ops_per_thread: 1_500,
            seed: 7,
            ..ChaosParams::default()
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(report.passed(), "{}", report.render());
            assert!(report.ops_completed > 0);
            assert!(
                report.injected_gp_stalls > 0,
                "{kind}: stall schedule never fired"
            );
        }
    }

    #[test]
    fn injected_faults_surface_without_panicking() {
        // Aggressive fault rates: a third of grows fail, half of advances
        // stall. The run must still terminate cleanly with zero panics.
        let params = ChaosParams {
            threads: 2,
            ops_per_thread: 1_000,
            seed: 23,
            grow_fault_p: 0.33,
            stall_fault_p: 0.5,
            ..ChaosParams::default()
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(report.passed(), "{}", report.render());
            assert!(report.injected_oom > 0, "{kind}: grow faults never fired");
            assert_eq!(report.panics, 0);
        }
    }

    #[test]
    fn stalled_reader_scenario_trips_the_watchdog() {
        let params = ChaosParams {
            threads: 2,
            seed: 11,
            duration: Some(Duration::from_millis(80)),
            ..ChaosParams::for_scenario(ChaosScenario::StalledReader)
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(
                report.passed(),
                "{}\nreplay: {}",
                report.render(),
                report.replay_command()
            );
            assert!(report.stall_warnings >= 1, "{}", report.render());
            assert_eq!(report.deferred_outstanding_end, 0);
        }
    }

    #[test]
    fn oom_storm_scenario_recovers_via_ladder() {
        let params = ChaosParams {
            threads: 2,
            seed: 13,
            duration: Some(Duration::from_millis(80)),
            ..ChaosParams::for_scenario(ChaosScenario::OomStorm)
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(
                report.passed(),
                "{}\nreplay: {}",
                report.render(),
                report.replay_command()
            );
            assert!(report.ladder_recoveries >= 1, "{}", report.render());
            assert!(report.peak_bytes <= report.limit_bytes);
            assert_eq!(report.panics, 0);
        }
    }

    #[test]
    fn fastpath_flap_scenario_survives_switchovers() {
        let params = ChaosParams {
            threads: 2,
            seed: 17,
            duration: Some(Duration::from_millis(80)),
            ..ChaosParams::for_scenario(ChaosScenario::FastpathFlap)
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(
                report.passed(),
                "{}\nreplay: {}",
                report.render(),
                report.replay_command()
            );
            assert!(report.fastpath_flips >= 1, "{}", report.render());
            assert!(
                report.fastpath_hits + report.fastpath_fallbacks >= 1,
                "{}",
                report.render()
            );
            assert_eq!(report.deferred_outstanding_end, 0);
            assert_eq!(report.panics, 0);
        }
    }

    #[test]
    fn stalled_reader_garbage_bound_gates_every_backend() {
        // The comparison matrix's central gate: with a deliberately
        // stalled reader, hp and hyaline keep the probe's outstanding
        // garbage at or below the bound while epoch demonstrably exceeds
        // it. `run_chaos` turns either side failing into a violation, so
        // `passed()` carries the whole contrast; the explicit assertions
        // below just make the failure message name the number.
        for backend in ReclaimBackend::ALL {
            let params = ChaosParams {
                threads: 2,
                seed: 29,
                duration: Some(Duration::from_millis(80)),
                reclaim: Some(backend),
                ..ChaosParams::for_scenario(ChaosScenario::StalledReader)
            };
            for kind in AllocatorKind::BOTH {
                let report = run_chaos(kind, &params);
                assert!(
                    report.passed(),
                    "{}\nreplay: {}",
                    report.render(),
                    report.replay_command()
                );
                let observed = report
                    .stalled_garbage_observed
                    .expect("stalled-reader runs always probe");
                if backend == ReclaimBackend::Epoch {
                    assert!(observed > report.stalled_garbage_bound, "{}", report.render());
                } else {
                    assert!(observed <= report.stalled_garbage_bound, "{}", report.render());
                }
            }
        }
    }

    #[test]
    fn stalled_reader_doctor_smoke_names_the_staller() {
        // The live endpoint must be scrapeable mid-run and its diagnosis
        // must identify the parked reader by thread name; the final
        // report carries the blame records for offline inspection.
        let params = ChaosParams {
            threads: 2,
            seed: 19,
            doctor: true,
            duration: Some(Duration::from_millis(120)),
            ..ChaosParams::for_scenario(ChaosScenario::StalledReader)
        };
        for kind in AllocatorKind::BOTH {
            let report = run_chaos(kind, &params);
            assert!(
                report.passed(),
                "{}\nviolations: {:?}\nreplay: {}",
                report.render(),
                report.violations,
                report.replay_command()
            );
            let culprit = report
                .blame
                .iter()
                .find(|b| b.thread_name == "chaos-staller")
                .expect("blame names the staller");
            assert!(culprit.stalled_for_ns > 0);
        }
    }

    #[test]
    fn scenario_labels_round_trip() {
        for s in ChaosScenario::ALL {
            assert_eq!(s.label().parse::<ChaosScenario>().unwrap(), s);
        }
        assert!("bogus".parse::<ChaosScenario>().is_err());
    }
}
