//! Report structures and paper-style table rendering.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use pbs_alloc_api::CacheStatsSnapshot;

/// Result of one application-benchmark run on one allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppResult {
    /// Benchmark name ("postmark", "netperf", "apache", "pgbench").
    pub name: String,
    /// Allocator label ("slub" / "prudence").
    pub allocator: String,
    /// Worker threads used.
    pub threads: usize,
    /// Transactions/operations completed.
    pub ops: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Throughput.
    pub ops_per_sec: f64,
    /// Per-slab-cache statistics, keyed by Linux-style cache name.
    pub caches: Vec<(String, CacheStatsSnapshot)>,
}

impl AppResult {
    /// Builds a result, computing throughput.
    pub fn new(
        name: &str,
        allocator: &str,
        threads: usize,
        ops: u64,
        elapsed: Duration,
        caches: Vec<(String, CacheStatsSnapshot)>,
    ) -> Self {
        let seconds = elapsed.as_secs_f64();
        Self {
            name: name.to_owned(),
            allocator: allocator.to_owned(),
            threads,
            ops,
            seconds,
            ops_per_sec: if seconds > 0.0 { ops as f64 / seconds } else { 0.0 },
            caches: caches.into_iter().collect(),
        }
    }

    /// Percentage of frees that were deferred, across all caches
    /// (Figure 12).
    pub fn deferred_free_percent(&self) -> f64 {
        let (mut deferred, mut total) = (0u64, 0u64);
        for (_, s) in &self.caches {
            deferred += s.deferred_frees;
            total += s.total_frees();
        }
        if total == 0 {
            0.0
        } else {
            100.0 * deferred as f64 / total as f64
        }
    }
}

/// Side-by-side comparison of one slab cache between the two allocators —
/// a row in each of Figures 7–11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheComparison {
    /// Slab-cache name.
    pub cache: String,
    /// Baseline statistics.
    pub slub: CacheStatsSnapshot,
    /// Prudence statistics.
    pub prudence: CacheStatsSnapshot,
}

impl CacheComparison {
    /// Figure 7: percentage-point improvement in object-cache hits.
    pub fn hit_improvement_pp(&self) -> f64 {
        self.prudence.hit_percent() - self.slub.hit_percent()
    }

    /// Figure 8: percent reduction in object-cache churns (negative means
    /// Prudence churned more, as the paper observed for PostgreSQL
    /// kmalloc-64).
    pub fn object_churn_reduction_percent(&self) -> f64 {
        reduction_percent(
            self.slub.object_cache_churns(),
            self.prudence.object_cache_churns(),
        )
    }

    /// Figure 9: percent reduction in slab churns.
    pub fn slab_churn_reduction_percent(&self) -> f64 {
        reduction_percent(self.slub.slab_churns(), self.prudence.slab_churns())
    }

    /// Figure 10: percent reduction in peak slab usage.
    pub fn peak_slab_reduction_percent(&self) -> f64 {
        reduction_percent(self.slub.slabs_peak as u64, self.prudence.slabs_peak as u64)
    }

    /// Figure 11: change in total fragmentation (negative = Prudence
    /// lower/better), or `None` when either side has no live objects.
    pub fn fragmentation_change_percent(&self) -> Option<f64> {
        let s = self.slub.total_fragmentation()?;
        let p = self.prudence.total_fragmentation()?;
        if s == 0.0 {
            return None;
        }
        Some(100.0 * (p - s) / s)
    }
}

fn reduction_percent(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    100.0 * (base as f64 - new as f64) / base as f64
}

/// A full benchmark comparison: both runs plus the per-cache rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppComparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline run.
    pub slub: AppResult,
    /// Prudence run.
    pub prudence: AppResult,
}

impl AppComparison {
    /// Pairs up the per-cache stats of the two runs (caches present in
    /// both, in baseline order).
    pub fn cache_comparisons(&self) -> Vec<CacheComparison> {
        self.slub
            .caches
            .iter()
            .filter_map(|(name, s)| {
                let p = self
                    .prudence
                    .caches
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, p)| *p)?;
                Some(CacheComparison {
                    cache: name.clone(),
                    slub: *s,
                    prudence: p,
                })
            })
            .collect()
    }

    /// Figure 13: overall throughput improvement of Prudence, percent.
    pub fn throughput_improvement_percent(&self) -> f64 {
        if self.slub.ops_per_sec == 0.0 {
            return 0.0;
        }
        100.0 * (self.prudence.ops_per_sec - self.slub.ops_per_sec) / self.slub.ops_per_sec
    }

    /// Renders the Figures 7–13 rows for this benchmark as a text table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} ({} threads) ==",
            self.name, self.slub.threads
        );
        let _ = writeln!(
            out,
            "throughput: slub {:.0} ops/s, prudence {:.0} ops/s  (Fig 13: {:+.1}%)",
            self.slub.ops_per_sec,
            self.prudence.ops_per_sec,
            self.throughput_improvement_percent()
        );
        let _ = writeln!(
            out,
            "deferred frees (Fig 12): {:.1}% of all frees",
            self.slub.deferred_free_percent()
        );
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>9} | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>6} | {:>6} {:>6}",
            "cache",
            "hit%S",
            "hit%P",
            "ochurnS",
            "ochurnP",
            "schurnS",
            "schurnP",
            "peakS",
            "peakP",
            "fragS",
            "fragP"
        );
        for c in self.cache_comparisons() {
            let _ = writeln!(
                out,
                "{:<14} {:>8.1}% {:>8.1}% | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>6} | {:>6} {:>6}",
                c.cache,
                c.slub.hit_percent(),
                c.prudence.hit_percent(),
                c.slub.object_cache_churns(),
                c.prudence.object_cache_churns(),
                c.slub.slab_churns(),
                c.prudence.slab_churns(),
                c.slub.slabs_peak,
                c.prudence.slabs_peak,
                c.slub
                    .total_fragmentation()
                    .map_or_else(|| "-".into(), |f| format!("{f:.2}")),
                c.prudence
                    .total_fragmentation()
                    .map_or_else(|| "-".into(), |f| format!("{f:.2}")),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(hits: u64, reqs: u64, refills: u64, flushes: u64) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            object_size: 64,
            slab_bytes: 4096,
            alloc_requests: reqs,
            cache_hits: hits,
            refills,
            flushes,
            ..Default::default()
        }
    }

    #[test]
    fn comparison_math() {
        let c = CacheComparison {
            cache: "filp".into(),
            slub: snap(50, 100, 20, 20),
            prudence: snap(90, 100, 2, 2),
        };
        assert!((c.hit_improvement_pp() - 40.0).abs() < 1e-9);
        assert!((c.object_churn_reduction_percent() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_handles_zero_base() {
        assert_eq!(reduction_percent(0, 5), 0.0);
    }

    #[test]
    fn app_result_throughput() {
        let r = AppResult::new("x", "slub", 4, 1000, Duration::from_secs(2), vec![]);
        assert!((r.ops_per_sec - 500.0).abs() < 1e-9);
        assert_eq!(r.deferred_free_percent(), 0.0);
    }

    #[test]
    fn comparison_renders() {
        let slub = AppResult::new(
            "t",
            "slub",
            1,
            100,
            Duration::from_secs(1),
            vec![("filp".into(), snap(50, 100, 4, 4))],
        );
        let prudence = AppResult::new(
            "t",
            "prudence",
            1,
            120,
            Duration::from_secs(1),
            vec![("filp".into(), snap(90, 100, 1, 1))],
        );
        let cmp = AppComparison {
            name: "t".into(),
            slub,
            prudence,
        };
        let text = cmp.render();
        assert!(text.contains("filp"));
        assert!((cmp.throughput_improvement_percent() - 20.0).abs() < 1e-9);
        let json = serde_json::to_string(&cmp).unwrap();
        assert!(json.contains("prudence"));
    }
}
