//! # pbs-workloads — benchmark drivers regenerating the paper's evaluation
//!
//! One module per experiment in *Prudent Memory Reclamation in
//! Procrastination-Based Synchronization* (ASPLOS '16):
//!
//! | module | paper result |
//! |---|---|
//! | [`alloc_cost`] | §3.3 — refill ≈ 4× and grow ≈ 14× the cost of a cache hit |
//! | [`endurance`] | Figure 3 — SLUB+RCU memory growth → OOM vs Prudence equilibrium |
//! | [`microbench`] | Figure 6 — kmalloc/kfree_deferred pairs per second by object size |
//! | [`apps`] | Figures 7–13 — Postmark / Netperf / Apache / PostgreSQL emulations |
//! | [`tree_churn`] | extension: §3.1 multi-deferral amplification on an RCU tree |
//! | [`chaos`] | extension: fault-injected churn asserting OOM/stall robustness invariants |
//! | [`figures`] | orchestration + paper-style table rendering |
//!
//! Every driver runs unchanged over both allocators via [`Testbed`], so a
//! comparison is always like-for-like: same page allocator limits, same
//! RCU domain parameters, same sizing heuristics.

pub mod alloc_cost;
pub mod apps;
pub mod chaos;
pub mod doctor;
pub mod endurance;
pub mod figures;
pub mod microbench;
mod report;
pub mod telemetry_export;
mod testbed;
pub mod tree_churn;

pub use report::{AppComparison, AppResult, CacheComparison};
pub use testbed::{AllocatorKind, Testbed};
