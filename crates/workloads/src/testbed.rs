//! The shared experiment environment.

use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use pbs_alloc_api::{CacheFactory, ObjectAllocator, TelemetrySnapshot};
use pbs_mem::PageAllocator;
use pbs_rcu::reclaim::{
    domain_for, ReclaimBackend, ReclaimConfig, ReclaimStats, ReclamationDomain,
};
use pbs_rcu::{Rcu, RcuConfig};
use pbs_slub::{SlubFactory, SlubTuning};
use prudence::{PrudenceConfig, PrudenceFactory};

/// Which allocator design a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// The SLUB-style baseline with RCU-callback deferred frees.
    Slub,
    /// The Prudence allocator (latent caches/slabs).
    Prudence,
}

impl AllocatorKind {
    /// Both designs, baseline first (the order figures are reported in).
    pub const BOTH: [AllocatorKind; 2] = [AllocatorKind::Slub, AllocatorKind::Prudence];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            AllocatorKind::Slub => "slub",
            AllocatorKind::Prudence => "prudence",
        }
    }
}

impl std::fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One experiment environment: a page allocator (optionally limited), an
/// RCU domain, and a cache factory for the chosen allocator design.
///
/// # Example
///
/// ```
/// use pbs_workloads::{AllocatorKind, Testbed};
///
/// let bed = Testbed::new(AllocatorKind::Prudence, 2, pbs_rcu::RcuConfig::eager(), None);
/// let cache = bed.create_cache("t", 64);
/// let obj = cache.allocate()?;
/// unsafe { cache.free(obj) };
/// # Ok::<(), pbs_alloc_api::AllocError>(())
/// ```
pub struct Testbed {
    kind: AllocatorKind,
    pages: Arc<PageAllocator>,
    rcu: Arc<Rcu>,
    /// The reclamation domain every cache of this testbed shares —
    /// `PBS_RECLAIM` (or an explicit override) decides the backend.
    domain: Arc<dyn ReclamationDomain>,
    factory: Box<dyn CacheFactory>,
    /// Weak handles to every cache created through this testbed, so
    /// [`Testbed::telemetry`] can sweep them without keeping them alive
    /// past their experiment.
    created: Mutex<Vec<Weak<dyn ObjectAllocator>>>,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed").field("kind", &self.kind).finish()
    }
}

impl Testbed {
    /// Builds a testbed with `ncpus` CPU slots, the given RCU throttling
    /// parameters and an optional hard memory limit in bytes.
    pub fn new(
        kind: AllocatorKind,
        ncpus: usize,
        rcu_config: RcuConfig,
        limit_bytes: Option<usize>,
    ) -> Self {
        Self::new_with_faults(kind, ncpus, rcu_config, limit_bytes, None)
    }

    /// [`new`](Self::new) plus a fault injector threaded through the whole
    /// stack: the page allocator consults it on every block allocation and
    /// the RCU domain on every grace-period-advance attempt, so one seeded
    /// plan drives OOM and stall faults across every layer of the run.
    pub fn new_with_faults(
        kind: AllocatorKind,
        ncpus: usize,
        rcu_config: RcuConfig,
        limit_bytes: Option<usize>,
        faults: Option<Arc<pbs_fault::FaultInjector>>,
    ) -> Self {
        Self::new_tuned(kind, ncpus, rcu_config, limit_bytes, faults, None, None, None)
    }

    /// [`new_with_faults`](Self::new_with_faults) plus explicit allocator
    /// degradation knobs: `slub_tuning` overrides the baseline's watermarks
    /// and recovery-ladder depth (the endurance experiment pins
    /// `oom_retries: 0` to reproduce the paper's unhardened baseline), and
    /// `prudence_config` overrides the Prudence configuration wholesale
    /// (its `ncpus` is forced to match). Each override applies only to its
    /// own allocator kind; `None` keeps the defaults.
    ///
    /// `reclaim` overrides the reclamation backend and its tuning;
    /// `None` falls back to `PBS_RECLAIM` (default: `epoch`, the paper's
    /// scheme) with default tuning — so the whole harness fleet switches
    /// backend via one environment variable, mirroring `PBS_FASTPATH`.
    #[allow(clippy::too_many_arguments)]
    pub fn new_tuned(
        kind: AllocatorKind,
        ncpus: usize,
        mut rcu_config: RcuConfig,
        limit_bytes: Option<usize>,
        faults: Option<Arc<pbs_fault::FaultInjector>>,
        slub_tuning: Option<SlubTuning>,
        prudence_config: Option<PrudenceConfig>,
        reclaim: Option<(ReclaimBackend, ReclaimConfig)>,
    ) -> Self {
        let mut builder = PageAllocator::builder();
        if let Some(limit) = limit_bytes {
            builder = builder.limit_bytes(limit);
        }
        if let Some(faults) = &faults {
            builder = builder.fault_injector(Arc::clone(faults));
            if rcu_config.fault_injector.is_none() {
                rcu_config = rcu_config.with_fault_injector(Arc::clone(faults));
            }
        }
        let pages = Arc::new(builder.build());
        // As in the kernel, RCU reacts to memory pressure by expediting
        // callback processing (§3.5); wire the page allocator's pressure
        // signal in whenever a memory limit exists.
        if rcu_config.pressure_probe.is_none() && limit_bytes.is_some() {
            let probe_pages = Arc::clone(&pages);
            rcu_config = rcu_config
                .with_pressure_probe(Arc::new(move || probe_pages.pressure()));
        }
        let rcu = Arc::new(Rcu::with_config(rcu_config));
        let (backend, reclaim_config) =
            reclaim.unwrap_or_else(|| (ReclaimBackend::from_env(), ReclaimConfig::default()));
        let domain = domain_for(Arc::clone(&rcu), backend, reclaim_config);
        let factory: Box<dyn CacheFactory> = match kind {
            AllocatorKind::Slub => Box::new(SlubFactory::with_domain(
                ncpus,
                slub_tuning.unwrap_or_default(),
                Arc::clone(&pages),
                Arc::clone(&domain),
            )),
            AllocatorKind::Prudence => {
                let mut config = prudence_config.unwrap_or_else(|| PrudenceConfig::new(ncpus));
                config.ncpus = ncpus;
                Box::new(PrudenceFactory::with_domain(
                    config,
                    Arc::clone(&pages),
                    Arc::clone(&domain),
                ))
            }
        };
        Self {
            kind,
            pages,
            rcu,
            domain,
            factory,
            created: Mutex::new(Vec::new()),
        }
    }

    /// Which allocator design this testbed runs.
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }

    /// The shared page allocator (for memory sampling and limits).
    pub fn pages(&self) -> &Arc<PageAllocator> {
        &self.pages
    }

    /// The shared RCU domain.
    pub fn rcu(&self) -> &Arc<Rcu> {
        &self.rcu
    }

    /// The shared reclamation domain every cache of this testbed routes
    /// deferred frees through.
    pub fn reclaim_domain(&self) -> &Arc<dyn ReclamationDomain> {
        &self.domain
    }

    /// The reclamation backend in effect.
    pub fn reclaim_backend(&self) -> ReclaimBackend {
        self.domain.backend()
    }

    /// Snapshot of the shared domain's backend statistics.
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.domain.reclaim_stats()
    }

    /// The cache factory for subsystem construction.
    pub fn factory(&self) -> &dyn CacheFactory {
        self.factory.as_ref()
    }

    /// Convenience: creates one named cache.
    pub fn create_cache(&self, name: &str, object_size: usize) -> Arc<dyn ObjectAllocator> {
        let cache = self.factory.create_cache(name, object_size);
        self.created.lock().push(Arc::downgrade(&cache));
        cache
    }

    /// Captures a full telemetry snapshot of the run so far: the RCU
    /// domain's counters, histograms and grace-period events, plus the
    /// stats, histograms and events of every still-live cache created
    /// through this testbed.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new(self.rcu.stats(), self.rcu.telemetry());
        for weak in self.created.lock().iter() {
            if let Some(cache) = weak.upgrade() {
                snap.push_cache(cache.as_ref());
            }
        }
        snap.reclaim = self.domain.reclaim_stats();
        snap.blame = self.rcu.blame_reports();
        snap.sites = pbs_telemetry::site::report();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_kinds() {
        for kind in AllocatorKind::BOTH {
            let bed = Testbed::new(kind, 2, RcuConfig::eager(), Some(1 << 24));
            let cache = bed.create_cache("x", 128);
            let o = cache.allocate().unwrap();
            unsafe { cache.free_deferred(o) };
            cache.quiesce();
            assert_eq!(cache.stats().deferred_frees, 1);
            assert_eq!(bed.kind(), kind);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(AllocatorKind::Slub.label(), "slub");
        assert_eq!(AllocatorKind::Prudence.to_string(), "prudence");
    }
}
