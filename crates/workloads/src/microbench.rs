//! Figure 6: kmalloc/kfree_deferred pairs per second by object size.
//!
//! The paper runs `kmalloc()/kfree_deferred()` in a tight loop on all CPUs
//! for object sizes up to 4096 bytes and reports pairs per second. The
//! baseline allocator suffers because deferred objects are reclaimed by
//! throttled background callbacks: the allocator keeps refilling and
//! growing while freed memory sits in the callback backlog. When the page
//! allocator's budget is exhausted, the baseline stalls until reclaim
//! catches up — the userspace analog of kernel direct reclaim. Prudence
//! reaches a steady state where allocations are served from merged latent
//! objects.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pbs_alloc_api::{AllocError, ObjectAllocator};
use pbs_rcu::RcuConfig;

use crate::{AllocatorKind, Testbed};

/// Parameters for a microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchParams {
    /// Worker threads (the paper uses all CPUs).
    pub threads: usize,
    /// kmalloc/kfree_deferred pairs per thread (5 million in the paper).
    pub pairs_per_thread: u64,
    /// Hard memory budget, bounding the baseline's deferred backlog.
    pub memory_limit: usize,
}

impl Default for MicrobenchParams {
    fn default() -> Self {
        Self {
            threads: num_threads(),
            pairs_per_thread: 200_000,
            memory_limit: 256 << 20,
        }
    }
}

/// A sensible default worker count for the current machine.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// One (object size, allocator) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicrobenchPoint {
    /// Object size in bytes.
    pub object_size: usize,
    /// Pairs of kmalloc/kfree_deferred per second, all threads combined.
    pub pairs_per_sec: f64,
    /// Allocator attributes for the run (churns, peaks, hits).
    pub stats: pbs_alloc_api::CacheStatsSnapshot,
    /// Full telemetry capture of the run (RCU domain + cache), taken
    /// after quiesce so every trace event is included.
    pub telemetry: pbs_alloc_api::TelemetrySnapshot,
}

/// Runs the tight loop for one allocator and one object size.
pub fn run_microbench(
    kind: AllocatorKind,
    object_size: usize,
    params: &MicrobenchParams,
) -> MicrobenchPoint {
    // Linux-like callback throttling: blimit-sized batches with softirq
    // pacing. This is precisely the baseline behaviour the paper measures
    // against; Prudence never touches the callback path.
    let bed = Testbed::new(
        kind,
        params.threads,
        RcuConfig::linux_like(),
        Some(params.memory_limit),
    );
    let cache = bed.create_cache(&format!("kmalloc-{object_size}"), object_size);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..params.threads {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for _ in 0..params.pairs_per_thread {
                    let obj = alloc_with_reclaim_stall(cache.as_ref());
                    // Touch the object the way real writers initialize the
                    // new version before publishing it.
                    // SAFETY: fresh exclusive object.
                    unsafe {
                        obj.as_ptr().cast::<u64>().write(0xC0FFEE);
                        cache.free_deferred(obj);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total_pairs = params.threads as u64 * params.pairs_per_thread;
    let stats = cache.stats();
    cache.quiesce();
    let telemetry = bed.telemetry();
    MicrobenchPoint {
        object_size,
        pairs_per_sec: total_pairs as f64 / elapsed.as_secs_f64(),
        stats,
        telemetry,
    }
}

/// Allocates, stalling on OOM the way kernel allocations enter direct
/// reclaim: back off briefly and retry while background reclamation
/// catches up. (Prudence rarely hits this path: its OOM deferral reclaims
/// latent objects internally.)
fn alloc_with_reclaim_stall(cache: &dyn ObjectAllocator) -> pbs_alloc_api::ObjPtr {
    let mut backoff = 1u64;
    loop {
        match cache.allocate() {
            Ok(obj) => return obj,
            Err(AllocError::OutOfMemory) => {
                std::thread::sleep(Duration::from_micros(backoff.min(200)));
                backoff = backoff.saturating_mul(2);
            }
        }
    }
}

/// Runs Figure 6 for both allocators across the paper's size range.
pub fn figure6(
    sizes: &[usize],
    params: &MicrobenchParams,
) -> Vec<(AllocatorKind, MicrobenchPoint)> {
    let mut out = Vec::new();
    for &size in sizes {
        for kind in AllocatorKind::BOTH {
            out.push((kind, run_microbench(kind, size, params)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MicrobenchParams {
        MicrobenchParams {
            threads: 2,
            pairs_per_thread: 3_000,
            memory_limit: 64 << 20,
        }
    }

    #[test]
    fn prudence_completes_and_reports_rate() {
        let p = run_microbench(AllocatorKind::Prudence, 512, &small());
        assert!(p.pairs_per_sec > 0.0);
        assert_eq!(p.object_size, 512);
    }

    #[test]
    fn slub_completes_within_memory_limit() {
        let p = run_microbench(AllocatorKind::Slub, 512, &small());
        assert!(p.pairs_per_sec > 0.0);
    }

    #[test]
    fn prudence_improves_allocator_attributes() {
        // Timing claims are checked by the release-mode benches; in unit
        // tests we assert the robust allocator-attribute wins the paper
        // reports in Figures 9-10: Prudence needs fewer slab grows and a
        // lower peak slab count because deferred objects stay reusable.
        let params = MicrobenchParams {
            threads: 2,
            pairs_per_thread: 20_000,
            memory_limit: 32 << 20,
        };
        let slub = run_microbench(AllocatorKind::Slub, 1024, &params);
        let prudence = run_microbench(AllocatorKind::Prudence, 1024, &params);
        assert!(
            prudence.stats.grows < slub.stats.grows,
            "prudence grows {} !< slub grows {}",
            prudence.stats.grows,
            slub.stats.grows
        );
        assert!(
            prudence.stats.slabs_peak < slub.stats.slabs_peak,
            "prudence peak {} !< slub peak {}",
            prudence.stats.slabs_peak,
            slub.stats.slabs_peak
        );
    }
}
