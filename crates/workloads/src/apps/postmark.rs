//! Postmark emulation: mail-server file churn on the simulated
//! filesystem.
//!
//! Postmark (paper §5.3) maintains a pool of small files and runs
//! transactions that read, append, create and delete them. On ext4 +
//! SELinux this stresses `ext4_inode`, `dentry`, `filp` and `selinux` —
//! with deletions and closes deferring frees through RCU. The paper
//! measured 24.4 % of all frees as deferred for this workload, the
//! highest of the four benchmarks, and the largest Prudence speedup
//! (+18 %).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pbs_simfs::SimFs;

use super::AppParams;
use crate::report::AppResult;
use crate::{AllocatorKind, Testbed};

/// Runs the Postmark emulation on one allocator.
pub fn run_postmark(kind: AllocatorKind, params: &AppParams) -> AppResult {
    let bed = Testbed::new(kind, params.threads, pbs_rcu::RcuConfig::kernel_bursty(), None);
    let fs = SimFs::new(bed.factory());
    let start = Instant::now();
    let mut ops = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..params.threads {
            let fs = &fs;
            let bed = &bed;
            let params = params.clone();
            handles.push(s.spawn(move || {
                let reader = bed.rcu().register();
                let mut rng = StdRng::seed_from_u64(params.seed ^ tid as u64);
                let dir = tid as u64;
                // Initial pool, as Postmark creates its file set up front.
                let mut files: Vec<u64> = (0..params.pool_size).collect();
                let mut next_name = params.pool_size;
                for &name in &files {
                    fs.create(dir, name).expect("pool create");
                }
                let mut local = 0u64;
                for _ in 0..params.transactions_per_thread {
                    // Postmark transaction mix: half data ops (read or
                    // append), half metadata ops (create or delete).
                    match rng.gen_range(0..4u32) {
                        0 => {
                            // Read a random file.
                            if let Some(&name) = pick(&mut rng, &files) {
                                let guard = reader.read_lock();
                                let ino = fs.lookup(&guard, dir, name);
                                drop(guard);
                                if let Some(ino) = ino {
                                    let fd = fs.open(ino).expect("open");
                                    fs.read(fd, rng.gen_range(512..8192)).expect("read");
                                    fs.close(fd).expect("close");
                                }
                            }
                        }
                        1 => {
                            // Append to a random file.
                            if let Some(&name) = pick(&mut rng, &files) {
                                let guard = reader.read_lock();
                                let ino = fs.lookup(&guard, dir, name);
                                drop(guard);
                                if let Some(ino) = ino {
                                    let fd = fs.open(ino).expect("open");
                                    fs.append(fd, rng.gen_range(512..4096)).expect("append");
                                    fs.close(fd).expect("close");
                                }
                            }
                        }
                        2 => {
                            // Create a new file.
                            let name = next_name;
                            next_name += 1;
                            fs.create(dir, name).expect("create");
                            files.push(name);
                        }
                        _ => {
                            // Delete a random file (keep the pool
                            // non-empty).
                            if files.len() > 1 {
                                let i = rng.gen_range(0..files.len());
                                let name = files.swap_remove(i);
                                fs.unlink(dir, name).expect("unlink");
                            }
                        }
                    }
                    local += 1;
                }
                local
            }));
        }
        for h in handles {
            ops += h.join().expect("postmark worker");
        }
    });
    let elapsed = start.elapsed();
    fs.quiesce();
    let caches = fs
        .stats()
        .into_iter()
        .map(|(n, s)| (n.to_owned(), s))
        .collect();
    AppResult::new("postmark", kind.label(), params.threads, ops, elapsed, caches)
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_both_allocators_with_deferred_mix() {
        let params = AppParams {
            threads: 2,
            transactions_per_thread: 300,
            pool_size: 20,
            seed: 7,
        };
        for kind in AllocatorKind::BOTH {
            let r = run_postmark(kind, &params);
            assert_eq!(r.ops, 600);
            assert!(r.ops_per_sec > 0.0);
            // Postmark's signature: a substantial deferred-free share
            // (paper: 24.4%).
            let pct = r.deferred_free_percent();
            assert!(pct > 5.0, "{kind}: deferred {pct:.1}% too low");
            assert!(
                r.caches.iter().any(|(n, s)| n == "ext4_inode" && s.deferred_frees > 0),
                "inode deferred frees expected"
            );
        }
    }
}
