//! pgbench emulation: TPC-B-style transactions over concurrent sessions.
//!
//! PostgreSQL exercises the allocator differently from the other three
//! benchmarks (paper §5.4): most of its kernel allocations are
//! `kmalloc-64`-sized and are freed *immediately*, outside any deferred
//! context — only 4.4 % of frees are deferred. Those immediate frees
//! "interfere with the decisions taken by Prudence resulting in more
//! object cache churns" for kmalloc-64, the one regression the paper
//! reports. This driver reproduces that mix: per transaction, a burst of
//! kmalloc-64 work objects mostly freed in place, a couple of RCU-deferred
//! ones (fd-table/SELinux-style), and larger transient buffers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::AppParams;
use crate::report::AppResult;
use crate::{AllocatorKind, Testbed};

/// Per transaction: small work objects (locks, tags, fd-table entries...).
const K64_PER_TXN: usize = 24;
/// ...of which this many are freed through RCU (≈5 % of total frees, the
/// paper's 4.4 % for PostgreSQL).
const K64_DEFERRED_PER_TXN: usize = 1;
/// Larger row/WAL buffers per transaction, immediate-freed.
const BUF_PER_TXN: usize = 3;

/// Runs the pgbench emulation; one transaction = one TPC-B-ish unit.
pub fn run_pgbench(kind: AllocatorKind, params: &AppParams) -> AppResult {
    let bed = Testbed::new(kind, params.threads, pbs_rcu::RcuConfig::kernel_bursty(), None);
    let k64 = bed.create_cache("kmalloc-64", 64);
    let k1024 = bed.create_cache("kmalloc-1024", 1024);
    let selinux = bed.create_cache("selinux", 64);
    let start = Instant::now();
    let mut ops = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..params.threads {
            let k64 = &k64;
            let k1024 = &k1024;
            let selinux = &selinux;
            let params = params.clone();
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(params.seed ^ (tid as u64) << 16);
                // Session start: a security blob for the backend socket.
                let session_blob = selinux.allocate().expect("session blob");
                let mut local = 0u64;
                let mut work = Vec::with_capacity(K64_PER_TXN);
                for _ in 0..params.transactions_per_thread {
                    for _ in 0..K64_PER_TXN {
                        let o = k64.allocate().expect("k64");
                        // SAFETY: fresh exclusive object.
                        unsafe { o.as_ptr().cast::<u64>().write(local) };
                        work.push(o);
                    }
                    for _ in 0..BUF_PER_TXN {
                        let b = k1024.allocate().expect("buf");
                        // SAFETY: fresh exclusive object of 1024 bytes.
                        unsafe {
                            std::ptr::write_bytes(b.as_ptr(), 0x11, 1024);
                            k1024.free(b);
                        }
                    }
                    // Free the burst: mostly immediate, a sliver deferred —
                    // and in random order, as PostgreSQL's own free pattern
                    // interleaves with the deferred context.
                    for (i, o) in work.drain(..).enumerate() {
                        // SAFETY: each work object freed exactly once.
                        unsafe {
                            if i < K64_DEFERRED_PER_TXN && rng.gen_bool(0.9) {
                                k64.free_deferred(o);
                            } else {
                                k64.free(o);
                            }
                        }
                    }
                    local += 1;
                }
                // Session end: the blob is RCU-deferred like socket
                // teardown.
                // SAFETY: blob unpublished, freed once.
                unsafe { selinux.free_deferred(session_blob) };
                local
            }));
        }
        for h in handles {
            ops += h.join().expect("pgbench worker");
        }
    });
    let elapsed = start.elapsed();
    for c in [&k64, &k1024, &selinux] {
        c.quiesce();
    }
    let caches = vec![
        ("kmalloc-64".to_owned(), k64.stats()),
        ("kmalloc-1024".to_owned(), k1024.stats()),
        ("selinux".to_owned(), selinux.stats()),
    ];
    AppResult::new("pgbench", kind.label(), params.threads, ops, elapsed, caches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_deferred_share_like_postgresql() {
        let params = AppParams {
            threads: 2,
            transactions_per_thread: 400,
            pool_size: 0,
            seed: 11,
        };
        for kind in AllocatorKind::BOTH {
            let r = run_pgbench(kind, &params);
            assert_eq!(r.ops, 800);
            let pct = r.deferred_free_percent();
            // The paper's PostgreSQL signature: a small deferred share.
            assert!(
                pct > 0.5 && pct < 15.0,
                "{kind}: deferred share {pct:.1}% out of expected range"
            );
            let stats: std::collections::HashMap<_, _> =
                r.caches.iter().cloned().collect();
            assert!(stats["kmalloc-64"].frees > stats["kmalloc-64"].deferred_frees * 10);
        }
    }
}
