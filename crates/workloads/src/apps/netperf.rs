//! Netperf TCP_CRR emulation: connect / request / response / close.
//!
//! TCP_CRR (paper §5.3) measures connection setup+teardown plus one
//! request/response exchange per connection. Teardown defers the socket
//! objects ("objects are deferred for freeing during connection tear
//! down"), stressing `sock`, `filp` and `selinux`; payload `skbuff`s are
//! immediate-freed. The paper measured 14 % deferred frees and a 4.2 %
//! Prudence throughput win, with `filp` slab churn dropping from 364 K to
//! 6 K.

use std::time::Instant;

use pbs_simnet::SimNet;

use super::AppParams;
use crate::report::AppResult;
use crate::{AllocatorKind, Testbed};

/// Request and response sizes of the paper's TCP_CRR configuration
/// (1-byte request, 1-byte response at the protocol level; we include the
/// header-ish minimum buffer).
const REQUEST_BYTES: usize = 128;

/// Runs the TCP_CRR emulation; one transaction = one
/// connect/request/response/close cycle.
pub fn run_netperf(kind: AllocatorKind, params: &AppParams) -> AppResult {
    let bed = Testbed::new(kind, params.threads, pbs_rcu::RcuConfig::kernel_bursty(), None);
    let net = SimNet::new(bed.factory());
    let start = Instant::now();
    let mut ops = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..params.threads {
            let net = &net;
            let n = params.transactions_per_thread;
            handles.push(s.spawn(move || {
                let mut local = 0u64;
                for _ in 0..n {
                    let conn = net.connect().expect("connect");
                    // Handshake segments (SYN, SYN/ACK, ACK) ...
                    net.request_response(conn, 1).expect("handshake");
                    // ... one request/response exchange ...
                    net.request_response(conn, REQUEST_BYTES).expect("rr");
                    // ... FIN/ACK teardown segments, then teardown proper.
                    net.request_response(conn, 1).expect("fin");
                    net.request_response(conn, 1).expect("ack");
                    net.close(conn).expect("close");
                    local += 1;
                }
                local
            }));
        }
        for h in handles {
            ops += h.join().expect("netperf worker");
        }
    });
    let elapsed = start.elapsed();
    net.quiesce();
    let caches = net
        .stats()
        .into_iter()
        .map(|(n, s)| (n.to_owned(), s))
        .collect();
    AppResult::new("netperf", kind.label(), params.threads, ops, elapsed, caches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crr_cycle_traffic_shape() {
        let params = AppParams {
            threads: 2,
            transactions_per_thread: 300,
            pool_size: 0,
            seed: 1,
        };
        for kind in AllocatorKind::BOTH {
            let r = run_netperf(kind, &params);
            assert_eq!(r.ops, 600);
            let stats: std::collections::HashMap<_, _> =
                r.caches.iter().cloned().collect();
            // Every connection defers exactly one sock, filp and selinux.
            assert_eq!(stats["sock"].deferred_frees, 600);
            assert_eq!(stats["filp"].deferred_frees, 600);
            assert_eq!(stats["skbuff"].deferred_frees, 0);
            assert!(r.deferred_free_percent() > 5.0);
        }
    }
}
