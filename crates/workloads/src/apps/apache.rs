//! ApacheBench emulation: HTTP request handling over the simulated stack.
//!
//! `ab` with 128 parallel clients (paper §5.3) drives, per request:
//! connection accept, epoll registration, serving a static file (filp
//! churn on the served file), the response transfer, epoll removal and
//! connection teardown. The deferred-free traffic comes from connection
//! teardown and from "the removal of the target file descriptor from
//! epoll instance" (`eventpoll_epi`). The paper measured 18 % deferred
//! frees and a 5.6 % throughput win.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pbs_simfs::SimFs;
use pbs_simnet::{Epoll, SimNet};

use super::AppParams;
use crate::report::AppResult;
use crate::{AllocatorKind, Testbed};

const RESPONSE_BYTES: usize = 4096;

/// Runs the ApacheBench emulation; one transaction = one HTTP request.
pub fn run_apache(kind: AllocatorKind, params: &AppParams) -> AppResult {
    let bed = Testbed::new(kind, params.threads, pbs_rcu::RcuConfig::kernel_bursty(), None);
    let net = SimNet::new(bed.factory());
    let epoll = Epoll::new(bed.factory());
    let fs = SimFs::new(bed.factory());
    // The served document tree.
    let docs: Vec<pbs_simfs::Ino> = (0..params.pool_size.max(1))
        .map(|name| fs.create(0, name).expect("create document"))
        .collect();
    let start = Instant::now();
    let mut ops = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..params.threads {
            let net = &net;
            let epoll = &epoll;
            let fs = &fs;
            let docs = &docs;
            let params = params.clone();
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(params.seed ^ (tid as u64) << 8);
                let mut local = 0u64;
                for _ in 0..params.transactions_per_thread {
                    let conn = net.connect().expect("accept");
                    epoll.add(conn.0, 0x1).expect("epoll add");
                    // Serve a random static document.
                    let doc = docs[rng.gen_range(0..docs.len())];
                    let fd = fs.open(doc).expect("open doc");
                    fs.read(fd, RESPONSE_BYTES).expect("read doc");
                    fs.close(fd).expect("close doc");
                    net.request_response(conn, RESPONSE_BYTES).expect("send");
                    epoll.del(conn.0);
                    net.close(conn).expect("teardown");
                    local += 1;
                }
                local
            }));
        }
        for h in handles {
            ops += h.join().expect("apache worker");
        }
    });
    let elapsed = start.elapsed();
    net.quiesce();
    epoll.quiesce();
    fs.quiesce();
    let mut caches: Vec<(String, pbs_alloc_api::CacheStatsSnapshot)> = net
        .stats()
        .into_iter()
        .map(|(n, s)| (format!("net-{n}"), s))
        .collect();
    caches.push(("eventpoll_epi".to_owned(), epoll.stats()));
    caches.extend(
        fs.stats()
            .into_iter()
            .filter(|(n, _)| *n == "filp" || *n == "fsbuf")
            .map(|(n, s)| (format!("fs-{n}"), s)),
    );
    AppResult::new("apache", kind.label(), params.threads, ops, elapsed, caches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_traffic_shape() {
        let params = AppParams {
            threads: 2,
            transactions_per_thread: 200,
            pool_size: 10,
            seed: 3,
        };
        for kind in AllocatorKind::BOTH {
            let r = run_apache(kind, &params);
            assert_eq!(r.ops, 400);
            let stats: std::collections::HashMap<_, _> =
                r.caches.iter().cloned().collect();
            // One epi registration/removal per request.
            assert_eq!(stats["eventpoll_epi"].deferred_frees, 400);
            // One filp per served document open/close.
            assert_eq!(stats["fs-filp"].deferred_frees, 400);
            assert!(r.deferred_free_percent() > 5.0);
        }
    }
}
