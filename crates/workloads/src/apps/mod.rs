//! Application-benchmark emulations (paper §5.3): Postmark, Netperf
//! TCP_CRR, ApacheBench and pgbench.
//!
//! Each driver reproduces the *allocator-visible* behaviour of its
//! namesake — the slab caches it stresses, the mix of deferred vs
//! immediate frees (Figure 12), and the relationship between transactions
//! and object churn — on top of the simulated subsystems (`pbs-simfs`,
//! `pbs-simnet`). Every driver runs a fixed number of transactions, as in
//! the paper ("fixed number of transactions ... enables a fair comparison
//! of absolute numbers of the memory allocator attributes").

mod apache;
mod netperf;
mod pgbench;
mod postmark;
mod server;

pub use apache::run_apache;
pub use netperf::run_netperf;
pub use pgbench::run_pgbench;
pub use postmark::run_postmark;
pub use server::{run_server, ServerParams, ServerReport};

use crate::report::AppComparison;
use crate::AllocatorKind;

/// Shared application-benchmark parameters.
#[derive(Debug, Clone)]
pub struct AppParams {
    /// Worker threads (benchmark "instances"/"clients").
    pub threads: usize,
    /// Transactions per thread.
    pub transactions_per_thread: u64,
    /// Per-thread file/connection pool size.
    pub pool_size: u64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for AppParams {
    fn default() -> Self {
        Self {
            threads: crate::microbench::num_threads(),
            transactions_per_thread: 20_000,
            pool_size: 100,
            seed: 0x5EED,
        }
    }
}

/// Runs one named benchmark on both allocators and pairs the results.
pub fn compare(name: &str, params: &AppParams) -> AppComparison {
    let run = |kind| match name {
        "postmark" => run_postmark(kind, params),
        "netperf" => run_netperf(kind, params),
        "apache" => run_apache(kind, params),
        "pgbench" => run_pgbench(kind, params),
        other => panic!("unknown benchmark {other}"),
    };
    AppComparison {
        name: name.to_owned(),
        slub: run(AllocatorKind::Slub),
        prudence: run(AllocatorKind::Prudence),
    }
}

/// The four paper benchmarks, in reporting order.
pub const APP_NAMES: [&str; 4] = ["postmark", "netperf", "apache", "pgbench"];
