//! Sharded multi-reactor server workload: production-shaped traffic with
//! overload protection and gating graceful-degradation checks.
//!
//! This is the ROADMAP's million-connection scenario. N reactor shards
//! (one thread each) drive a simulated epoll loop over a large population
//! of concurrent connections on [`pbs_simnet::ShardedNet`]; every piece of
//! per-connection server state — the transport's sock/filp/selinux
//! objects, a parse-state object, a parse buffer, per-request scratch —
//! is allocated through the Prudence or SLUB caches, and connection
//! teardown frees through `free_deferred`, exactly as kernel connection
//! teardown defers through RCU.
//!
//! The run moves through phases:
//!
//! 1. **Establish** — dial/accept until the target population is live.
//! 2. **Baseline** — a Zipfian request mix over the open connections.
//! 3. **Storm** — the DoS burst: the traffic engine over-dials the listen
//!    queues (beyond backlog capacity), mixes in slowloris attackers that
//!    accept and then never complete a request, churns established
//!    connections, and (optionally) parks one reactor shard inside a
//!    read-side critical section for the whole storm — the stalled-reader
//!    contrast from the reclamation-backend matrix, now embedded in a
//!    live server.
//! 4. **Recovery** — the attack stops; deadlines evict the attackers, the
//!    dial pump restores the population, and service must return to
//!    baseline.
//!
//! Overload protection is layered the way real servers do it:
//!
//! * **accept backpressure** — the bounded per-shard listen queue sheds
//!   dials beyond capacity before any allocation happens;
//! * **timeout wheels** — every connection carries an idle (honest) or
//!   hard request (attacker/slow-read) deadline on a per-shard
//!   [`TimerWheel`](pbs_simnet::TimerWheel); expiry evicts;
//! * **retry with backoff** — transient allocation failures are retried a
//!   bounded number of times with exponential backoff, each attempt
//!   re-entering the allocator's staged OOM recovery ladder underneath;
//! * **load shedding** — when any workload cache reports hard pressure
//!   (`pressure_level == 2`, the PR 5 deferred-backlog watermark), shards
//!   stop accepting, drain their listen queues unserved and evict idle
//!   connections until pressure recedes;
//! * **connection cap** — a shard never holds more than
//!   `max_conns_factor ×` its share of the target population.
//!
//! Degradation is *gating*: [`ServerReport::violations`] is empty only if
//! p99.9 alloc-path latency stayed under the bound, overload was shed and
//! counted rather than panicked, the garbage bound held under the robust
//! reclamation backends while a shard was parked, service recovered to
//! baseline after the storm, and teardown returned to
//! `deferred_outstanding == 0` with every page back at the allocator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use pbs_alloc_api::{ObjPtr, ObjectAllocator};
use pbs_fault::{site, FaultInjector, Schedule};
use pbs_rcu::reclaim::{ReclaimBackend, ReclaimConfig, ReclaimStats};
use pbs_rcu::RcuConfig;
use pbs_simnet::{ConnId, NetError, NetShard, ShardConfig, ShardedNet};
use pbs_slub::SlubTuning;
use pbs_telemetry::{
    bucket_index, HistogramSnapshot, Percentiles, ShardGauges, ShardRow, ShardSet, BUCKETS,
};
use prudence::PrudenceConfig;

use crate::{AllocatorKind, Testbed};

/// Parse-state object per connection (request line, header cursor).
const CONN_STATE_SIZE: usize = 192;
/// Per-connection parse buffer.
const PARSE_BUF_SIZE: usize = 512;
/// Per-request scratch object (response head, iovec stand-in).
const SCRATCH_SIZE: usize = 256;

/// Run phases, stored in one shared atomic.
const PHASE_ESTABLISH: u8 = 0;
const PHASE_BASELINE: u8 = 1;
const PHASE_STORM: u8 = 2;
const PHASE_RECOVERY: u8 = 3;
const PHASE_SHUTDOWN: u8 = 4;

/// Dial cookies: what kind of client is knocking.
const COOKIE_HONEST: u64 = 0;
const COOKIE_ATTACKER: u64 = 1;

/// Parameters for one server run.
#[derive(Debug, Clone)]
pub struct ServerParams {
    /// Reactor shards (threads; also the testbed CPU-slot count).
    pub shards: usize,
    /// Target concurrent connections across all shards.
    pub connections: usize,
    /// Seed for the fault plan and every traffic RNG.
    pub seed: u64,
    /// Baseline-phase length.
    pub baseline_ms: u64,
    /// Storm-phase length.
    pub storm_ms: u64,
    /// Recovery-phase length.
    pub recovery_ms: u64,
    /// Zipf catalog size (distinct request keys).
    pub keys: usize,
    /// Zipf exponent (≈1.1 is classic web-trace shape).
    pub zipf_s: f64,
    /// Per-shard listen-queue capacity.
    pub backlog_cap: usize,
    /// Accepts per reactor iteration.
    pub accept_budget: usize,
    /// Request-service attempts per reactor iteration.
    pub request_budget: usize,
    /// Honest connections churned (closed + re-dialed) per storm
    /// iteration per shard.
    pub churn_per_iter: usize,
    /// Idle deadline for honest connections (refreshed on activity).
    pub idle_timeout_ms: u64,
    /// Hard request deadline for connections that never complete one
    /// (slowloris eviction).
    pub slow_deadline_ms: u64,
    /// Fraction of storm dials that are slowloris attackers.
    pub attacker_fraction: f64,
    /// Probability an accept is refused by the `net.accept` fault site.
    pub accept_fault_p: f64,
    /// Probability a read stalls via the `net.read_stall` fault site.
    pub read_stall_fault_p: f64,
    /// Probability of an injected OOM per slab-grow attempt (exercises
    /// the retry-with-backoff path; 0 leaves allocation failure to any
    /// real memory limit).
    pub grow_fault_p: f64,
    /// Bounded retries per allocation before the connection is dropped.
    pub alloc_retry_budget: u32,
    /// Park the last shard in a read-side critical section for the whole
    /// storm (the stalled reader the robust backends must tolerate).
    pub stalled_shard: bool,
    /// Hard page-allocator limit; `None` for uncapped runs.
    pub limit_bytes: Option<usize>,
    /// Reclamation backend override; `None` honours `PBS_RECLAIM`.
    pub reclaim: Option<ReclaimBackend>,
    /// Garbage bound (deferred objects outstanding, sampled during the
    /// storm) the robust backends must hold with a shard parked.
    pub garbage_bound: usize,
    /// Require the epoch backend to *exceed* the garbage bound in the
    /// same position (the documented contrast; needs storm churn high
    /// enough to be meaningful, so off by default at test scale).
    pub require_epoch_contrast: bool,
    /// p99.9 bound on the alloc-path latency histogram, in nanoseconds.
    /// Generous by default: on an oversubscribed CI box a timed window
    /// can absorb a scheduler timeslice, and the gate exists to catch
    /// wedges (seconds), not preemption (tens of milliseconds).
    pub p999_alloc_bound_ns: u64,
    /// Cache pressure watermarks (soft, hard) applied to both allocator
    /// tunings; `None` keeps allocator defaults. Tests lower these to
    /// make the load-shedding trip reachable at small scale.
    pub pressure_watermarks: Option<(usize, usize)>,
    /// A shard stops accepting once it holds `max_conns_factor ×` its
    /// share of the target population.
    pub max_conns_factor: usize,
    /// Memory-recovery gate: once reclamation catches up after the storm,
    /// used bytes must be at most this multiple of the established
    /// baseline. Not 1.0 — randomly evicting half the storm peak leaves a
    /// survivor on almost every slab, and that fragmentation is real
    /// server behaviour, not a leak (the teardown gate still demands an
    /// exact return to zero, and a true leak compounds far past any small
    /// constant).
    pub recovery_factor: f64,
    /// Cap on the establish phase before the run is declared failed.
    pub establish_timeout: Duration,
}

impl Default for ServerParams {
    fn default() -> Self {
        Self {
            shards: 4,
            connections: 100_000,
            seed: 1,
            baseline_ms: 200,
            storm_ms: 400,
            recovery_ms: 400,
            keys: 256,
            zipf_s: 1.1,
            backlog_cap: 1024,
            accept_budget: 512,
            request_budget: 128,
            churn_per_iter: 64,
            idle_timeout_ms: 150,
            slow_deadline_ms: 60,
            attacker_fraction: 0.5,
            accept_fault_p: 0.002,
            read_stall_fault_p: 0.01,
            grow_fault_p: 0.0,
            alloc_retry_budget: 6,
            stalled_shard: true,
            limit_bytes: None,
            reclaim: None,
            garbage_bound: 4096,
            require_epoch_contrast: false,
            p999_alloc_bound_ns: 1_000_000_000,
            pressure_watermarks: None,
            max_conns_factor: 2,
            recovery_factor: 4.0,
            establish_timeout: Duration::from_secs(60),
        }
    }
}

impl ServerParams {
    /// Small-scale parameters for tests and the example: two shards, a
    /// few thousand connections, sub-second phases.
    pub fn smoke() -> Self {
        Self {
            shards: 2,
            connections: 3_000,
            baseline_ms: 60,
            storm_ms: 150,
            recovery_ms: 200,
            backlog_cap: 256,
            accept_budget: 128,
            churn_per_iter: 32,
            idle_timeout_ms: 80,
            slow_deadline_ms: 40,
            establish_timeout: Duration::from_secs(20),
            ..Self::default()
        }
    }

    /// Rescales deadlines to the connection population. The Zipf service
    /// loop revisits a given connection roughly every `population /
    /// (shards * request_budget)` iterations, so past ~20k connections a
    /// sub-second idle deadline expires before the refresh arrives and
    /// honest connections are mass-evicted at the accept-rate x timeout
    /// equilibrium — the population can never hold its target. Real
    /// servers at that scale run idle timeouts of minutes; here "longer
    /// than the whole run" models the same regime, while the slowloris
    /// deadline (`slow_deadline_ms`) keeps the timer wheel's eviction
    /// path exercised. The budget includes the worst-case establish
    /// window: deadlines armed while the population is still being
    /// built must not come due mid-phase, or early-established
    /// connections are reaped while the late ones are still dialing.
    /// Small runs are returned unchanged so tests still cover
    /// honest-idle eviction.
    #[must_use]
    pub fn scaled_for_population(mut self) -> Self {
        if self.connections > 20_000 {
            let run_ms = self.baseline_ms + self.storm_ms + self.recovery_ms;
            let establish_ms = self.establish_timeout.as_millis() as u64;
            self.idle_timeout_ms = self.idle_timeout_ms.max(establish_ms + 2 * run_ms);
        }
        self
    }
}

/// Outcome of one server run; `violations` is empty iff every degradation
/// gate held.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerReport {
    /// Allocator label.
    pub allocator: String,
    /// Reclamation backend label.
    pub reclaim_backend: String,
    /// The seed the run used.
    pub seed: u64,
    /// Reactor shards.
    pub shards: usize,
    /// Target concurrent connections.
    pub target_connections: usize,
    /// Peak live connections observed.
    pub established_peak: usize,
    /// Live connections at the end of recovery.
    pub open_at_end: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Totals across shards over the whole run.
    pub totals: ShardRow,
    /// Per-shard rows at the end of the run.
    pub per_shard: Vec<ShardRow>,
    /// Counter deltas for the baseline phase.
    pub baseline: ShardRow,
    /// Counter deltas for the storm phase.
    pub storm: ShardRow,
    /// Counter deltas for the recovery phase.
    pub recovery: ShardRow,
    /// Alloc-path latency percentiles (state/buffer/scratch allocations,
    /// including retries and ladder climbs).
    pub alloc_latency: Option<Percentiles>,
    /// Grace-period latency percentiles from the RCU domain's telemetry
    /// (recorded by the prober's blocking `synchronize` calls).
    pub gp_latency: Option<Percentiles>,
    /// The full alloc-path histogram, for trajectory files.
    pub alloc_hist: HistogramSnapshot,
    /// Whether any cache reported hard pressure during the run.
    pub pressure_hard_seen: bool,
    /// Maximum deferred objects outstanding sampled during the storm.
    pub max_garbage_storm: usize,
    /// The bound robust backends are held to.
    pub garbage_bound: usize,
    /// Whether a shard was parked through the storm.
    pub stalled_shard: bool,
    /// RCU stall-watchdog warnings (≥1 expected when a shard is parked).
    pub stall_warnings: u64,
    /// Expedited grace periods driven during the run.
    pub expedited_gps: u64,
    /// Epoch advances that used the membarrier protocol.
    pub membarrier_advances: u64,
    /// Epoch advances that used the portable fallback-fence protocol.
    pub fallback_fence_advances: u64,
    /// Handshakes the `net.accept` fault site refused.
    pub injected_accept_refusals: u64,
    /// Reads the `net.read_stall` fault site stalled.
    pub injected_read_stalls: u64,
    /// Slab grows the allocator fault site failed.
    pub injected_oom: u64,
    /// Stall-blame records captured during the run.
    pub blame: Vec<pbs_rcu::BlameReport>,
    /// Reclamation-domain counters at the end of the run.
    pub reclaim: ReclaimStats,
    /// Page-allocator bytes used once the population was established.
    pub baseline_used_bytes: usize,
    /// Page-allocator bytes used at the end of recovery.
    pub recovered_used_bytes: usize,
    /// Peak page-allocator bytes over the run.
    pub peak_bytes: usize,
    /// Deferred objects outstanding after the final quiesce (must be 0).
    pub deferred_outstanding_end: usize,
    /// Page-allocator bytes still used after full teardown (must be 0).
    pub used_bytes_after_teardown: usize,
    /// Reactor panics (must be 0).
    pub panics: u64,
    /// Gate violations; empty on a passing run.
    pub violations: Vec<String>,
}

impl ServerReport {
    /// Whether every degradation gate held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary.
    pub fn render(&self) -> String {
        let alloc = self
            .alloc_latency
            .map(|p| format!("p50 {} / p99 {} / p99.9 {} ns", p.p50, p.p99, p.p999))
            .unwrap_or_else(|| "n/a".to_owned());
        let gp = self
            .gp_latency
            .map(|p| format!("p50 {} / p99 {} / p99.9 {} ns", p.p50, p.p99, p.p999))
            .unwrap_or_else(|| "n/a".to_owned());
        format!(
            "server[{} {} seed={} shards={}]: {} conns peak (target {}), \
             {} requests, shed {} accepts + {} conns, {} timeouts, {} read stalls, \
             {} retries/{} drops, alloc {alloc}, gp {gp}, \
             garbage max {}/{} bound, {} warns, {} expedited, \
             mem {}/{} KiB baseline/recovered (peak {} KiB), {} panics — {}",
            self.allocator,
            self.reclaim_backend,
            self.seed,
            self.shards,
            self.established_peak,
            self.target_connections,
            self.totals.requests,
            self.totals.shed_accepts,
            self.totals.shed_conns,
            self.totals.timeouts,
            self.totals.read_stalls,
            self.totals.alloc_retries,
            self.totals.alloc_drops,
            self.max_garbage_storm,
            self.garbage_bound,
            self.stall_warnings,
            self.expedited_gps,
            self.baseline_used_bytes >> 10,
            self.recovered_used_bytes >> 10,
            self.peak_bytes >> 10,
            self.panics,
            if self.passed() { "OK" } else { "FAILED" },
        )
    }

    /// One-line command reproducing this run.
    pub fn replay_command(&self) -> String {
        format!(
            "cargo run --release -p pbs-workloads --bin server_bench -- \
             --seed {} --shards {} --connections {} --allocator {} --reclaim {}",
            self.seed, self.shards, self.target_connections, self.allocator, self.reclaim_backend
        )
    }
}

/// Precomputed-CDF Zipf sampler (the `rand` shim has no Zipf
/// distribution). Rank 0 is the most popular key.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Worker-local latency histogram: same buckets as
/// [`pbs_telemetry::LogHistogram`] but unconditionally recorded (server
/// gates must not depend on the global trace toggle) and unshared (no
/// atomics on the reactor hot path).
#[derive(Clone)]
struct LatHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for LatHist {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LatHist {
    #[inline]
    fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: self.buckets.clone(),
        }
    }
}

/// One established connection's server-side state.
struct ConnEntry {
    conn: ConnId,
    state: ObjPtr,
    buf: ObjPtr,
    attacker: bool,
    deadline: u64,
}

/// Per-shard reactor bookkeeping: slab-style entry vector plus an id
/// index, so random service picks are O(1) and closes are swap-remove.
#[derive(Default)]
struct ConnTable {
    entries: Vec<ConnEntry>,
    index: HashMap<u64, usize>,
}

impl ConnTable {
    fn insert(&mut self, e: ConnEntry) {
        self.index.insert(e.conn.0, self.entries.len());
        self.entries.push(e);
    }

    fn remove(&mut self, conn: u64) -> Option<ConnEntry> {
        let i = self.index.remove(&conn)?;
        let e = self.entries.swap_remove(i);
        if let Some(moved) = self.entries.get(i) {
            self.index.insert(moved.conn.0, i);
        }
        Some(e)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Nanosecond clock for latency windows.
#[inline]
fn nanos(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Bounded retry with exponential backoff around one allocation. Each
/// attempt re-enters the allocator (whose staged OOM ladder runs
/// underneath); every attempt's latency — success or failure — lands in
/// the alloc-path histogram the p99.9 gate reads.
fn alloc_with_retry(
    cache: &Arc<dyn ObjectAllocator>,
    gauges: &ShardGauges,
    budget: u32,
    hist: &mut LatHist,
) -> Option<ObjPtr> {
    let mut backoff_us = 20u64;
    for attempt in 0..=budget {
        let t0 = Instant::now();
        match cache.allocate() {
            Ok(p) => {
                hist.record(nanos(t0));
                return Some(p);
            }
            Err(_) => {
                hist.record(nanos(t0));
                if attempt == budget {
                    break;
                }
                ShardGauges::bump(&gauges.alloc_retries);
                std::thread::sleep(Duration::from_micros(backoff_us));
                backoff_us = (backoff_us * 2).min(2_000);
            }
        }
    }
    None
}

/// Closes one connection and defers its server-side state, as connection
/// teardown does in the kernel.
fn close_entry(
    shard: &NetShard,
    state_cache: &Arc<dyn ObjectAllocator>,
    buf_cache: &Arc<dyn ObjectAllocator>,
    e: ConnEntry,
) {
    let _ = shard.close(e.conn);
    // SAFETY: the entry was removed from the table, so this reactor owns
    // the objects; pre-existing RCU readers may still inspect them until
    // the grace period ends, which is exactly what free_deferred is for.
    unsafe {
        state_cache.free_deferred(e.state);
        buf_cache.free_deferred(e.buf);
    }
}

/// Runs the server scenario on one allocator and checks every gate.
#[allow(clippy::too_many_lines)]
pub fn run_server(kind: AllocatorKind, params: &ServerParams) -> ServerReport {
    let faults = Arc::new(FaultInjector::new(params.seed));
    if params.accept_fault_p > 0.0 {
        faults.schedule(site::NET_ACCEPT, Schedule::Probability(params.accept_fault_p));
    }
    if params.read_stall_fault_p > 0.0 {
        faults.schedule(
            site::NET_READ_STALL,
            Schedule::Probability(params.read_stall_fault_p),
        );
    }
    if params.grow_fault_p > 0.0 {
        let grow_site = match kind {
            AllocatorKind::Slub => site::SLUB_GROW,
            AllocatorKind::Prudence => site::PRUDENCE_GROW,
        };
        faults.schedule(grow_site, Schedule::Probability(params.grow_fault_p));
    }

    let backend = params.reclaim.unwrap_or_else(ReclaimBackend::from_env);
    let robust = backend != ReclaimBackend::Epoch;
    // Robust backends get the aggressive tuning so the garbage bound is
    // reachable within sub-second storm phases (as in the chaos harness).
    let reclaim_config = if robust {
        ReclaimConfig::aggressive()
    } else {
        ReclaimConfig::default()
    };

    // The watchdog threshold sits well under the storm length so a parked
    // reactor is blamed while the storm is still running.
    let stall_threshold = Duration::from_millis((params.storm_ms / 4).clamp(5, 50));
    let rcu_config = RcuConfig::eager().with_stall_threshold(stall_threshold);

    let mut slub_tuning = None;
    let mut prudence_config = None;
    if let Some((soft, hard)) = params.pressure_watermarks {
        slub_tuning = Some(SlubTuning {
            soft_watermark: soft,
            hard_watermark: hard,
            ..SlubTuning::default()
        });
        prudence_config = Some(PrudenceConfig::new(params.shards).with_watermarks(soft, hard));
    }

    let bed = Testbed::new_tuned(
        kind,
        params.shards,
        rcu_config,
        params.limit_bytes,
        Some(Arc::clone(&faults)),
        slub_tuning,
        prudence_config,
        Some((backend, reclaim_config)),
    );
    let state_cache = bed.create_cache("conn_state", CONN_STATE_SIZE);
    let buf_cache = bed.create_cache("parse_buf", PARSE_BUF_SIZE);
    let scratch_cache = bed.create_cache("req_scratch", SCRATCH_SIZE);

    let nshards = params.shards.max(1);
    let target_per_shard = params.connections.div_ceil(nshards);
    let max_conns = target_per_shard * params.max_conns_factor.max(1);
    let shard_config = ShardConfig {
        backlog_cap: params.backlog_cap,
        conn_buckets: (max_conns / 4).next_power_of_two().clamp(256, 1 << 18),
        wheel_slots: 256,
        wheel_granularity: (params.idle_timeout_ms / 128).max(1),
    };
    let net = ShardedNet::new(bed.factory(), nshards, shard_config, Some(Arc::clone(&faults)));
    let gauges = ShardSet::new(nshards);
    let zipf = Zipf::new(params.keys, params.zipf_s);

    let phase = AtomicU8::new(PHASE_ESTABLISH);
    // Published by the driver's sampler; read by every reactor to decide
    // load shedding without each one snapshotting cache stats.
    let pressure = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    let start = Instant::now();
    let mut violations: Vec<String> = Vec::new();
    let mut panics = 0u64;
    let mut merged_hist = HistogramSnapshot::default();

    // Phase-boundary snapshots taken by the driver.
    let mut row_establish_end = ShardRow::default();
    let mut row_baseline_end = ShardRow::default();
    let mut row_storm_end = ShardRow::default();
    let mut row_recovery_end = ShardRow::default();
    let mut baseline_used_bytes = 0usize;
    let mut recovered_used_bytes = 0usize;
    let mut established_peak = 0usize;
    let mut open_at_end = 0usize;
    let mut max_garbage_storm = 0usize;
    let mut pressure_hard_seen = false;

    std::thread::scope(|s| {
        // Grace-period prober: periodic blocking synchronize() calls both
        // bound the deferred backlog and populate the gp_latency_ns
        // histogram the report quotes. Under an epoch-backend storm with
        // a parked shard, one of these calls blocks for most of the storm
        // — that tail is the contrast the report exists to show.
        let gp_prober = {
            let rcu = Arc::clone(bed.rcu());
            let stop = &stop;
            std::thread::Builder::new()
                .name("server-gp-prober".to_owned())
                .spawn_scoped(s, move || {
                    while !stop.load(Ordering::Relaxed) {
                        rcu.synchronize();
                        std::thread::sleep(Duration::from_millis(3));
                    }
                })
                .expect("spawn gp prober")
        };

        // Reactor shards.
        let mut reactors = Vec::new();
        for shard_idx in 0..nshards {
            let shard = net.shard(shard_idx);
            let shard_gauges = gauges.shard(shard_idx);
            let rcu = Arc::clone(bed.rcu());
            let state_cache = &state_cache;
            let buf_cache = &buf_cache;
            let scratch_cache = &scratch_cache;
            let zipf = &zipf;
            let phase = &phase;
            let pressure = &pressure;
            let is_stalled = params.stalled_shard && shard_idx == nshards - 1;
            let handle = std::thread::Builder::new()
                .name(format!("server-shard-{shard_idx}"))
                .spawn_scoped(s, move || -> LatHist {
                    let reader = rcu.register();
                    let mut rng = StdRng::seed_from_u64(params.seed ^ ((shard_idx as u64) << 17));
                    let mut hist = LatHist::default();
                    let mut table = ConnTable::default();
                    let mut expired: Vec<(u64, u64)> = Vec::new();
                    let mut parked_already = false;
                    loop {
                        let ph = phase.load(Ordering::Acquire);
                        if ph == PHASE_SHUTDOWN {
                            break;
                        }
                        let now_ms = start.elapsed().as_millis() as u64;

                        // The deliberately-stalled reader shard: one
                        // continuous read-side pin across the storm. Its
                        // connections go unserviced; reclamation must
                        // cope (robust backends) or visibly stall and be
                        // blamed (epoch).
                        if ph == PHASE_STORM && is_stalled && !parked_already {
                            let guard = reader.read_lock();
                            while phase.load(Ordering::Acquire) == PHASE_STORM {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            drop(guard);
                            parked_already = true;
                            continue;
                        }

                        let hard_pressure = pressure.load(Ordering::Relaxed) >= 2;

                        // 1. Dial pump: the traffic engine knocking on
                        // this shard's listener.
                        match ph {
                            PHASE_STORM => {
                                // DoS burst: over-dial the listen queue
                                // (backpressure must shed the excess) with
                                // a slowloris mix.
                                let dials = params.backlog_cap + params.backlog_cap / 4;
                                for _ in 0..dials {
                                    let cookie = if rng.gen_bool(params.attacker_fraction) {
                                        COOKIE_ATTACKER
                                    } else {
                                        COOKIE_HONEST
                                    };
                                    if shard.dial(cookie).is_err() {
                                        ShardGauges::bump(&shard_gauges.shed_accepts);
                                    }
                                }
                                // Churn storm: close established honest
                                // connections (their teardown defers) and
                                // let the pump re-dial them later.
                                for _ in 0..params.churn_per_iter {
                                    if table.len() == 0 {
                                        break;
                                    }
                                    let i = rng.gen_range(0..table.entries.len());
                                    if table.entries[i].attacker {
                                        continue;
                                    }
                                    let conn = table.entries[i].conn.0;
                                    if let Some(e) = table.remove(conn) {
                                        close_entry(shard, state_cache, buf_cache, e);
                                    }
                                }
                            }
                            _ => {
                                // Steady phases: restore the population,
                                // paced inside the backlog so a healthy
                                // server never sheds its own dials.
                                let deficit = target_per_shard.saturating_sub(table.len());
                                let free = params.backlog_cap.saturating_sub(shard.backlog_len());
                                for _ in 0..deficit.min(free) {
                                    if shard.dial(COOKIE_HONEST).is_err() {
                                        ShardGauges::bump(&shard_gauges.shed_accepts);
                                    }
                                }
                            }
                        }

                        // 2. Accept — or shed, when pressure is hard or
                        // the shard is at its connection cap.
                        if hard_pressure || table.len() >= max_conns {
                            while shard.shed_dial().is_some() {
                                ShardGauges::bump(&shard_gauges.shed_accepts);
                            }
                        } else {
                            for _ in 0..params.accept_budget {
                                match shard.accept() {
                                    None => break,
                                    Some(Err(NetError::Refused)) => {
                                        ShardGauges::bump(&shard_gauges.refused_accepts);
                                    }
                                    Some(Err(_)) => {
                                        ShardGauges::bump(&shard_gauges.alloc_drops);
                                    }
                                    Some(Ok((conn, cookie))) => {
                                        let state = alloc_with_retry(
                                            state_cache,
                                            shard_gauges,
                                            params.alloc_retry_budget,
                                            &mut hist,
                                        );
                                        let buf = alloc_with_retry(
                                            buf_cache,
                                            shard_gauges,
                                            params.alloc_retry_budget,
                                            &mut hist,
                                        );
                                        match (state, buf) {
                                            (Some(state), Some(buf)) => {
                                                // SAFETY: fresh exclusive
                                                // objects, sized above.
                                                unsafe {
                                                    state.as_ptr().cast::<u64>().write(conn.0);
                                                    buf.as_ptr().cast::<u64>().write(conn.0);
                                                }
                                                let attacker = cookie == COOKIE_ATTACKER;
                                                let deadline = now_ms
                                                    + if attacker {
                                                        params.slow_deadline_ms
                                                    } else {
                                                        params.idle_timeout_ms
                                                    };
                                                shard.arm_deadline(conn, deadline);
                                                table.insert(ConnEntry {
                                                    conn,
                                                    state,
                                                    buf,
                                                    attacker,
                                                    deadline,
                                                });
                                                ShardGauges::bump(&shard_gauges.accepted);
                                            }
                                            (state, buf) => {
                                                // Retry budget exhausted:
                                                // drop the connection,
                                                // never panic.
                                                // SAFETY: never published.
                                                unsafe {
                                                    if let Some(p) = state {
                                                        state_cache.free(p);
                                                    }
                                                    if let Some(p) = buf {
                                                        buf_cache.free(p);
                                                    }
                                                }
                                                let _ = shard.close(conn);
                                                ShardGauges::bump(&shard_gauges.alloc_drops);
                                            }
                                        }
                                    }
                                }
                            }
                        }

                        // 3. Service the Zipfian request mix — unless
                        // hard pressure calls for evicting idle
                        // connections instead.
                        if hard_pressure {
                            for _ in 0..params.request_budget.min(table.len()) {
                                let Some(e) = table.entries.last() else { break };
                                let conn = e.conn.0;
                                if let Some(e) = table.remove(conn) {
                                    close_entry(shard, state_cache, buf_cache, e);
                                    ShardGauges::bump(&shard_gauges.shed_conns);
                                }
                            }
                        } else if ph != PHASE_ESTABLISH {
                            for _ in 0..params.request_budget {
                                if table.len() == 0 {
                                    break;
                                }
                                let i = rng.gen_range(0..table.entries.len());
                                if table.entries[i].attacker {
                                    // Slowloris: never completes a
                                    // request; just sits on its deadline.
                                    continue;
                                }
                                let conn = table.entries[i].conn;
                                let key = zipf.sample(rng.gen::<f64>());
                                // Popular keys are small cached objects;
                                // the long tail serves bigger documents.
                                let bytes = 64usize << (key % 5).min(4);
                                let scratch = alloc_with_retry(
                                    scratch_cache,
                                    shard_gauges,
                                    params.alloc_retry_budget,
                                    &mut hist,
                                );
                                let Some(scratch) = scratch else { continue };
                                // SAFETY: fresh exclusive object.
                                unsafe {
                                    std::ptr::write_bytes(scratch.as_ptr(), 0x5A, 64);
                                    scratch_cache.free(scratch);
                                }
                                match shard.net().request_response(conn, bytes) {
                                    Ok(()) => {
                                        ShardGauges::bump(&shard_gauges.requests);
                                        let deadline = now_ms + params.idle_timeout_ms;
                                        table.entries[i].deadline = deadline;
                                        shard.arm_deadline(conn, deadline);
                                    }
                                    Err(NetError::WouldBlock) => {
                                        // Peer stalled mid-read: count it
                                        // and leave the deadline armed —
                                        // persistent stalling is evicted,
                                        // not waited on.
                                        ShardGauges::bump(&shard_gauges.read_stalls);
                                    }
                                    Err(_) => {}
                                }
                            }
                        }

                        // 4. Deadline sweep: evict expired connections
                        // (lazily-cancelled refreshes are skipped by the
                        // deadline comparison).
                        expired.clear();
                        shard.poll_deadlines(now_ms, &mut expired);
                        for &(conn, deadline) in &expired {
                            let Some(&i) = table.index.get(&conn) else { continue };
                            if table.entries[i].deadline != deadline {
                                continue;
                            }
                            if ph == PHASE_ESTABLISH && !table.entries[i].attacker {
                                // No request is serviced before establish
                                // completes, so "idle" is meaningless here;
                                // evicting would cap the population at the
                                // accept-rate x timeout equilibrium and
                                // large targets could never establish.
                                let next = now_ms + params.idle_timeout_ms;
                                table.entries[i].deadline = next;
                                let conn = table.entries[i].conn;
                                shard.arm_deadline(conn, next);
                                continue;
                            }
                            if let Some(e) = table.remove(conn) {
                                close_entry(shard, state_cache, buf_cache, e);
                                ShardGauges::bump(&shard_gauges.timeouts);
                            }
                        }

                        shard_gauges.set_open(table.len() as u64);
                        std::thread::yield_now();
                    }

                    // Shutdown: drain everything still open.
                    for e in std::mem::take(&mut table.entries) {
                        close_entry(shard, state_cache, buf_cache, e);
                    }
                    shard_gauges.set_open(0);
                    hist
                })
                .expect("spawn reactor shard");
            reactors.push(handle);
        }

        // ---- Driver: phase clock + sampling. ----
        let sample = |max_garbage: &mut usize,
                      pressure_hard: &mut bool,
                      established_peak: &mut usize,
                      track_garbage: bool| {
            let level = state_cache
                .stats()
                .pressure_level
                .max(buf_cache.stats().pressure_level)
                .max(scratch_cache.stats().pressure_level);
            pressure.store(level, Ordering::Relaxed);
            if level >= 2 {
                *pressure_hard = true;
            }
            *established_peak = (*established_peak).max(net.connection_count());
            if track_garbage {
                let outstanding = state_cache.deferred_outstanding()
                    + buf_cache.deferred_outstanding()
                    + scratch_cache.deferred_outstanding()
                    + net.deferred_outstanding();
                *max_garbage = (*max_garbage).max(outstanding);
            }
        };
        let pace = |ms: u64,
                    max_garbage: &mut usize,
                    pressure_hard: &mut bool,
                    established_peak: &mut usize,
                    track_garbage: bool| {
            let deadline = Instant::now() + Duration::from_millis(ms);
            while Instant::now() < deadline {
                sample(max_garbage, pressure_hard, established_peak, track_garbage);
                std::thread::sleep(Duration::from_millis(2));
            }
        };

        // Establish until the population is (nearly) at target.
        let establish_deadline = Instant::now() + params.establish_timeout;
        loop {
            sample(
                &mut max_garbage_storm,
                &mut pressure_hard_seen,
                &mut established_peak,
                false,
            );
            let open = net.connection_count();
            if open * 100 >= params.connections * 99 {
                break;
            }
            if Instant::now() > establish_deadline {
                violations.push(format!(
                    "establish timed out: {open}/{} connections after {:?}",
                    params.connections, params.establish_timeout
                ));
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        baseline_used_bytes = bed.pages().used_bytes();
        row_establish_end = gauges.totals();

        phase.store(PHASE_BASELINE, Ordering::Release);
        pace(
            params.baseline_ms,
            &mut max_garbage_storm,
            &mut pressure_hard_seen,
            &mut established_peak,
            false,
        );
        row_baseline_end = gauges.totals();

        phase.store(PHASE_STORM, Ordering::Release);
        pace(
            params.storm_ms,
            &mut max_garbage_storm,
            &mut pressure_hard_seen,
            &mut established_peak,
            true,
        );
        row_storm_end = gauges.totals();

        phase.store(PHASE_RECOVERY, Ordering::Release);
        pace(
            params.recovery_ms,
            &mut max_garbage_storm,
            &mut pressure_hard_seen,
            &mut established_peak,
            false,
        );
        // The nominal window is a floor, not the verdict: refilling the
        // post-storm deficit is accept-throughput-bound, so on a starved
        // machine (CI sharing one core across every shard) the pumps may
        // still be mid-refill when the window closes. Grant a bounded
        // grace period for the population to come back; the recovery gate
        // then judges what the server converged to, not scheduler luck.
        let recovery_grace = Instant::now()
            + Duration::from_millis(params.recovery_ms.max(100) * 9)
                .min(Duration::from_secs(30));
        while net.connection_count() * 100 < params.connections * 95
            && Instant::now() < recovery_grace
        {
            sample(
                &mut max_garbage_storm,
                &mut pressure_hard_seen,
                &mut established_peak,
                false,
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        row_recovery_end = gauges.totals();
        open_at_end = net.connection_count();
        // Memory recovery is judged after reclamation catches up — under
        // procrastinated reclamation the storm's deferred backlog drains
        // lazily, so the gate measures the settled state, not the race
        // between the sampler and the collector. Service is still up
        // (reactors keep running) while these drains wait.
        state_cache.quiesce();
        buf_cache.quiesce();
        scratch_cache.quiesce();
        net.quiesce();
        recovered_used_bytes = bed.pages().used_bytes();

        phase.store(PHASE_SHUTDOWN, Ordering::Release);
        for handle in reactors {
            match handle.join() {
                Ok(hist) => merged_hist.merge(&hist.snapshot()),
                Err(_) => panics += 1,
            }
        }
        stop.store(true, Ordering::Relaxed);
        let _ = gp_prober.join();
    });

    // Everything is closed; drain the deferred backlog completely.
    net.quiesce();
    state_cache.quiesce();
    buf_cache.quiesce();
    scratch_cache.quiesce();

    let deferred_outstanding_end = state_cache.deferred_outstanding()
        + buf_cache.deferred_outstanding()
        + scratch_cache.deferred_outstanding()
        + net.deferred_outstanding();
    let mut live_leaks = Vec::new();
    for (name, stats) in net.stats() {
        if stats.live_objects != 0 {
            live_leaks.push(format!("{name}: {}", stats.live_objects));
        }
    }
    for (name, cache) in [
        ("conn_state", &state_cache),
        ("parse_buf", &buf_cache),
        ("req_scratch", &scratch_cache),
    ] {
        let live = cache.stats().live_objects;
        if live != 0 {
            live_leaks.push(format!("{name}: {live}"));
        }
    }

    let rcu_stats = bed.rcu().stats();
    let gp_latency = bed
        .rcu()
        .telemetry()
        .histogram("gp_latency_ns")
        .and_then(HistogramSnapshot::percentiles);
    let blame = bed.rcu().blame_reports();
    let reclaim = bed.reclaim_stats();
    let peak_bytes = bed.pages().peak_bytes();

    // Teardown: drop the net layer and caches, then every page must be
    // back at the allocator.
    drop(net);
    drop(state_cache);
    drop(buf_cache);
    drop(scratch_cache);
    let used_bytes_after_teardown = bed.pages().used_bytes();

    let totals = gauges.totals();
    let baseline = row_delta(&row_baseline_end, &row_establish_end);
    let storm = row_delta(&row_storm_end, &row_baseline_end);
    let recovery = row_delta(&row_recovery_end, &row_storm_end);
    let alloc_latency = merged_hist.percentiles();

    // ---- Degradation gates. ----
    if panics != 0 {
        violations.push(format!("{panics} reactor panics"));
    }
    if storm.shed_accepts == 0 {
        violations.push("storm never tripped accept backpressure (shed_accepts == 0)".into());
    }
    if totals.timeouts == 0 {
        violations.push("deadline wheel never evicted a connection (timeouts == 0)".into());
    }
    match alloc_latency {
        None => violations.push("no alloc-path latency samples recorded".into()),
        Some(p) => {
            if p.p999 > params.p999_alloc_bound_ns {
                violations.push(format!(
                    "alloc-path p99.9 {} ns exceeds bound {} ns",
                    p.p999, params.p999_alloc_bound_ns
                ));
            }
        }
    }
    if params.stalled_shard {
        if rcu_stats.stall_warnings == 0 {
            violations.push("parked shard never tripped the stall watchdog".into());
        }
        if robust && max_garbage_storm > params.garbage_bound {
            violations.push(format!(
                "robust backend {backend:?} let garbage reach {max_garbage_storm} \
                 (bound {}) with a shard parked",
                params.garbage_bound
            ));
        }
        if params.require_epoch_contrast
            && !robust
            && max_garbage_storm <= params.garbage_bound
        {
            violations.push(format!(
                "epoch backend held garbage to {max_garbage_storm} (bound {}) — \
                 the stalled-reader contrast went missing",
                params.garbage_bound
            ));
        }
    }
    if recovery.requests == 0 {
        violations.push("no requests served during recovery".into());
    }
    if open_at_end * 100 < params.connections * 90 {
        violations.push(format!(
            "service did not recover: {open_at_end}/{} connections at end",
            params.connections
        ));
    }
    let recovered_pressure = pressure.load(Ordering::Relaxed);
    if recovered_pressure >= 2 {
        violations.push(format!(
            "pressure still hard ({recovered_pressure}) at the end of recovery"
        ));
    }
    // The page-level baseline gate is the *baseline allocator's* contract:
    // SLUB shrinks empty slabs back to the page allocator once the drain
    // completes. Prudence deliberately retains latent slabs for reuse —
    // holding pages after the storm is the procrastination under test, so
    // its memory-recovery evidence is the drained deferred backlog and the
    // exact teardown-to-zero gates instead.
    // How fragmented the survivors end up is seed- and timing-dependent,
    // so the bound is the looser of "factor × baseline" and "gave back at
    // least half the storm overshoot" — either way a run that returns
    // nothing (recovered ≈ peak) fails.
    let recovery_bound = ((baseline_used_bytes as f64 * params.recovery_factor) as usize)
        .max(baseline_used_bytes + (peak_bytes - baseline_used_bytes) / 2);
    if kind == AllocatorKind::Slub && recovered_used_bytes > recovery_bound {
        violations.push(format!(
            "memory did not return to baseline: {recovered_used_bytes} used vs \
             {baseline_used_bytes} baseline (bound {recovery_bound})"
        ));
    }
    if deferred_outstanding_end != 0 {
        violations.push(format!(
            "{deferred_outstanding_end} deferred objects outstanding after quiesce"
        ));
    }
    if !live_leaks.is_empty() {
        violations.push(format!("live objects after teardown: {}", live_leaks.join(", ")));
    }
    if used_bytes_after_teardown != 0 {
        violations.push(format!(
            "{used_bytes_after_teardown} bytes still used after teardown"
        ));
    }
    if let Some(limit) = params.limit_bytes {
        if peak_bytes > limit {
            violations.push(format!("peak {peak_bytes} exceeded limit {limit}"));
        }
    }

    ServerReport {
        allocator: kind.label().to_owned(),
        reclaim_backend: format!("{backend}"),
        seed: params.seed,
        shards: nshards,
        target_connections: params.connections,
        established_peak,
        open_at_end,
        elapsed_secs: start.elapsed().as_secs_f64(),
        totals,
        per_shard: gauges.rows(),
        baseline,
        storm,
        recovery,
        alloc_latency,
        gp_latency,
        alloc_hist: merged_hist,
        pressure_hard_seen,
        max_garbage_storm,
        garbage_bound: params.garbage_bound,
        stalled_shard: params.stalled_shard,
        stall_warnings: rcu_stats.stall_warnings,
        expedited_gps: rcu_stats.expedited_gps,
        membarrier_advances: rcu_stats.membarrier_advances,
        fallback_fence_advances: rcu_stats.fallback_fence_advances,
        injected_accept_refusals: faults.injected(site::NET_ACCEPT),
        injected_read_stalls: faults.injected(site::NET_READ_STALL),
        injected_oom: faults.injected(site::SLUB_GROW) + faults.injected(site::PRUDENCE_GROW),
        blame,
        reclaim,
        baseline_used_bytes,
        recovered_used_bytes,
        peak_bytes,
        deferred_outstanding_end,
        used_bytes_after_teardown,
        panics,
        violations,
    }
}

/// Counter delta between two totals rows; the open-connection gauge keeps
/// the later value.
fn row_delta(now: &ShardRow, then: &ShardRow) -> ShardRow {
    ShardRow {
        accepted: now.accepted - then.accepted,
        shed_accepts: now.shed_accepts - then.shed_accepts,
        refused_accepts: now.refused_accepts - then.refused_accepts,
        shed_conns: now.shed_conns - then.shed_conns,
        timeouts: now.timeouts - then.timeouts,
        read_stalls: now.read_stalls - then.read_stalls,
        requests: now.requests - then.requests,
        alloc_retries: now.alloc_retries - then.alloc_retries,
        alloc_drops: now.alloc_drops - then.alloc_drops,
        open_conns: now.open_conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServerParams {
        ServerParams {
            connections: 1_500,
            baseline_ms: 50,
            storm_ms: 120,
            recovery_ms: 180,
            ..ServerParams::smoke()
        }
    }

    #[test]
    fn zipf_sampler_is_heavily_skewed() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            if z.sample(rng.gen::<f64>()) < 10 {
                head += 1;
            }
        }
        // Top-10 of 100 keys should draw well over half the traffic.
        assert!(head > N / 2, "head draw {head}/{N}");
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(1.0), 99);
    }

    #[test]
    fn storm_and_recovery_gates_hold_on_both_allocators() {
        for kind in AllocatorKind::BOTH {
            let r = run_server(kind, &tiny());
            assert!(r.passed(), "{kind}: {:?}\n{}", r.violations, r.render());
            assert!(r.totals.requests > 0);
            assert!(r.storm.shed_accepts > 0, "storm must shed at the backlog");
            assert!(r.totals.timeouts > 0, "slowloris conns must be evicted");
            assert_eq!(r.deferred_outstanding_end, 0);
            assert_eq!(r.used_bytes_after_teardown, 0);
        }
    }

    #[test]
    fn retry_backoff_engages_under_grow_faults() {
        let params = ServerParams {
            grow_fault_p: 0.4,
            // Retries stretch the alloc path by design here; only the
            // wedge bound applies.
            p999_alloc_bound_ns: 30_000_000_000,
            stalled_shard: false,
            ..tiny()
        };
        let r = run_server(AllocatorKind::Prudence, &params);
        assert!(
            r.totals.alloc_retries > 0,
            "p=0.4 grow faults must force retries: {}",
            r.render()
        );
        assert_eq!(r.panics, 0);
    }

    #[test]
    fn hard_pressure_trips_load_shedding() {
        // Low watermarks + epoch backend + a parked shard: storm churn
        // defers faster than reclamation drains, pressure goes hard, and
        // the reactors must shed instead of panicking.
        let params = ServerParams {
            pressure_watermarks: Some((16, 48)),
            reclaim: Some(ReclaimBackend::Epoch),
            churn_per_iter: 64,
            ..tiny()
        };
        let r = run_server(AllocatorKind::Prudence, &params);
        assert!(r.pressure_hard_seen, "watermarks (16,48) never went hard: {}", r.render());
        assert!(
            r.totals.shed_conns > 0 || r.storm.shed_accepts > 0,
            "hard pressure must shed: {}",
            r.render()
        );
        assert_eq!(r.panics, 0);
        assert_eq!(r.deferred_outstanding_end, 0);
    }

    #[test]
    fn robust_backend_bounds_garbage_with_parked_shard() {
        let params = ServerParams {
            reclaim: Some(ReclaimBackend::Hp),
            ..tiny()
        };
        let r = run_server(AllocatorKind::Prudence, &params);
        assert!(r.passed(), "{:?}\n{}", r.violations, r.render());
        assert!(
            r.max_garbage_storm <= r.garbage_bound,
            "hp must bound garbage: {}",
            r.render()
        );
        assert!(r.stall_warnings >= 1, "parked shard must be blamed");
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = run_server(
            AllocatorKind::Slub,
            &ServerParams {
                connections: 400,
                shards: 2,
                baseline_ms: 30,
                storm_ms: 60,
                recovery_ms: 90,
                ..ServerParams::smoke()
            },
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: ServerReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.allocator, r.allocator);
        assert_eq!(back.totals, r.totals);
        assert_eq!(back.violations, r.violations);
    }
}
