//! §3.3 cost table: cache hit vs object-cache refill vs slab-cache grow.
//!
//! The paper motivates Prudence with a measurement: "the object allocation
//! cost, compared to cache hit, is 4× expensive if it involves object
//! cache refill and 14× expensive if it involves slab cache grow". This
//! module measures the same three quantities on the baseline allocator:
//! the cost of an allocation served from the object cache, of one that
//! triggers a refill, and of one that triggers a slab grow. Refill and
//! grow costs are extracted from mixed regimes using the allocator's own
//! operation counters.

use serde::{Deserialize, Serialize};
use std::time::Instant;

use pbs_rcu::RcuConfig;

use crate::{AllocatorKind, Testbed};

/// Measured §3.3 allocation costs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllocCostReport {
    /// Nanoseconds for an allocation served from the object cache.
    pub hit_ns: f64,
    /// Nanoseconds for an allocation that triggers an object-cache refill.
    pub refill_ns: f64,
    /// Nanoseconds for an allocation that triggers a slab-cache grow.
    pub grow_ns: f64,
}

impl AllocCostReport {
    /// Refill cost as a multiple of the hit cost (paper: ≈4×).
    pub fn refill_multiple(&self) -> f64 {
        self.refill_ns / self.hit_ns
    }

    /// Grow cost as a multiple of the hit cost (paper: ≈14×).
    pub fn grow_multiple(&self) -> f64 {
        self.grow_ns / self.hit_ns
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        format!(
            "alloc cost (§3.3): hit {:.0} ns | with refill {:.0} ns ({:.1}x) | with grow {:.0} ns ({:.1}x)",
            self.hit_ns,
            self.refill_ns,
            self.refill_multiple(),
            self.grow_ns,
            self.grow_multiple()
        )
    }
}

/// Measures the three §3.3 costs for `object_size`-byte objects.
///
/// * **hit** — steady alloc/free of one object: every allocation is a
///   cache hit.
/// * **refill** — cycle a working set of twice the object cache through
///   alloc/free batches; the measured time minus the hit share, divided
///   by the allocator's refill counter, gives the extra cost a refill
///   adds to an allocation.
/// * **grow** — allocate-only from a cold cache; subtracting the hit and
///   refill shares and dividing by the grow counter gives the extra cost
///   a grow adds.
pub fn measure_alloc_cost(object_size: usize, iterations: u64) -> AllocCostReport {
    let bed = Testbed::new(AllocatorKind::Slub, 1, RcuConfig::eager(), None);

    // Regime 1: pure hits. The loop measures alloc+free pairs; an
    // allocation alone is roughly half a pair (the free path mirrors it).
    // All three regimes disable the per-CPU fast path: §3.3 quantifies
    // the *baseline* object-cache/refill/grow costs that motivate the
    // design, so the measurement must reach the regular hit path.
    let cache = bed.create_cache("cost-hit", object_size);
    cache.fastpath_set_enabled(false);
    let hit_pair_ns = {
        let obj = cache.allocate().expect("warmup allocation");
        // SAFETY: freed exactly once here; reallocated in the loop.
        unsafe { cache.free(obj) };
        let start = Instant::now();
        for _ in 0..iterations {
            let o = cache.allocate().expect("hit allocation");
            // SAFETY: freed exactly once, immediately.
            unsafe { cache.free(o) };
        }
        start.elapsed().as_nanos() as f64 / iterations as f64
    };
    let hit_ns = hit_pair_ns / 2.0;

    // Regime 2: refill/flush cycling. Extract the per-refill surcharge
    // from the allocator's own counters.
    let refill_extra_ns = {
        let cache = bed.create_cache("cost-refill", object_size);
        cache.fastpath_set_enabled(false);
        let batch = 2 * pbs_alloc_api::SizingPolicy::for_object_size(object_size).object_cache_size;
        let mut held = Vec::with_capacity(batch);
        // Warm: materialize the slabs so the regime refills, not grows.
        for _ in 0..batch {
            held.push(cache.allocate().expect("warm"));
        }
        for o in held.drain(..) {
            // SAFETY: each held object freed once.
            unsafe { cache.free(o) };
        }
        let before = cache.stats();
        let rounds = (iterations / batch as u64).max(1);
        let start = Instant::now();
        for _ in 0..rounds {
            for _ in 0..batch {
                held.push(cache.allocate().expect("refill regime"));
            }
            for o in held.drain(..) {
                // SAFETY: as above.
                unsafe { cache.free(o) };
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let after = cache.stats();
        let allocs = (after.alloc_requests - before.alloc_requests) as f64;
        let refills = ((after.refills - before.refills) as f64).max(1.0);
        // Frees include flush work; attribute the non-hit surplus of the
        // whole regime to the refill/flush pairs, as the paper's churn
        // accounting does.
        ((elapsed - allocs * hit_pair_ns) / refills).max(0.0)
    };

    // Regime 3: allocate-only growth from a cold cache.
    let grow_extra_ns = {
        let cache = bed.create_cache("cost-grow", object_size);
        cache.fastpath_set_enabled(false);
        let n = iterations.min(200_000) as usize;
        let mut held = Vec::with_capacity(n);
        let before = cache.stats();
        let start = Instant::now();
        for _ in 0..n {
            held.push(cache.allocate().expect("grow regime"));
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let after = cache.stats();
        let allocs = (after.alloc_requests - before.alloc_requests) as f64;
        let refills = (after.refills - before.refills) as f64;
        let grows = ((after.grows - before.grows) as f64).max(1.0);
        for o in held {
            // SAFETY: each held object freed once.
            unsafe { cache.free(o) };
        }
        ((elapsed - allocs * hit_ns - refills * refill_extra_ns) / grows).max(0.0)
    };

    AllocCostReport {
        hit_ns,
        refill_ns: hit_ns + refill_extra_ns,
        grow_ns: hit_ns + refill_extra_ns + grow_extra_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_are_ordered() {
        let report = measure_alloc_cost(512, 100_000);
        assert!(report.hit_ns > 0.0);
        // The qualitative §3.3 ordering: hit < with-refill < with-grow.
        assert!(
            report.refill_multiple() > 1.2,
            "refill {:.1} !>> hit {:.1}",
            report.refill_ns,
            report.hit_ns
        );
        assert!(
            report.grow_multiple() > report.refill_multiple(),
            "grow {:.1} !> refill {:.1}",
            report.grow_ns,
            report.refill_ns
        );
        assert!(report.render().contains("ns"));
    }
}
