//! Captures (or validates) a telemetry dump.
//!
//! ```text
//! # Run a short two-allocator workload and write <prefix>.prom +
//! # <prefix>.trace.json (default prefix: target/telemetry/trace_dump):
//! cargo run --release -p pbs-workloads --bin trace_dump [-- <prefix>]
//!
//! # Validate a previously written dump (CI schema check); exits nonzero
//! # on a malformed exposition or trace:
//! cargo run --release -p pbs-workloads --bin trace_dump -- --validate <prefix>
//! ```
//!
//! The `.trace.json` file loads directly in chrome://tracing or
//! <https://ui.perfetto.dev>: each component (RCU domain, caches) is a
//! process, each ring lane a thread, each trace record an instant event.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pbs_alloc_api::TelemetrySnapshot;
use pbs_rcu::RcuConfig;
use pbs_workloads::telemetry_export::{
    validate_chrome_trace, validate_prometheus, write_snapshot_json, write_telemetry,
};
use pbs_workloads::{AllocatorKind, Testbed};

/// Runs a short alloc/free_deferred loop on one allocator so every event
/// family (grace periods, latent-cache traffic, deferred frees, slab
/// movement) shows up in the dump.
fn exercise(kind: AllocatorKind) -> TelemetrySnapshot {
    let bed = Testbed::new(kind, 2, RcuConfig::eager(), Some(64 << 20));
    let cache = bed.create_cache(&format!("{}-demo", kind.label()), 256);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for _ in 0..2_000 {
                    let obj = cache.allocate().expect("demo workload within budget");
                    // SAFETY: fresh exclusive object.
                    unsafe { cache.free_deferred(obj) };
                }
            });
        }
    });
    bed.rcu().synchronize();
    cache.quiesce();
    bed.telemetry()
}

fn validate(prefix: &Path) -> Result<(), String> {
    // Append the suffixes exactly as `write_telemetry` does;
    // `Path::with_extension` would *replace* a trailing `.segment` of the
    // prefix and validate files the dump never wrote.
    let mut prom_path = prefix.as_os_str().to_owned();
    prom_path.push(".prom");
    let prom_path = PathBuf::from(prom_path);
    let mut trace_path = prefix.as_os_str().to_owned();
    trace_path.push(".trace.json");
    let trace_path = PathBuf::from(trace_path);
    let prom = std::fs::read_to_string(&prom_path)
        .map_err(|e| format!("read {}: {e}", prom_path.display()))?;
    validate_prometheus(&prom).map_err(|e| format!("{}: {e}", prom_path.display()))?;
    println!("ok: {} is valid Prometheus exposition", prom_path.display());
    let trace = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("read {}: {e}", trace_path.display()))?;
    validate_chrome_trace(&trace).map_err(|e| format!("{}: {e}", trace_path.display()))?;
    println!("ok: {} is valid chrome://tracing JSON", trace_path.display());
    Ok(())
}

fn dump(prefix: &Path) -> Result<(), String> {
    let mut snap = exercise(AllocatorKind::Slub);
    snap.merge(&exercise(AllocatorKind::Prudence));
    // Site attribution is process-global and each capture is cumulative,
    // so merging two same-process captures double-counts; the final
    // report alone is the truth.
    snap.sites = pbs_telemetry::site::report();
    let (prom, trace) =
        write_telemetry(prefix, &snap).map_err(|e| format!("write {}: {e}", prefix.display()))?;
    let snapshot = write_snapshot_json(prefix, &snap)
        .map_err(|e| format!("write {}: {e}", prefix.display()))?;
    println!("wrote {}", prom.display());
    println!("wrote {} (load it in chrome://tracing)", trace.display());
    println!("wrote {} (render it with the doctor bin)", snapshot.display());
    println!(
        "captured {} trace events across {} caches + the RCU domain",
        snap.total_events(),
        snap.caches.len()
    );
    for (kind, count) in &snap.rcu_telemetry.event_counts {
        if *count > 0 {
            println!("  rcu {kind}: {count}");
        }
    }
    for cache in &snap.caches {
        for (kind, count) in &cache.telemetry.event_counts {
            if *count > 0 {
                println!("  {} {kind}: {count}", cache.name);
            }
        }
    }
    // Never ship a dump the validators would reject.
    validate(prefix)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--validate") => match args.get(1) {
            Some(prefix) => validate(&PathBuf::from(prefix)),
            None => Err("usage: trace_dump --validate <prefix>".to_owned()),
        },
        Some(prefix) => dump(&PathBuf::from(prefix)),
        None => dump(&PathBuf::from("target/telemetry/trace_dump")),
    };
    if let Err(msg) = result {
        eprintln!("trace_dump: {msg}");
        std::process::exit(1);
    }
}
