//! Standalone Figure 6 sweep with per-run allocator attributes.
//!
//! ```text
//! cargo run --release -p pbs-workloads --bin microbench [pairs_per_thread] [--telemetry PREFIX]
//! ```
//!
//! With `--telemetry`, the merged telemetry of every (size, allocator)
//! run is written to `PREFIX.prom` and `PREFIX.trace.json`.

use pbs_alloc_api::TelemetrySnapshot;
use pbs_workloads::figures::FIG6_SIZES;
use pbs_workloads::microbench::{run_microbench, MicrobenchParams};
use pbs_workloads::telemetry_export::{accumulate_labeled, telemetry_arg, write_telemetry};
use pbs_workloads::AllocatorKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pairs: u64 = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let telemetry_prefix = telemetry_arg(&args);
    let params = MicrobenchParams {
        pairs_per_thread: pairs,
        ..MicrobenchParams::default()
    };
    println!(
        "Figure 6 microbenchmark: {} threads x {} kmalloc/kfree_deferred pairs",
        params.threads, params.pairs_per_thread
    );
    println!(
        "{:<9} {:>5} {:>12} {:>7} {:>9} {:>9} {:>7} {:>7} {:>6}",
        "alloc", "size", "pairs/s", "hit%", "refills", "flushes", "grows", "shrinks", "peak"
    );
    let mut telemetry = TelemetrySnapshot::default();
    for size in FIG6_SIZES {
        for kind in AllocatorKind::BOTH {
            let point = run_microbench(kind, size, &params);
            let s = &point.stats;
            println!(
                "{:<9} {:>5} {:>12.0} {:>6.1}% {:>9} {:>9} {:>7} {:>7} {:>6}",
                kind.label(),
                size,
                point.pairs_per_sec,
                s.hit_percent(),
                s.refills,
                s.flushes,
                s.grows,
                s.shrinks,
                s.slabs_peak
            );
            if telemetry_prefix.is_some() {
                accumulate_labeled(&mut telemetry, kind.label(), point.telemetry);
            }
        }
    }
    if let Some(prefix) = telemetry_prefix {
        let (prom, trace) = write_telemetry(&prefix, &telemetry).expect("write telemetry");
        println!("wrote {}", prom.display());
        println!("wrote {} (load it in chrome://tracing)", trace.display());
    }
}
