//! Standalone Figure 6 sweep with per-run allocator attributes.
//!
//! ```text
//! cargo run --release -p pbs-workloads --bin microbench [pairs_per_thread]
//! ```

use pbs_workloads::figures::FIG6_SIZES;
use pbs_workloads::microbench::{run_microbench, MicrobenchParams};
use pbs_workloads::AllocatorKind;

fn main() {
    let pairs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let params = MicrobenchParams {
        pairs_per_thread: pairs,
        ..MicrobenchParams::default()
    };
    println!(
        "Figure 6 microbenchmark: {} threads x {} kmalloc/kfree_deferred pairs",
        params.threads, params.pairs_per_thread
    );
    println!(
        "{:<9} {:>5} {:>12} {:>7} {:>9} {:>9} {:>7} {:>7} {:>6}",
        "alloc", "size", "pairs/s", "hit%", "refills", "flushes", "grows", "shrinks", "peak"
    );
    for size in FIG6_SIZES {
        for kind in AllocatorKind::BOTH {
            let point = run_microbench(kind, size, &params);
            let s = &point.stats;
            println!(
                "{:<9} {:>5} {:>12.0} {:>6.1}% {:>9} {:>9} {:>7} {:>7} {:>6}",
                kind.label(),
                size,
                point.pairs_per_sec,
                s.hit_percent(),
                s.refills,
                s.flushes,
                s.grows,
                s.shrinks,
                s.slabs_peak
            );
        }
    }
}
