//! Offline reclamation doctor: renders the diagnosis from a dumped
//! telemetry snapshot, no live process required.
//!
//! ```text
//! # From a raw snapshot dump (trace_dump writes <prefix>.snapshot.json):
//! cargo run --release -p pbs-workloads --bin doctor -- <snapshot.json>
//!
//! # The /snapshot response of a live endpoint works too:
//! curl -s http://127.0.0.1:PORT/snapshot > snap.json && doctor snap.json
//! ```
//!
//! Accepts either a bare [`TelemetrySnapshot`] or the `/snapshot`
//! endpoint's `{telemetry, doctor}` wrapper.

use pbs_alloc_api::TelemetrySnapshot;
use pbs_workloads::doctor::{render_doctor, SnapshotResponse};

fn load(path: &str) -> Result<TelemetrySnapshot, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if let Ok(wrapped) = serde_json::from_str::<SnapshotResponse>(&text) {
        return Ok(wrapped.telemetry);
    }
    serde_json::from_str::<TelemetrySnapshot>(&text)
        .map_err(|e| format!("{path} is neither a TelemetrySnapshot nor a /snapshot response: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: doctor <snapshot.json>");
        std::process::exit(2);
    };
    match load(path) {
        Ok(snap) => print!("{}", render_doctor(&snap)),
        Err(msg) => {
            eprintln!("doctor: {msg}");
            std::process::exit(1);
        }
    }
}
