//! server_bench — the sharded server scenario as a committed benchmark.
//!
//! Runs [`pbs_workloads::apps::run_server`] at a chosen scale, prints the
//! per-phase degradation report, and (under `--bench`) merges the full
//! [`ServerReport`]s into `BENCH_server.json` under a run label with the
//! same provenance metadata as the other BENCH files. The process exits
//! non-zero if any run violates a degradation gate, so the same binary is
//! the CI smoke check (`--smoke`) and the full-scale capture.
//!
//! Usage:
//!
//! ```text
//! server_bench [label] [--smoke] [--bench] [--out-dir DIR]
//!              [--connections N] [--shards N] [--seed N]
//!              [--allocator slub|prudence|both] [--reclaim epoch|hp|hyaline]
//!              [--baseline-ms N] [--storm-ms N] [--recovery-ms N]
//!              [--no-stall] [--garbage-bound N]
//! server_bench --validate [FILE]
//! ```
//!
//! `--validate` checks that an existing `BENCH_server.json` parses and
//! that every stored report round-trips through the [`ServerReport`]
//! schema — the CI guard against committing a stale or hand-mangled file.

use std::time::Duration;

use pbs_rcu::reclaim::ReclaimBackend;
use pbs_workloads::apps::{run_server, ServerParams, ServerReport};
use pbs_workloads::AllocatorKind;
use serde::{Deserialize as _, Serialize};
use serde_json::Value;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut label = None;
    let mut out_dir = ".".to_string();
    let mut bench = false;
    let mut smoke = false;
    let mut validate: Option<Option<String>> = None;
    let mut allocators = AllocatorKind::BOTH.to_vec();
    let mut params = ServerParams {
        shards: 8,
        connections: 1_000_000,
        baseline_ms: 2_000,
        storm_ms: 3_000,
        recovery_ms: 4_000,
        establish_timeout: Duration::from_secs(600),
        ..ServerParams::default()
    };
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--bench" => bench = true,
            "--validate" => validate = Some(args.next()),
            "--out-dir" => out_dir = next("--out-dir"),
            "--connections" => params.connections = next("--connections").parse().expect("count"),
            "--shards" => params.shards = next("--shards").parse().expect("count"),
            "--seed" => params.seed = next("--seed").parse().expect("seed"),
            "--baseline-ms" => params.baseline_ms = next("--baseline-ms").parse().expect("ms"),
            "--storm-ms" => params.storm_ms = next("--storm-ms").parse().expect("ms"),
            "--recovery-ms" => params.recovery_ms = next("--recovery-ms").parse().expect("ms"),
            "--garbage-bound" => {
                params.garbage_bound = next("--garbage-bound").parse().expect("count");
            }
            "--no-stall" => params.stalled_shard = false,
            "--allocator" => {
                allocators = match next("--allocator").as_str() {
                    "slub" => vec![AllocatorKind::Slub],
                    "prudence" => vec![AllocatorKind::Prudence],
                    "both" => AllocatorKind::BOTH.to_vec(),
                    other => panic!("unknown allocator {other:?}"),
                };
            }
            "--reclaim" => {
                params.reclaim =
                    Some(next("--reclaim").parse::<ReclaimBackend>().expect("backend"));
            }
            other if label.is_none() && !other.starts_with('-') => {
                label = Some(other.to_string());
            }
            other => panic!("unexpected argument {other:?}"),
        }
    }

    if let Some(path) = validate {
        let path = path.unwrap_or_else(|| format!("{out_dir}/BENCH_server.json"));
        validate_file(&path);
        return;
    }

    if smoke {
        // CI-sized: small population, sub-second phases, same gates.
        params = ServerParams {
            connections: params.connections.min(5_000),
            shards: params.shards.min(2),
            seed: params.seed,
            reclaim: params.reclaim,
            stalled_shard: params.stalled_shard,
            ..ServerParams::smoke()
        };
    }
    params = params.scaled_for_population();

    let meta = run_metadata();
    println!(
        "run metadata: rev={} nproc={} kernel={} engine={} reclaim={}",
        meta.git_rev, meta.nproc, meta.kernel, meta.fastpath_engine, meta.reclaim_backend
    );
    let mut reports = Vec::new();
    let mut failed = false;
    for kind in allocators {
        println!(
            "server scenario: {kind} × {} connections × {} shards (seed {}) ...",
            params.connections, params.shards, params.seed
        );
        let report = run_server(kind, &params);
        println!("  {}", report.render());
        for violation in &report.violations {
            println!("  VIOLATION: {violation}");
        }
        if !report.passed() {
            println!("  replay: {}", report.replay_command());
            failed = true;
        }
        reports.push(report);
    }

    if bench {
        let label = label.unwrap_or_else(|| "run".to_string());
        merge_run(
            &format!("{out_dir}/BENCH_server.json"),
            &label,
            serde_json::json!({
                "meta": meta,
                "reports": reports,
            }),
        );
    }
    if failed {
        std::process::exit(1);
    }
}

/// Checks that `path` parses and every stored report round-trips through
/// the [`ServerReport`] schema. Exits non-zero with a description on any
/// mismatch.
fn validate_file(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| panic!("{path}: cannot read: {err}"));
    let root: Value = serde_json::from_str(&text)
        .unwrap_or_else(|err| panic!("{path}: not valid JSON: {err}"));
    let Value::Map(entries) = &root else {
        panic!("{path}: top level is not an object");
    };
    let Some((_, Value::Map(runs))) = entries.iter().find(|(key, _)| key == "runs") else {
        panic!("{path}: missing \"runs\" object");
    };
    assert!(!runs.is_empty(), "{path}: no runs recorded");
    let mut total_reports = 0usize;
    for (run_label, run) in runs {
        let Value::Map(run) = run else {
            panic!("{path}: run {run_label:?} is not an object");
        };
        for field in ["meta", "reports"] {
            assert!(
                run.iter().any(|(key, _)| key == field),
                "{path}: run {run_label:?} is missing {field:?}"
            );
        }
        let Some((_, Value::Seq(reports))) = run.iter().find(|(key, _)| key == "reports") else {
            panic!("{path}: run {run_label:?}: \"reports\" is not an array");
        };
        assert!(!reports.is_empty(), "{path}: run {run_label:?} has no reports");
        for report in reports {
            let parsed = ServerReport::from_content(report).unwrap_or_else(|err| {
                panic!("{path}: run {run_label:?}: report does not match schema: {err}")
            });
            assert!(
                parsed.passed(),
                "{path}: run {run_label:?}: committed report for {} has violations: {:?}",
                parsed.allocator,
                parsed.violations
            );
            assert!(
                parsed.alloc_latency.is_some(),
                "{path}: run {run_label:?}: report for {} has no alloc percentiles",
                parsed.allocator
            );
            total_reports += 1;
        }
    }
    println!("{path}: {} runs, {total_reports} reports, schema OK", runs.len());
}

/// Provenance recorded with every committed run (the same shape the other
/// BENCH files carry).
#[derive(Debug, Clone, Serialize)]
struct RunMeta {
    /// `git rev-parse --short HEAD`, or "unknown" outside a checkout.
    git_rev: String,
    /// Available hardware parallelism on the measuring machine.
    nproc: usize,
    /// Kernel release (`/proc/sys/kernel/osrelease`), or "unknown".
    kernel: String,
    /// Fast-path engine new caches select ("rseq" / "locks" / "off").
    fastpath_engine: String,
    /// Value of `PBS_FASTPATH` if the run was forced, else null.
    fastpath_override: Option<String>,
    /// Reclamation backend new testbeds select, after any override.
    reclaim_backend: String,
    /// Value of `PBS_RECLAIM` if the run was forced, else null.
    reclaim_override: Option<String>,
}

fn run_metadata() -> RunMeta {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    RunMeta {
        git_rev,
        nproc: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernel,
        fastpath_engine: if pbs_alloc_api::fastpath_env_disabled() {
            "off".to_string()
        } else {
            pbs_alloc_api::fastpath_default_engine().label().to_string()
        },
        fastpath_override: std::env::var("PBS_FASTPATH").ok(),
        reclaim_backend: ReclaimBackend::from_env().label().to_string(),
        reclaim_override: std::env::var("PBS_RECLAIM").ok(),
    }
}

/// Inserts `data` under `runs.<label>` in the JSON file at `path`,
/// creating the file or replacing an existing run of the same label.
fn merge_run(path: &str, label: &str, data: Value) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .unwrap_or_else(|| Value::Map(vec![("runs".to_string(), Value::Map(Vec::new()))]));
    let Value::Map(entries) = &mut root else {
        panic!("{path}: top level is not an object");
    };
    let runs = match entries.iter_mut().find(|(key, _)| key == "runs") {
        Some((_, runs)) => runs,
        None => {
            entries.push(("runs".to_string(), Value::Map(Vec::new())));
            &mut entries.last_mut().unwrap().1
        }
    };
    let Value::Map(runs) = runs else {
        panic!("{path}: \"runs\" is not an object");
    };
    match runs.iter_mut().find(|(key, _)| key == label) {
        Some((_, slot)) => *slot = data,
        None => runs.push((label.to_string(), data)),
    }
    let text = serde_json::to_string_pretty(&root).expect("serialize run file");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(path, text + "\n").expect("write run file");
    println!("merged run {label:?} into {path}");
}
