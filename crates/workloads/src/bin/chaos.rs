//! Chaos runner: fault-injected churn over both allocators with fixed
//! seeds, exiting non-zero if any robustness invariant is violated.
//!
//! ```text
//! chaos [--seeds 1,2,3] [--threads N] [--ops N] [--keys N]
//!       [--limit-mb N] [--grow-p P] [--stall-p P] [--json]
//! ```
//!
//! The process forces the RCU membarrier fallback before any domain is
//! built, so every grace period in the run also exercises the fallback
//! fence protocol (the unlucky-kernel path CI would otherwise never take).

use pbs_workloads::chaos::{run_chaos, ChaosParams};
use pbs_workloads::AllocatorKind;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("chaos: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: Vec<u64> = flag_value(&args, "--seeds")
        .unwrap_or_else(|| "1,2,3".into())
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("chaos: invalid seed: {s}");
                std::process::exit(2);
            })
        })
        .collect();
    let base = ChaosParams::default();
    let template = ChaosParams {
        threads: parse(&args, "--threads", base.threads),
        ops_per_thread: parse(&args, "--ops", base.ops_per_thread),
        keys: parse(&args, "--keys", base.keys),
        limit_bytes: parse(&args, "--limit-mb", base.limit_bytes >> 20) << 20,
        grow_fault_p: parse(&args, "--grow-p", base.grow_fault_p),
        stall_fault_p: parse(&args, "--stall-p", base.stall_fault_p),
        ..base
    };
    let json = args.iter().any(|a| a == "--json");

    // Own-process decision: force the fallback fence protocol so the run
    // covers the no-membarrier path. Must happen before any Rcu is built.
    if !pbs_rcu::force_membarrier_fallback() {
        eprintln!("chaos: membarrier strategy already decided; cannot force fallback");
        std::process::exit(2);
    }

    let mut failed = false;
    for &seed in &seeds {
        let params = ChaosParams { seed, ..template.clone() };
        for kind in AllocatorKind::BOTH {
            let mut report = run_chaos(kind, &params);
            if report.membarrier_advances != 0 {
                report.violations.push(format!(
                    "{} membarrier advances despite forced fallback",
                    report.membarrier_advances
                ));
            }
            if report.fallback_fence_advances == 0 {
                report
                    .violations
                    .push("fallback fence protocol never ran".into());
            }
            if json {
                println!(
                    "{}",
                    serde_json::to_string(&report).expect("serialize report")
                );
            } else {
                println!("{}", report.render());
                for v in &report.violations {
                    println!("  violation: {v}");
                }
            }
            failed |= !report.passed();
        }
    }
    if failed {
        eprintln!("chaos: invariant violations detected");
        std::process::exit(1);
    }
}
