//! Chaos runner: fault-injected churn over both allocators with fixed
//! seeds, exiting non-zero if any robustness invariant is violated.
//!
//! ```text
//! chaos [--scenario mixed|stalled-reader|oom-storm|fastpath-flap|server-storm|all]
//!       [--seed N | --seeds 1,2,3] [--allocator slub|prudence|both]
//!       [--reclaim epoch|hp|hyaline] [--garbage-bound N]
//!       [--duration SECS] [--threads N] [--ops N] [--keys N]
//!       [--limit-mb N] [--grow-p P] [--stall-p P] [--connections N]
//!       [--json] [--doctor-smoke]
//! ```
//!
//! `--reclaim` pins the reclamation backend; without it the run honours
//! `PBS_RECLAIM`, so the CI matrix drives the whole binary through one
//! environment variable.
//!
//! Every failing report prints a one-line replay command (seed, scenario
//! and allocator pin the whole fault plan) so a red CI run can be
//! reproduced directly.
//!
//! The process forces the RCU membarrier fallback before any domain is
//! built, so every grace period in the run also exercises the fallback
//! fence protocol (the unlucky-kernel path CI would otherwise never take).

use pbs_workloads::chaos::{run_chaos, ChaosParams, ChaosScenario};
use pbs_workloads::AllocatorKind;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `flag` if present; `None` leaves the scenario default in force.
fn parse_opt<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("chaos: invalid value for {flag}: {v}");
            std::process::exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: Vec<u64> = match parse_opt::<u64>(&args, "--seed") {
        Some(seed) => vec![seed],
        None => flag_value(&args, "--seeds")
            .unwrap_or_else(|| "1,2,3".into())
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("chaos: invalid seed: {s}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    let scenarios: Vec<ChaosScenario> = match flag_value(&args, "--scenario").as_deref() {
        None => vec![ChaosScenario::Mixed],
        Some("all") => ChaosScenario::ALL.to_vec(),
        Some(s) => vec![s.parse().unwrap_or_else(|e| {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        })],
    };
    let kinds: Vec<AllocatorKind> = match flag_value(&args, "--allocator").as_deref() {
        None | Some("both") => AllocatorKind::BOTH.to_vec(),
        Some("slub") => vec![AllocatorKind::Slub],
        Some("prudence") => vec![AllocatorKind::Prudence],
        Some(other) => {
            eprintln!("chaos: unknown allocator {other:?} (expected slub, prudence or both)");
            std::process::exit(2);
        }
    };
    let json = args.iter().any(|a| a == "--json");
    // Spin up the live doctor endpoint inside every run and poll it mid-chaos;
    // under stalled-reader the smoke also insists /doctor names the staller.
    let doctor_smoke = args.iter().any(|a| a == "--doctor-smoke");

    // Own-process decision: force the fallback fence protocol so the run
    // covers the no-membarrier path. Must happen before any Rcu is built.
    if !pbs_rcu::force_membarrier_fallback() {
        eprintln!("chaos: membarrier strategy already decided; cannot force fallback");
        std::process::exit(2);
    }

    let mut failed = false;
    for &scenario in &scenarios {
        let base = ChaosParams::for_scenario(scenario);
        let template = ChaosParams {
            threads: parse_opt(&args, "--threads").unwrap_or(base.threads),
            ops_per_thread: parse_opt(&args, "--ops").unwrap_or(base.ops_per_thread),
            keys: parse_opt(&args, "--keys").unwrap_or(base.keys),
            limit_bytes: parse_opt::<usize>(&args, "--limit-mb")
                .map(|mb| mb << 20)
                .unwrap_or(base.limit_bytes),
            grow_fault_p: parse_opt(&args, "--grow-p").unwrap_or(base.grow_fault_p),
            stall_fault_p: parse_opt(&args, "--stall-p").unwrap_or(base.stall_fault_p),
            duration: parse_opt::<f64>(&args, "--duration")
                .map(std::time::Duration::from_secs_f64)
                .or(base.duration),
            reclaim: parse_opt(&args, "--reclaim").map(Some).unwrap_or(base.reclaim),
            garbage_bound: parse_opt(&args, "--garbage-bound").unwrap_or(base.garbage_bound),
            doctor: doctor_smoke || base.doctor,
            connections: parse_opt(&args, "--connections").unwrap_or(base.connections),
            ..base
        };
        for &seed in &seeds {
            let params = ChaosParams { seed, ..template.clone() };
            for &kind in &kinds {
                let mut report = run_chaos(kind, &params);
                if report.membarrier_advances != 0 {
                    report.violations.push(format!(
                        "{} membarrier advances despite forced fallback",
                        report.membarrier_advances
                    ));
                }
                if report.fallback_fence_advances == 0 {
                    report
                        .violations
                        .push("fallback fence protocol never ran".into());
                }
                if json {
                    println!(
                        "{}",
                        serde_json::to_string(&report).expect("serialize report")
                    );
                } else {
                    println!("{}", report.render());
                    for v in &report.violations {
                        println!("  violation: {v}");
                    }
                }
                if !report.passed() {
                    eprintln!("replay: {}", report.replay_command());
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("chaos: invariant violations detected");
        std::process::exit(1);
    }
}
