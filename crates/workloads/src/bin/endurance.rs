//! Full-length Figure 3 endurance run with a CSV memory trace.
//!
//! ```text
//! cargo run --release -p pbs-workloads --bin endurance [seconds] [--csv PATH] [--telemetry PREFIX]
//! ```
//!
//! Prints the per-allocator summary and optionally writes
//! `ms,slub_bytes,prudence_bytes` rows suitable for plotting Figure 3.
//! With `--telemetry`, both runs' merged telemetry is written to
//! `PREFIX.prom` and `PREFIX.trace.json`.

use std::time::Duration;

use pbs_alloc_api::TelemetrySnapshot;
use pbs_workloads::endurance::{run_endurance, EnduranceParams};
use pbs_workloads::telemetry_export::{accumulate_labeled, telemetry_arg, write_telemetry};
use pbs_workloads::AllocatorKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seconds: u64 = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let telemetry_prefix = telemetry_arg(&args);

    let params = EnduranceParams {
        duration: Duration::from_secs(seconds),
        memory_limit: 96 << 20,
        ..EnduranceParams::default()
    };
    println!(
        "Endurance (Figure 3): {} threads, 512 B objects, {} MiB limit, {} s",
        params.threads,
        params.memory_limit >> 20,
        seconds
    );
    let slub = run_endurance(AllocatorKind::Slub, &params);
    println!("{}", slub.render());
    let prudence = run_endurance(AllocatorKind::Prudence, &params);
    println!("{}", prudence.render());

    if let Some(prefix) = &telemetry_prefix {
        let mut telemetry = TelemetrySnapshot::default();
        accumulate_labeled(&mut telemetry, "slub", slub.telemetry.clone());
        accumulate_labeled(&mut telemetry, "prudence", prudence.telemetry.clone());
        let (prom, trace) = write_telemetry(prefix, &telemetry).expect("write telemetry");
        println!("wrote {}", prom.display());
        println!("wrote {} (load it in chrome://tracing)", trace.display());
    }

    if let Some(path) = csv_path {
        let mut csv = String::from("ms,slub_bytes,prudence_bytes\n");
        let n = slub.samples.len().max(prudence.samples.len());
        for i in 0..n {
            let s = slub.samples.get(i);
            let p = prudence.samples.get(i);
            csv.push_str(&format!(
                "{},{},{}\n",
                s.or(p).map(|x| x.ms).unwrap_or(0),
                s.map(|x| x.used_bytes.to_string()).unwrap_or_default(),
                p.map(|x| x.used_bytes.to_string()).unwrap_or_default(),
            ));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {path}");
    }
}
