//! Regenerates every table and figure of the paper's evaluation and
//! prints them in paper-like form (plus machine-readable JSON).
//!
//! ```text
//! cargo run --release -p pbs-workloads --bin figures [--quick] [--json PATH] [--telemetry PREFIX]
//! ```
//!
//! `--quick` shrinks workload sizes for a fast smoke pass; the default
//! parameters take a few minutes on a laptop. With `--telemetry`, the
//! merged telemetry of the two Figure 3 endurance runs is written to
//! `PREFIX.prom` and `PREFIX.trace.json`.

use std::time::Duration;

use pbs_alloc_api::TelemetrySnapshot;
use pbs_workloads::apps::AppParams;
use pbs_workloads::endurance::EnduranceParams;
use pbs_workloads::figures::{
    figure3, figure6, figures7_to_13, render_figure3, render_figure6, render_figures7_to_13,
    section33_cost_table, FIG6_SIZES,
};
use pbs_workloads::microbench::MicrobenchParams;
use pbs_workloads::telemetry_export::{accumulate_labeled, telemetry_arg, write_telemetry};
use pbs_workloads::tree_churn::{run_tree_churn, TreeChurnParams};
use pbs_workloads::AllocatorKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let telemetry_prefix = telemetry_arg(&args);

    let scale: u64 = if quick { 1 } else { 10 };

    println!("== Prudence reproduction: paper evaluation ==\n");

    // §3.3 cost table.
    let cost = section33_cost_table(512, 100_000 * scale);
    println!("{}\n", cost.render());

    // Figure 6.
    let micro_params = MicrobenchParams {
        pairs_per_thread: 20_000 * scale,
        ..MicrobenchParams::default()
    };
    let fig6 = figure6(&FIG6_SIZES, &micro_params);
    println!("{}", render_figure6(&fig6));

    // Figure 3.
    let endurance_params = EnduranceParams {
        duration: Duration::from_millis(if quick { 1_500 } else { 10_000 }),
        memory_limit: if quick { 24 << 20 } else { 96 << 20 },
        ..EnduranceParams::default()
    };
    let (slub3, prudence3) = figure3(&endurance_params);
    println!("{}", render_figure3(&slub3, &prudence3));

    // Figures 7-13.
    let app_params = AppParams {
        transactions_per_thread: 2_000 * scale,
        ..AppParams::default()
    };
    let comparisons = figures7_to_13(&app_params);
    println!("{}", render_figures7_to_13(&comparisons));

    // Extension: §3.1 tree-update deferral amplification.
    let tree_params = TreeChurnParams {
        ops_per_thread: 5_000 * scale,
        ..TreeChurnParams::default()
    };
    println!("\nExtension — RCU tree churn (\u{00a7}3.1 multi-deferral amplification)");
    let mut tree_reports = Vec::new();
    for kind in AllocatorKind::BOTH {
        let r = run_tree_churn(kind, &tree_params);
        println!(
            "{:<9} {:>10.0} ops/s  {:.2} deferrals/op  grows={} shrinks={} peak={}",
            r.allocator, r.ops_per_sec, r.deferred_per_op, r.stats.grows, r.stats.shrinks,
            r.stats.slabs_peak
        );
        tree_reports.push(r);
    }

    if let Some(prefix) = &telemetry_prefix {
        let mut telemetry = TelemetrySnapshot::default();
        accumulate_labeled(&mut telemetry, "slub", slub3.telemetry.clone());
        accumulate_labeled(&mut telemetry, "prudence", prudence3.telemetry.clone());
        let (prom, trace) = write_telemetry(prefix, &telemetry).expect("write telemetry");
        println!("wrote {}", prom.display());
        println!("wrote {} (load it in chrome://tracing)", trace.display());
    }

    if let Some(path) = json_path {
        let blob = serde_json::json!({
            "alloc_cost": cost,
            "figure6": fig6,
            "figure3": { "slub": slub3, "prudence": prudence3 },
            "figures7_to_13": comparisons,
            "tree_churn": tree_reports,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&blob).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
}
