//! Figure 3: the endurance experiment (§3.5 and §5.5).
//!
//! Every CPU continuously performs RCU linked-list update operations —
//! each update allocates a new 512-byte object and defers the free of the
//! old version. Total used memory is sampled every 10 ms.
//!
//! * **Baseline (SLUB + RCU callbacks):** deferred objects pile up in the
//!   throttled callback backlog; used memory saws upward (slab churn
//!   spikes) and eventually hits the memory limit — the paper's OOM at
//!   196 s, reproduced at laptop scale.
//! * **Prudence:** after the first grace periods, allocations are served
//!   from reclaimed latent objects and used memory stays flat.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use pbs_mem::WatermarkSampler;
use pbs_rcu::reclaim::{ReclaimBackend, ReclaimConfig};
use pbs_rcu::RcuConfig;
use pbs_structs::RcuList;

use crate::{AllocatorKind, Testbed};

/// Parameters of an endurance run.
#[derive(Debug, Clone)]
pub struct EnduranceParams {
    /// Updater threads, each with its own list (the paper updates a
    /// different list per CPU to avoid list-lock contention).
    pub threads: usize,
    /// Entries per list.
    pub list_entries: u64,
    /// Wall-clock duration to run for (unless OOM ends the run earlier).
    pub duration: Duration,
    /// Hard memory limit standing in for physical memory.
    pub memory_limit: usize,
    /// Used-memory sampling interval (10 ms in the paper).
    pub sample_interval: Duration,
    /// Reclamation backend to run under; `None` honours `PBS_RECLAIM` so
    /// the CI matrix drives the same curve through every domain. The
    /// Figure 3 pathology tests pin `Epoch`: the baseline's fatal
    /// callback backlog *is* the epoch path, and a robust backend
    /// reclaiming promptly makes the expected OOM vanish.
    pub reclaim: Option<ReclaimBackend>,
}

impl Default for EnduranceParams {
    fn default() -> Self {
        Self {
            threads: crate::microbench::num_threads(),
            list_entries: 64,
            duration: Duration::from_secs(10),
            memory_limit: 64 << 20,
            sample_interval: Duration::from_millis(10),
            reclaim: None,
        }
    }
}

/// One used-memory observation (milliseconds, bytes).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnduranceSample {
    /// Milliseconds since the run started.
    pub ms: u64,
    /// Total used memory at that instant.
    pub used_bytes: usize,
}

/// Outcome of an endurance run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnduranceReport {
    /// Allocator label.
    pub allocator: String,
    /// Used-memory time series (Figure 3's curve).
    pub samples: Vec<EnduranceSample>,
    /// When the workload hit out-of-memory, if it did.
    pub oom_at_ms: Option<u64>,
    /// Update operations completed before the run ended.
    pub updates: u64,
    /// Peak used memory observed.
    pub peak_used_bytes: usize,
    /// Used memory at the end of the run.
    pub final_used_bytes: usize,
    /// Full telemetry capture of the run (RCU domain + per-thread caches).
    pub telemetry: pbs_alloc_api::TelemetrySnapshot,
}

impl EnduranceReport {
    /// Renders a compact text summary plus a coarse sparkline of the
    /// memory curve.
    pub fn render(&self) -> String {
        let bars = "▁▂▃▄▅▆▇█";
        let max = self.samples.iter().map(|s| s.used_bytes).max().unwrap_or(1).max(1);
        let spark: String = self
            .samples
            .iter()
            .step_by((self.samples.len() / 60).max(1))
            .map(|s| {
                let i = (s.used_bytes * 7 / max).min(7);
                bars.chars().nth(i).expect("index in range")
            })
            .collect();
        format!(
            "{:<9} updates={:<10} peak={:>6} KiB final={:>6} KiB {} {}",
            self.allocator,
            self.updates,
            self.peak_used_bytes / 1024,
            self.final_used_bytes / 1024,
            match self.oom_at_ms {
                Some(ms) => format!("OOM at {ms} ms"),
                None => "no OOM".to_owned(),
            },
            spark
        )
    }
}

/// Runs the endurance workload on one allocator.
pub fn run_endurance(kind: AllocatorKind, params: &EnduranceParams) -> EnduranceReport {
    // Callback-processing capacity modeled after a single CPU's softirq
    // budget: the saturating updaters outrun reclamation and the baseline
    // backlog grows without bound, exactly as §3.5 describes. Prudence
    // never touches the callback path, so only the grace-period length
    // matters to it. Figure 3 characterises the *unhardened* baseline the
    // paper measured, so the recovery ladder is pinned off here
    // (`oom_retries: 0`); Prudence keeps its full configuration.
    let bed = Testbed::new_tuned(
        kind,
        params.threads,
        RcuConfig::overwhelmed(),
        Some(params.memory_limit),
        None,
        Some(pbs_slub::SlubTuning {
            oom_retries: 0,
            ..Default::default()
        }),
        None,
        params
            .reclaim
            .map(|backend| (backend, ReclaimConfig::default())),
    );
    let sampler = WatermarkSampler::start(Arc::clone(bed.pages()), params.sample_interval);
    let oom = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut updates = 0u64;
    // The lists (and thus the caches) die with their worker threads; hold
    // an extra handle per cache so the post-run telemetry sweep still sees
    // them.
    let mut kept_caches = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..params.threads {
            let bed = &bed;
            let oom = Arc::clone(&oom);
            let params = params.clone();
            handles.push(s.spawn(move || {
                // Each CPU updates a different list (no list-lock
                // contention), objects are 512 bytes as in §3.5.
                let cache = bed.create_cache(&format!("endurance-{t}"), 512);
                let keep = Arc::clone(&cache);
                let list: RcuList<[u64; 4]> = RcuList::new(cache);
                for i in 0..params.list_entries {
                    if list.insert(i, [i; 4]).is_err() {
                        oom.store(true, Ordering::Relaxed);
                        return (0, keep);
                    }
                }
                let mut local = 0u64;
                while start.elapsed() < params.duration && !oom.load(Ordering::Relaxed) {
                    let key = local % params.list_entries;
                    match list.update(key, [local; 4]) {
                        Ok(_) => local += 1,
                        Err(_) => {
                            oom.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                (local, keep)
            }));
        }
        for h in handles {
            let (local, keep) = h.join().expect("endurance worker");
            updates += local;
            kept_caches.push(keep);
        }
    });
    let oom_at_ms = oom
        .load(Ordering::Relaxed)
        .then(|| start.elapsed().as_millis() as u64);
    let raw = sampler.stop();
    let samples: Vec<EnduranceSample> = raw
        .iter()
        .map(|s| EnduranceSample {
            ms: s.elapsed.as_millis() as u64,
            used_bytes: s.used_bytes,
        })
        .collect();
    let peak = bed.pages().peak_bytes();
    let final_used = bed.pages().used_bytes();
    let telemetry = bed.telemetry();
    drop(kept_caches);
    EnduranceReport {
        allocator: kind.label().to_owned(),
        samples,
        oom_at_ms,
        updates,
        peak_used_bytes: peak,
        final_used_bytes: final_used,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(limit: usize) -> EnduranceParams {
        EnduranceParams {
            threads: 2,
            list_entries: 32,
            duration: Duration::from_millis(1500),
            memory_limit: limit,
            sample_interval: Duration::from_millis(5),
            reclaim: None,
        }
    }

    #[test]
    fn prudence_reaches_equilibrium() {
        let report = run_endurance(AllocatorKind::Prudence, &quick(48 << 20));
        assert!(report.oom_at_ms.is_none(), "prudence must not OOM: {report:?}");
        assert!(report.updates > 0);
        assert!(!report.samples.is_empty());
        assert!(report.render().contains("no OOM"));
    }

    #[test]
    fn slub_exhausts_memory_under_sustained_deferral() {
        // A small budget makes the baseline's extended object lifetimes
        // fatal quickly, as in Figure 3. Pinned to the epoch domain: the
        // fatal backlog is the callback path's pathology, and a robust
        // backend (PBS_RECLAIM=hp/hyaline) reclaims it away.
        let params = EnduranceParams {
            reclaim: Some(ReclaimBackend::Epoch),
            ..quick(6 << 20)
        };
        let report = run_endurance(AllocatorKind::Slub, &params);
        assert!(
            report.oom_at_ms.is_some(),
            "baseline should hit OOM: peak={} final={}",
            report.peak_used_bytes,
            report.final_used_bytes
        );
    }

    #[test]
    fn prudence_survives_budget_that_kills_slub() {
        let params = quick(6 << 20);
        let report = run_endurance(AllocatorKind::Prudence, &params);
        assert!(
            report.oom_at_ms.is_none(),
            "prudence should survive the small budget: {report:?}"
        );
    }
}
