//! The reclamation doctor: a condensed diagnosis of a telemetry snapshot
//! (who produced the garbage, how old it is, who is blocking reclaim) and
//! a dependency-free introspection endpoint serving it live.
//!
//! The endpoint is two blocking threads over [`std::net::TcpListener`] —
//! an acceptor feeding a small bounded backlog and a single server
//! draining it, deliberately not an async stack. Every connection gets a
//! whole-request read/write deadline, so a stalled or slow-dripping
//! client is evicted instead of wedging later `/metrics` polls; when the
//! backlog itself fills, further connections are shed with a 503. Three
//! routes:
//!
//! * `GET /metrics` — the full Prometheus exposition
//!   ([`to_prometheus`]);
//! * `GET /snapshot` — the [`TelemetrySnapshot`] plus a structured
//!   [`DoctorReport`], as JSON;
//! * `GET /doctor` — the human-readable diagnosis ([`render_doctor`]).
//!
//! Snapshots are produced by a caller-supplied provider closure at
//! request time, so the server holds no allocator state of its own and
//! the hit path pays nothing while nobody polls.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pbs_alloc_api::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

use crate::telemetry_export::to_prometheus;

/// Sites listed in the doctor's "top offenders" table.
const TOP_SITES: usize = 10;

/// Whole-connection deadline: a client gets this long to deliver its
/// request head *and* drain the response. A slowloris client dripping a
/// byte per second used to reset the per-read timeout each time and hold
/// the serving loop for minutes; the deadline bounds the total hold.
const CONN_DEADLINE: Duration = Duration::from_secs(2);

/// Accepted connections waiting for the serving thread. While one client
/// is burning its deadline, up to this many polls queue instead of being
/// refused at the TCP layer; beyond it the accept thread sheds with a
/// best-effort 503 rather than letting the queue grow without bound.
const ACCEPT_BACKLOG: usize = 8;

/// Age percentiles of one backend's reclaimed garbage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AgeProfile {
    /// Backend label (`epoch`, `hp`, `hyaline`).
    pub backend: String,
    /// Reclaimed objects the histogram observed.
    pub samples: u64,
    /// Bucket upper bound of the median age, ns (0 with no samples).
    pub p50_ns: u64,
    /// Bucket upper bound of the p99 age, ns.
    pub p99_ns: u64,
    /// Bucket upper bound of the maximum observed age, ns.
    pub max_ns: u64,
}

/// The structured diagnosis: everything `/doctor` prints, as data.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DoctorReport {
    /// Reclamation backend of the diagnosed run.
    pub backend: String,
    /// Stamped objects still outstanding (deferred, not yet reusable).
    pub outstanding: u64,
    /// Age of the oldest outstanding object, ns.
    pub oldest_outstanding_ns: u64,
    /// Top call sites by outstanding bytes.
    pub top_sites: Vec<pbs_telemetry::site::SiteStat>,
    /// Garbage-age percentiles per backend (sampled at reclaim time).
    pub ages: Vec<AgeProfile>,
    /// Stall-blame records, live episodes last.
    pub blame: Vec<pbs_rcu::BlameReport>,
    /// Stall warnings the watchdog has issued.
    pub stall_warnings: u64,
    /// Pressure gauge per cache (`name`, level 0..=2).
    pub pressure: Vec<(String, u8)>,
    /// Objects deferred into the reclamation domain and not yet returned.
    pub deferred_in_domain: usize,
}

impl DoctorReport {
    /// Builds the diagnosis from a snapshot.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> Self {
        let ages = snap
            .sites
            .age
            .iter()
            .map(|h| AgeProfile {
                backend: h
                    .name
                    .strip_prefix("garbage_age_ns_")
                    .unwrap_or(h.name.as_str())
                    .to_owned(),
                samples: h.hist.count,
                p50_ns: h.hist.quantile_upper_bound(0.5).unwrap_or(0),
                p99_ns: h.hist.quantile_upper_bound(0.99).unwrap_or(0),
                max_ns: h.hist.quantile_upper_bound(1.0).unwrap_or(0),
            })
            .collect();
        Self {
            backend: snap.reclaim.backend.clone(),
            outstanding: snap.sites.outstanding_total,
            oldest_outstanding_ns: snap.sites.oldest_outstanding_ns,
            top_sites: snap.sites.sites.iter().take(TOP_SITES).cloned().collect(),
            ages,
            blame: snap.blame.clone(),
            stall_warnings: snap.rcu.stall_warnings,
            pressure: snap
                .caches
                .iter()
                .map(|c| (c.name.clone(), c.stats.pressure_level as u8))
                .collect(),
            deferred_in_domain: snap.reclaim.deferred_in_domain,
        }
    }

    /// The live culprit with the longest current pin, if any episode is
    /// open.
    pub fn worst_open_blame(&self) -> Option<&pbs_rcu::BlameReport> {
        self.blame
            .iter()
            .filter(|b| !b.cleared)
            .max_by_key(|b| b.stalled_for_ns)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-readable diagnosis served at `/doctor`.
pub fn render_doctor(snap: &TelemetrySnapshot) -> String {
    let report = DoctorReport::from_snapshot(snap);
    let mut out = String::new();
    use std::fmt::Write as _;
    let backend = if report.backend.is_empty() {
        "unknown"
    } else {
        report.backend.as_str()
    };
    let _ = writeln!(out, "== reclamation doctor ==");
    let _ = writeln!(
        out,
        "backend: {backend}   outstanding: {} objects (oldest {})   \
         in-domain: {}",
        report.outstanding,
        fmt_ns(report.oldest_outstanding_ns),
        report.deferred_in_domain,
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "-- top sites by outstanding bytes --");
    if report.top_sites.is_empty() {
        let _ = writeln!(out, "(no attributed defers yet)");
    }
    for s in &report.top_sites {
        let _ = writeln!(
            out,
            "{:>10} B outstanding  {:>8} deferred  {:>8} reclaimed  {}",
            s.outstanding_bytes, s.deferred, s.reclaimed, s.label,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "-- garbage age at reclaim --");
    for a in &report.ages {
        let _ = writeln!(
            out,
            "{:<8} samples {:>9}  p50 <= {:>10}  p99 <= {:>10}  max <= {:>10}",
            a.backend,
            a.samples,
            fmt_ns(a.p50_ns),
            fmt_ns(a.p99_ns),
            fmt_ns(a.max_ns),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- stall blame ({} warnings) --",
        report.stall_warnings
    );
    if report.blame.is_empty() {
        let _ = writeln!(out, "(no stall episodes recorded)");
    }
    for b in &report.blame {
        let state = if b.cleared { "cleared" } else { "LIVE" };
        let _ = writeln!(
            out,
            "[{state}] thread {:?} pinned epoch {} (pin #{}) for {} \
             ({} hazard slot(s) held)",
            b.thread_name,
            b.pinned_epoch,
            b.pin_seq,
            fmt_ns(b.stalled_for_ns),
            b.hazards.len(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "-- cache pressure --");
    for (name, level) in &report.pressure {
        let word = match level {
            0 => "ok",
            1 => "soft",
            _ => "hard",
        };
        let _ = writeln!(out, "{name}: level {level} ({word})");
    }
    out
}

/// Wire shape of `GET /snapshot`.
#[derive(Debug, Serialize, Deserialize)]
pub struct SnapshotResponse {
    /// The raw snapshot the diagnosis was computed from.
    pub telemetry: TelemetrySnapshot,
    /// The structured diagnosis.
    pub doctor: DoctorReport,
}

/// The live introspection endpoint: an accept thread feeding a bounded
/// backlog and one serving thread draining it; see the module docs for
/// routes. Drop stops both threads.
pub struct DoctorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    serve_handle: Option<JoinHandle<()>>,
}

impl DoctorServer {
    /// Binds `127.0.0.1:0` (OS-assigned port) and starts serving
    /// snapshots from `provider`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start<F>(provider: F) -> std::io::Result<Self>
    where
        F: Fn() -> TelemetrySnapshot + Send + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // The endpoint stays a diagnostic tap, not a web server: one
        // serving thread, so a poll can never contend the workload. The
        // backlog between the two threads means one stalled client burns
        // its CONN_DEADLINE without wedging later polls, which queue and
        // are answered the moment the deadline evicts the staller.
        let (queue, pending) = sync_channel::<TcpStream>(ACCEPT_BACKLOG);
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("pbs-doctor-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match queue.try_send(stream) {
                        Ok(()) => {}
                        // Backlog full: shed with a best-effort 503 so
                        // the client sees an answer, not a hang.
                        Err(TrySendError::Full(stream)) => shed_busy(stream),
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // Dropping `queue` ends the serving thread's loop.
            })?;
        let serve_handle = std::thread::Builder::new()
            .name("pbs-doctor-serve".to_owned())
            .spawn(move || {
                while let Ok(stream) = pending.recv() {
                    let _ = serve_one(stream, &provider);
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            serve_handle: Some(serve_handle),
        })
    }

    /// The bound address (loopback, OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for DoctorServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop; the flag makes the connection a no-op.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.serve_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Best-effort "try again" answer for connections shed off a full accept
/// backlog. A short write deadline keeps even this path bounded.
fn shed_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(CONN_DEADLINE));
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
          Content-Length: 21\r\nConnection: close\r\n\r\ndoctor busy; retry\r\n\n",
    );
}

fn serve_one<F>(mut stream: TcpStream, provider: &F) -> std::io::Result<()>
where
    F: Fn() -> TelemetrySnapshot,
{
    let deadline = Instant::now() + CONN_DEADLINE;
    // Read the whole request head before responding: closing the socket
    // with unread client bytes pending turns the close into a TCP reset,
    // which the polling client sees as a failed read. Each read blocks
    // only until the *connection* deadline, not a fresh per-read timeout,
    // so a client dripping one byte at a time cannot extend its hold.
    let mut buf = [0u8; 2048];
    let mut len = 0;
    while len < buf.len() {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::TimedOut, "client read deadline")
            })?;
        stream.set_read_timeout(Some(remaining))?;
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            let snap = provider();
            ("200 OK", "text/plain; version=0.0.4", to_prometheus(&snap))
        }
        "/snapshot" => {
            let telemetry = provider();
            let doctor = DoctorReport::from_snapshot(&telemetry);
            let body = serde_json::to_string(&SnapshotResponse { telemetry, doctor })
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            ("200 OK", "application/json", body)
        }
        "/" | "/doctor" => {
            let snap = provider();
            ("200 OK", "text/plain", render_doctor(&snap))
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics, /snapshot or /doctor\n".to_owned(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    // The write deadline is whatever the client left of its connection
    // budget: a poller that reads nothing cannot pin the serving thread
    // in write_all either.
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "client write deadline")
        })?;
    stream.set_write_timeout(Some(remaining))?;
    stream.write_all(response.as_bytes())
}

/// Minimal blocking HTTP GET against a doctor endpoint; returns the
/// response body. Used by the chaos smoke leg and tests so nothing in
/// the repo needs an HTTP client dependency.
///
/// # Errors
///
/// Propagates I/O errors; a non-200 status is reported as
/// [`std::io::ErrorKind::InvalidData`].
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path}: {status}"),
        ));
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry_export::validate_prometheus;
    use crate::{AllocatorKind, Testbed};
    use pbs_rcu::RcuConfig;

    fn bed_snapshot() -> TelemetrySnapshot {
        let bed = Testbed::new(AllocatorKind::Prudence, 2, RcuConfig::eager(), None);
        let cache = bed.create_cache("doctor-test", 64);
        for _ in 0..32 {
            let o = cache.allocate().unwrap();
            unsafe { cache.free_deferred(o) };
        }
        cache.quiesce();
        bed.telemetry()
    }

    #[test]
    fn report_summarizes_snapshot() {
        let snap = bed_snapshot();
        let report = DoctorReport::from_snapshot(&snap);
        assert!(!report.backend.is_empty());
        let text = render_doctor(&snap);
        assert!(text.contains("reclamation doctor"));
        assert!(text.contains("top sites"));
        assert!(text.contains("cache pressure"));
    }

    #[test]
    fn endpoint_serves_all_routes() {
        let bed = Arc::new(Testbed::new(
            AllocatorKind::Prudence,
            2,
            RcuConfig::eager(),
            None,
        ));
        let cache = bed.create_cache("doctor-endpoint", 64);
        for _ in 0..16 {
            let o = cache.allocate().unwrap();
            unsafe { cache.free_deferred(o) };
        }
        let provider_bed = Arc::clone(&bed);
        let server = DoctorServer::start(move || provider_bed.telemetry()).unwrap();
        let metrics = http_get(server.addr(), "/metrics").unwrap();
        validate_prometheus(&metrics).expect("served metrics must validate");
        let doctor = http_get(server.addr(), "/doctor").unwrap();
        assert!(doctor.contains("reclamation doctor"));
        let snapshot = http_get(server.addr(), "/snapshot").unwrap();
        let parsed: SnapshotResponse = serde_json::from_str(&snapshot).unwrap();
        assert_eq!(parsed.doctor.backend, parsed.telemetry.reclaim.backend);
        assert!(http_get(server.addr(), "/nope").is_err(), "404 surfaces as error");
        cache.quiesce();
        drop(server);
    }

    /// A client that connects, sends a partial request head and then goes
    /// silent used to hold the (single) serving loop until it felt like
    /// leaving; later polls could not even be accepted. With the deadline
    /// and accept backlog, polls issued *during* the stall queue up and
    /// succeed as soon as the staller is evicted.
    #[test]
    fn stalled_client_cannot_wedge_later_polls() {
        let bed = Arc::new(Testbed::new(
            AllocatorKind::Slub,
            2,
            RcuConfig::eager(),
            None,
        ));
        let provider_bed = Arc::clone(&bed);
        let server = DoctorServer::start(move || provider_bed.telemetry()).unwrap();
        let addr = server.addr();

        // Warm poll proves the endpoint is up before the attack.
        http_get(addr, "/doctor").expect("baseline poll");

        // The slowloris: partial head, then silence. Kept alive for the
        // whole test so eviction, not client close, unblocks the server.
        let mut staller = TcpStream::connect(addr).unwrap();
        staller.write_all(b"GET /metrics HTT").unwrap();

        // Polls racing the stall: they must queue behind it and still be
        // answered once the deadline fires, well inside http_get's own
        // 5s client timeout.
        let started = Instant::now();
        for _ in 0..3 {
            let body = http_get(addr, "/doctor").expect("poll during stall");
            assert!(body.contains("reclamation doctor"));
        }
        assert!(
            started.elapsed() < CONN_DEADLINE + Duration::from_secs(2),
            "polls behind a stalled client took {:?}",
            started.elapsed()
        );
        drop(staller);
        drop(server);
    }
}
